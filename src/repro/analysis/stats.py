"""Summary statistics for workload series.

The paper repeatedly reasons about "different shapes/distributions with
different means and variances"; this module packages those moments (plus
robust quantiles) per series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import InsufficientDataError
from repro.monitoring.timeseries import TimeSeries

ArrayLike = Union[TimeSeries, np.ndarray, list]


def _as_array(series: ArrayLike) -> np.ndarray:
    if isinstance(series, TimeSeries):
        return series.values
    return np.asarray(series, dtype=float)


@dataclass(frozen=True)
class SummaryStats:
    """Moments and quantiles of one series."""

    count: int
    mean: float
    std: float
    variance: float
    cv: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float
    skewness: float
    kurtosis: float

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    def describe(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4g} std={self.std:.4g} "
            f"cv={self.cv:.3f} min={self.minimum:.4g} "
            f"median={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(series: ArrayLike) -> SummaryStats:
    """Compute :class:`SummaryStats` for a series.

    Raises:
        InsufficientDataError: fewer than 2 samples.
    """
    values = _as_array(series)
    if values.size < 2:
        raise InsufficientDataError(
            f"summarize needs >= 2 samples, got {values.size}"
        )
    mean = float(np.mean(values))
    std = float(np.std(values, ddof=1))
    quantiles = np.percentile(values, [25, 50, 75, 95])
    return SummaryStats(
        count=int(values.size),
        mean=mean,
        std=std,
        variance=std * std,
        cv=(std / abs(mean)) if mean != 0 else float("inf"),
        minimum=float(np.min(values)),
        p25=float(quantiles[0]),
        median=float(quantiles[1]),
        p75=float(quantiles[2]),
        p95=float(quantiles[3]),
        maximum=float(np.max(values)),
        skewness=float(scipy_stats.skew(values, bias=False)),
        kurtosis=float(scipy_stats.kurtosis(values, bias=False)),
    )


def variance_ratio(series_a: ArrayLike, series_b: ArrayLike) -> float:
    """Var(a)/Var(b) — used for the paper's disk-variance comparison (Q4)."""
    a = _as_array(series_a)
    b = _as_array(series_b)
    if a.size < 2 or b.size < 2:
        raise InsufficientDataError("variance_ratio needs >= 2 samples each")
    var_b = float(np.var(b, ddof=1))
    if var_b == 0:
        raise InsufficientDataError("variance_ratio: denominator variance is 0")
    return float(np.var(a, ddof=1)) / var_b


def coefficient_of_variation_ratio(
    series_a: ArrayLike, series_b: ArrayLike
) -> float:
    """CV(a)/CV(b) — scale-free burstiness comparison."""
    stats_a = summarize(series_a)
    stats_b = summarize(series_b)
    if stats_b.cv == 0:
        raise InsufficientDataError("CV ratio: denominator CV is 0")
    return stats_a.cv / stats_b.cv
