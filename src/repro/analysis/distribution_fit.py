"""Distribution fitting with information-criterion model selection.

"The workload dynamics show some patterns that can be quantified by
formal models" (Section 4.1) — this module fits the classic candidate
families for resource-demand marginals (normal, log-normal, gamma,
Weibull, exponential) by maximum likelihood, scores each with AIC/BIC
and the Kolmogorov-Smirnov statistic, and picks a winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import AnalysisError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries

#: Candidate families: name -> scipy distribution.
CANDIDATE_FAMILIES: Dict[str, scipy_stats.rv_continuous] = {
    "normal": scipy_stats.norm,
    "lognormal": scipy_stats.lognorm,
    "gamma": scipy_stats.gamma,
    "weibull": scipy_stats.weibull_min,
    "exponential": scipy_stats.expon,
}

#: Families that require strictly positive support.
_POSITIVE_ONLY = {"lognormal", "gamma", "weibull", "exponential"}

_MIN_SAMPLES = 8


@dataclass(frozen=True)
class DistributionFit:
    """One fitted family with its goodness-of-fit scores."""

    family: str
    params: Tuple[float, ...]
    log_likelihood: float
    aic: float
    bic: float
    ks_statistic: float
    ks_pvalue: float

    def frozen(self):
        """The scipy frozen distribution for sampling/evaluation."""
        return CANDIDATE_FAMILIES[self.family](*self.params)


def _prepare(series: Union[TimeSeries, np.ndarray, list]) -> np.ndarray:
    values = (
        series.values if isinstance(series, TimeSeries)
        else np.asarray(series, dtype=float)
    )
    if values.size < _MIN_SAMPLES:
        raise InsufficientDataError(
            f"distribution fitting needs >= {_MIN_SAMPLES} samples, "
            f"got {values.size}"
        )
    if not np.isfinite(values).all():
        raise AnalysisError("series contains non-finite values")
    return values


def fit_candidates(
    series: Union[TimeSeries, np.ndarray, list],
    families: Sequence[str] = None,
) -> List[DistributionFit]:
    """Fit every candidate family; returns fits sorted by AIC (best first).

    Families needing positive support are skipped for series with
    non-positive values.  Degenerate (zero-variance) series raise.
    """
    values = _prepare(series)
    if np.var(values) == 0:
        raise AnalysisError("cannot fit distributions to a constant series")
    names = list(families) if families is not None else list(CANDIDATE_FAMILIES)
    fits: List[DistributionFit] = []
    for name in names:
        if name not in CANDIDATE_FAMILIES:
            raise AnalysisError(f"unknown family {name!r}")
        if name in _POSITIVE_ONLY and (values <= 0).any():
            continue
        distribution = CANDIDATE_FAMILIES[name]
        try:
            if name in _POSITIVE_ONLY:
                params = distribution.fit(values, floc=0.0)
            else:
                params = distribution.fit(values)
            log_likelihood = float(
                np.sum(distribution.logpdf(values, *params))
            )
        except Exception:  # scipy fit can fail on pathological data
            continue
        if not np.isfinite(log_likelihood):
            continue
        k = len(params)
        n = values.size
        aic = 2 * k - 2 * log_likelihood
        bic = k * np.log(n) - 2 * log_likelihood
        ks_stat, ks_p = scipy_stats.kstest(values, name_to_cdf(name, params))
        fits.append(
            DistributionFit(
                family=name,
                params=tuple(float(p) for p in params),
                log_likelihood=log_likelihood,
                aic=float(aic),
                bic=float(bic),
                ks_statistic=float(ks_stat),
                ks_pvalue=float(ks_p),
            )
        )
    if not fits:
        raise AnalysisError("no candidate family could be fitted")
    return sorted(fits, key=lambda fit: fit.aic)


def name_to_cdf(name: str, params: Tuple[float, ...]):
    """CDF callable of a fitted family (helper for K-S tests)."""
    distribution = CANDIDATE_FAMILIES[name]

    def cdf(x):
        return distribution.cdf(x, *params)

    return cdf


def best_fit(
    series: Union[TimeSeries, np.ndarray, list],
    families: Sequence[str] = None,
) -> DistributionFit:
    """The AIC-best candidate family for ``series``."""
    return fit_candidates(series, families)[0]
