"""Formal workload models (the paper's promised future work).

Section 5: "We plan to design and apply formal methods to model the
workload dynamics at both resource level and transaction level."  Three
standard models from the workload-modeling literature are implemented
and benchmarked against each other (experiment M1):

* :class:`ARModel` — autoregressive AR(p), fitted by Yule-Walker;
  captures the short-range temporal correlation of resource demand.
* :class:`HistogramWorkloadModel` — the histogram workload model of
  Hernandez-Orallo & Vila-Carbo (the paper's reference [7]); captures
  the marginal distribution, ignores temporal order.
* :class:`RegimeModel` — a two-regime (low/high) Markov-modulated model;
  captures bursts/level shifts that AR smooths over.

Each model exposes ``fit``, ``simulate`` and ``one_step_rmse`` so the
bench can score them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

from repro.errors import AnalysisError, ConfigurationError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries

ArrayLike = Union[TimeSeries, np.ndarray, list]


def _as_array(series: ArrayLike) -> np.ndarray:
    values = (
        series.values if isinstance(series, TimeSeries)
        else np.asarray(series, dtype=float)
    )
    if not np.isfinite(values).all():
        raise AnalysisError("series contains non-finite values")
    return values


@dataclass
class ARModel:
    """Autoregressive model of order p, fitted by Yule-Walker."""

    order: int = 2
    coefficients: np.ndarray = field(default=None, repr=False)
    mean: float = 0.0
    noise_std: float = 0.0
    _fitted: bool = False

    def fit(self, series: ArrayLike) -> "ARModel":
        values = _as_array(series)
        p = self.order
        if p < 1:
            raise ConfigurationError("AR order must be >= 1")
        if values.size < 4 * p:
            raise InsufficientDataError(
                f"AR({p}) needs >= {4 * p} samples, got {values.size}"
            )
        self.mean = float(values.mean())
        centered = values - self.mean
        denominator = float(np.dot(centered, centered)) / values.size
        if denominator == 0:
            raise AnalysisError("cannot fit AR to a constant series")
        # Autocovariance at lags 0..p.
        gamma = np.array(
            [
                np.dot(centered[: values.size - k], centered[k:]) / values.size
                for k in range(p + 1)
            ]
        )
        # Yule-Walker: R phi = r with Toeplitz R of gamma[0..p-1].
        R = np.empty((p, p))
        for i in range(p):
            for j in range(p):
                R[i, j] = gamma[abs(i - j)]
        r = gamma[1 : p + 1]
        try:
            phi = np.linalg.solve(R, r)
        except np.linalg.LinAlgError as exc:
            raise AnalysisError(f"Yule-Walker system singular: {exc}") from exc
        self.coefficients = phi
        noise_var = float(gamma[0] - np.dot(phi, r))
        self.noise_std = float(np.sqrt(max(noise_var, 0.0)))
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise AnalysisError("model is not fitted")

    def predict_one_step(self, history: ArrayLike) -> float:
        """Predict the next value from the last ``order`` observations."""
        self._require_fitted()
        values = _as_array(history)
        if values.size < self.order:
            raise InsufficientDataError(
                f"need >= {self.order} history samples"
            )
        window = values[-self.order :][::-1] - self.mean
        return self.mean + float(np.dot(self.coefficients, window))

    def one_step_rmse(self, series: ArrayLike) -> float:
        """In-sample one-step-ahead RMSE."""
        self._require_fitted()
        values = _as_array(series)
        p = self.order
        if values.size <= p:
            raise InsufficientDataError("series shorter than the AR order")
        centered = values - self.mean
        errors = []
        for t in range(p, values.size):
            prediction = np.dot(self.coefficients, centered[t - p : t][::-1])
            errors.append(centered[t] - prediction)
        return float(np.sqrt(np.mean(np.square(errors))))

    def simulate(
        self, n: int, rng: np.random.Generator, burn_in: int = 100
    ) -> np.ndarray:
        """Generate a synthetic series of length n."""
        self._require_fitted()
        p = self.order
        total = n + burn_in
        out = np.zeros(total + p)
        noise = rng.normal(0.0, self.noise_std, size=total + p)
        for t in range(p, total + p):
            out[t] = np.dot(self.coefficients, out[t - p : t][::-1]) + noise[t]
        return out[-n:] + self.mean

    def is_stationary(self) -> bool:
        """All roots of the AR characteristic polynomial outside unit circle."""
        self._require_fitted()
        poly = np.concatenate(([1.0], -self.coefficients))
        roots = np.roots(poly[::-1])
        return bool(np.all(np.abs(roots) > 1.0))


@dataclass
class HistogramWorkloadModel:
    """Histogram model of the demand marginal (paper reference [7])."""

    bins: int = 20
    edges: np.ndarray = field(default=None, repr=False)
    probabilities: np.ndarray = field(default=None, repr=False)
    _fitted: bool = False

    def fit(self, series: ArrayLike) -> "HistogramWorkloadModel":
        values = _as_array(series)
        if values.size < self.bins:
            raise InsufficientDataError(
                f"histogram model needs >= {self.bins} samples"
            )
        counts, edges = np.histogram(values, bins=self.bins)
        total = counts.sum()
        if total == 0:
            raise AnalysisError("empty histogram")
        self.edges = edges
        self.probabilities = counts / total
        self._fitted = True
        return self

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw n values: pick a bin, then uniform within it."""
        if not self._fitted:
            raise AnalysisError("model is not fitted")
        bins = rng.choice(self.probabilities.size, size=n, p=self.probabilities)
        left = self.edges[bins]
        right = self.edges[bins + 1]
        return rng.uniform(left, right)

    def mean(self) -> float:
        if not self._fitted:
            raise AnalysisError("model is not fitted")
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float(np.dot(centers, self.probabilities))

    def one_step_rmse(self, series: ArrayLike) -> float:
        """Order-free baseline: RMSE of predicting the marginal mean."""
        values = _as_array(series)
        return float(np.sqrt(np.mean(np.square(values - self.mean()))))


@dataclass
class RegimeModel:
    """Two-regime Markov-modulated Gaussian model.

    Regimes are separated with a one-dimensional two-means split
    (Lloyd's algorithm), then within-regime mean/std and the empirical
    regime-transition matrix are estimated.  This is the simplest model
    family able to represent the figures' step jumps.
    """

    #: Lloyd iterations for the 1-D two-means split.
    kmeans_iterations: int = 50
    means: Tuple[float, float] = (0.0, 0.0)
    stds: Tuple[float, float] = (0.0, 0.0)
    transition: np.ndarray = field(default=None, repr=False)
    _fitted: bool = False

    @staticmethod
    def _two_means_threshold(values: np.ndarray, iterations: int) -> float:
        low, high = float(values.min()), float(values.max())
        for _ in range(iterations):
            threshold = 0.5 * (low + high)
            below = values[values <= threshold]
            above = values[values > threshold]
            if below.size == 0 or above.size == 0:
                break
            new_low, new_high = float(below.mean()), float(above.mean())
            if new_low == low and new_high == high:
                break
            low, high = new_low, new_high
        return 0.5 * (low + high)

    def fit(self, series: ArrayLike) -> "RegimeModel":
        values = _as_array(series)
        if values.size < 20:
            raise InsufficientDataError("regime model needs >= 20 samples")
        if self.kmeans_iterations < 1:
            raise ConfigurationError("kmeans_iterations must be >= 1")
        threshold = self._two_means_threshold(
            values, self.kmeans_iterations
        )
        states = (values > threshold).astype(int)
        if states.min() == states.max():
            # Degenerate: the series never leaves one regime.
            states = np.zeros_like(states)
            states[np.argmax(values)] = 1
        regime_means = []
        regime_stds = []
        for state in (0, 1):
            members = values[states == state]
            if members.size == 0:
                members = values
            regime_means.append(float(members.mean()))
            regime_stds.append(float(members.std() or 1e-9))
        self.means = tuple(regime_means)
        self.stds = tuple(regime_stds)
        transition = np.zeros((2, 2))
        for a, b in zip(states[:-1], states[1:]):
            transition[a, b] += 1
        row_sums = transition.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0] = 1.0
        self.transition = transition / row_sums
        self._fitted = True
        return self

    def simulate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if not self._fitted:
            raise AnalysisError("model is not fitted")
        out = np.empty(n)
        state = 0
        for t in range(n):
            out[t] = rng.normal(self.means[state], self.stds[state])
            state = int(rng.uniform() < self.transition[state, 1])
        return out

    def one_step_rmse(self, series: ArrayLike) -> float:
        """RMSE of predicting the current regime's mean for the next step."""
        if not self._fitted:
            raise AnalysisError("model is not fitted")
        values = _as_array(series)
        threshold_mid = 0.5 * (self.means[0] + self.means[1])
        errors = []
        for t in range(1, values.size):
            state = int(values[t - 1] > threshold_mid)
            # Expected next regime under the transition matrix.
            p_high = self.transition[state, 1]
            prediction = (1 - p_high) * self.means[0] + p_high * self.means[1]
            errors.append(values[t] - prediction)
        return float(np.sqrt(np.mean(np.square(errors))))
