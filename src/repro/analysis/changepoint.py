"""Level-shift (step jump) detection for memory series.

The paper's Figures 2 and 6 show abrupt, persistent increases of used
memory ("the browsing requests experience one or more jumps demanding
more RAM").  The detector here is a two-window median-shift scan, robust
to the sampling noise the series carry:

for every candidate index, compare the median of the ``window`` samples
before against the median of the ``window`` samples after; a shift
larger than ``min_shift`` is a candidate changepoint; neighbouring
candidates collapse to the locally strongest one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

import numpy as np

from repro.errors import ConfigurationError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries

ArrayLike = Union[TimeSeries, np.ndarray, list]


@dataclass(frozen=True)
class LevelShift:
    """One detected step."""

    index: int
    time_s: float
    magnitude: float

    @property
    def upward(self) -> bool:
        return self.magnitude > 0


def detect_level_shifts(
    series: ArrayLike,
    min_shift: float,
    window: int = 10,
    min_separation: int = None,
) -> List[LevelShift]:
    """Detect persistent level shifts of at least ``min_shift``.

    Args:
        series: the sampled level process (e.g. used-memory MB).
        min_shift: minimum |median-after - median-before| to report.
        window: samples on each side of the candidate index.
        min_separation: minimum index distance between reported shifts
            (defaults to ``window``).

    Returns:
        Shifts sorted by time.  ``time_s`` is taken from the series'
        time axis when a :class:`TimeSeries` is given, else the index.
    """
    if window < 2:
        raise ConfigurationError("window must be >= 2")
    if min_shift <= 0:
        raise ConfigurationError("min_shift must be positive")
    if min_separation is None:
        min_separation = window
    if isinstance(series, TimeSeries):
        values = series.values
        times = series.times
    else:
        values = np.asarray(series, dtype=float)
        times = np.arange(values.size, dtype=float)
    if values.size < 2 * window + 1:
        raise InsufficientDataError(
            f"need >= {2 * window + 1} samples for window={window}"
        )

    shifts = np.zeros(values.size)
    for i in range(window, values.size - window):
        before = np.median(values[i - window : i])
        after = np.median(values[i : i + window])
        shifts[i] = after - before

    candidates = [
        i for i in range(values.size) if abs(shifts[i]) >= min_shift
    ]
    results: List[LevelShift] = []
    while candidates:
        # Strongest remaining candidate wins; suppress its neighbourhood.
        best = max(candidates, key=lambda i: abs(shifts[i]))
        results.append(
            LevelShift(
                index=best,
                time_s=float(times[best]),
                magnitude=float(shifts[best]),
            )
        )
        candidates = [
            i for i in candidates if abs(i - best) >= min_separation
        ]
    return sorted(results, key=lambda shift: shift.index)


def count_upward_jumps(
    series: ArrayLike, min_shift: float, window: int = 10
) -> int:
    """Number of upward level shifts (the paper's 'RAM jumps')."""
    shifts = detect_level_shifts(series, min_shift, window)
    return sum(1 for shift in shifts if shift.upward)


def first_jump_time(
    series: ArrayLike, min_shift: float, window: int = 10
) -> float:
    """Time of the earliest upward jump; +inf when none exists.

    Used for the paper's Q3 comparison ("the jumps happen earlier in
    time than those in the virtualized system").
    """
    shifts = detect_level_shifts(series, min_shift, window)
    upward = [shift for shift in shifts if shift.upward]
    if not upward:
        return float("inf")
    return min(shift.time_s for shift in upward)
