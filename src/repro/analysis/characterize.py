"""One-call workload characterization over a trace set.

``characterize_trace_set`` runs the full Section-4 analysis pipeline on
one run's traces: per-series summary statistics and best-fit marginal
distribution, RAM jump detection per entity, the web->db lag, and —
when the trace set contains a dom0 entity — the R1/R2 ratio vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.changepoint import LevelShift, detect_level_shifts
from repro.analysis.correlation import LagEstimate, estimate_lag
from repro.analysis.distribution_fit import DistributionFit, best_fit
from repro.analysis.ratios import (
    DEFAULT_WARMUP_S,
    ResourceVector,
    tier_ratios,
    vm_to_hypervisor_ratios,
)
from repro.analysis.stats import SummaryStats, summarize
from repro.errors import AnalysisError
from repro.monitoring.timeseries import TraceSet

#: RAM jump detection defaults (MB, samples).
RAM_JUMP_MIN_SHIFT_MB = 50.0
RAM_JUMP_WINDOW = 8
LAG_MAX_SAMPLES = 15


@dataclass
class SeriesCharacterization:
    """Stats + fitted marginal for one series."""

    entity: str
    resource: str
    stats: SummaryStats
    fit: Optional[DistributionFit]


@dataclass
class WorkloadCharacterization:
    """Everything the characterizer extracted from one run."""

    environment: str
    workload: str
    series: Dict[Tuple[str, str], SeriesCharacterization] = field(
        default_factory=dict
    )
    ram_jumps: Dict[str, List[LevelShift]] = field(default_factory=dict)
    web_db_lag: Optional[LagEstimate] = None
    tier_ratio: Optional[ResourceVector] = None
    vm_dom0_ratio: Optional[ResourceVector] = None

    def series_for(self, entity: str, resource: str) -> SeriesCharacterization:
        key = (entity, resource)
        if key not in self.series:
            raise AnalysisError(f"no characterization for {key}")
        return self.series[key]

    def upward_ram_jumps(self, entity: str) -> List[LevelShift]:
        return [s for s in self.ram_jumps.get(entity, []) if s.upward]


def characterize_trace_set(
    traces: TraceSet,
    warmup_s: float = DEFAULT_WARMUP_S,
    ram_jump_min_shift_mb: float = RAM_JUMP_MIN_SHIFT_MB,
    fit_distributions: bool = True,
) -> WorkloadCharacterization:
    """Run the full characterization pipeline on ``traces``."""
    result = WorkloadCharacterization(
        environment=traces.environment, workload=traces.workload
    )
    for (entity, resource), _ in traces.items():
        series = traces.get(entity, resource).without_warmup(warmup_s)
        if len(series) < 2:
            raise AnalysisError(
                f"series {(entity, resource)} too short after warm-up"
            )
        fit = None
        if fit_distributions and len(series) >= 8:
            try:
                fit = best_fit(series)
            except AnalysisError:
                fit = None  # constant or degenerate series
        result.series[(entity, resource)] = SeriesCharacterization(
            entity=entity, resource=resource, stats=summarize(series), fit=fit
        )

    for entity in traces.entities():
        if not traces.has(entity, "mem_used_mb"):
            # Non-resource entities (e.g. the elastic controller's
            # series) have no RAM trace to scan for jumps.
            continue
        ram = traces.get(entity, "mem_used_mb")
        if len(ram) >= 2 * RAM_JUMP_WINDOW + 1:
            result.ram_jumps[entity] = detect_level_shifts(
                ram, ram_jump_min_shift_mb, RAM_JUMP_WINDOW
            )
        else:
            result.ram_jumps[entity] = []

    web_cpu = traces.get("web", "cpu_cycles").without_warmup(warmup_s)
    db_cpu = traces.get("db", "cpu_cycles").without_warmup(warmup_s)
    max_lag = min(LAG_MAX_SAMPLES, max(1, len(web_cpu) // 4))
    if len(web_cpu) > max_lag + 1:
        result.web_db_lag = estimate_lag(
            web_cpu, db_cpu, max_lag, traces.sample_period_s
        )

    result.tier_ratio = tier_ratios(traces, warmup_s)
    if traces.has("dom0", "cpu_cycles"):
        result.vm_dom0_ratio = vm_to_hypervisor_ratios(traces, warmup_s)
    return result
