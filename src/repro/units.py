"""Unit constants and conversion helpers.

The paper reports resources in four classes with fixed units:

* CPU in **cycles** (per 2-second sample),
* RAM in **MB** (a level, not a rate),
* disk traffic in **KB** read+written per sample,
* network traffic in **KB** received+transmitted per sample.

Internally the simulator accounts in base units (cycles, bytes) and the
monitoring layer converts on export.  All constants here use the decimal
(SI-style) convention that sysstat uses for data rates: 1 KB = 1024 bytes
for memory-like quantities, matching the ``kbmemused``-style counters.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------
MILLISECOND = 1e-3
MICROSECOND = 1e-6
SECOND = 1.0
MINUTE = 60.0

#: Sampling period used throughout the paper ("Time(Sample 2s)" axes).
SAMPLE_PERIOD_S = 2.0

# -- data size -------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# -- frequency -------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def bytes_to_kb(n_bytes: float) -> float:
    """Convert a byte count to KB (1024-based), as sysstat reports."""
    return n_bytes / KB


def bytes_to_mb(n_bytes: float) -> float:
    """Convert a byte count to MB (1024-based)."""
    return n_bytes / MB


def kb_to_bytes(n_kb: float) -> float:
    """Convert KB to bytes."""
    return n_kb * KB


def mb_to_bytes(n_mb: float) -> float:
    """Convert MB to bytes."""
    return n_mb * MB


def cycles_for(seconds: float, frequency_hz: float) -> float:
    """Number of cycles a core at ``frequency_hz`` executes in ``seconds``."""
    return seconds * frequency_hz


def seconds_for(cycles: float, frequency_hz: float) -> float:
    """Time a core at ``frequency_hz`` needs to execute ``cycles``."""
    if frequency_hz <= 0:
        raise ValueError("frequency_hz must be positive")
    return cycles / frequency_hz
