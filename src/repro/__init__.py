"""repro — reproduction of "Characterizing Workload of Web Applications
on Virtualized Servers" (Wang, Huang, Fu, Kavi; 2014).

The library has three layers:

1. **Simulated testbed** — a discrete-event simulation of the paper's
   cloud (:mod:`repro.sim`, :mod:`repro.hardware`, :mod:`repro.virt`)
   running the RUBiS three-tier benchmark (:mod:`repro.rubis`) in a
   virtualized or bare-metal deployment.
2. **Profiling pipeline** — the 518-metric sysstat/perf monitoring
   substrate sampling at the paper's 2-second period
   (:mod:`repro.monitoring`).
3. **Characterization library** — the paper's analysis: summary
   statistics, distribution fitting, inter-tier lag, RAM-jump
   detection, demand-ratio tables, formal workload models
   (:mod:`repro.analysis`), plus the capacity-planning layer the paper
   motivates (:mod:`repro.planning`) and the open-loop traffic
   subsystem that replays and model-synthesizes offered-load traces
   (:mod:`repro.traffic`).

Quick start::

    from repro import run_scenario, scenario, characterize_trace_set

    result = run_scenario(scenario("virtualized", "browsing"))
    report = characterize_trace_set(result.traces)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.errors import (
    AnalysisError,
    CapacityError,
    ConfigurationError,
    InsufficientDataError,
    MonitoringError,
    ReproError,
    SchedulingError,
    SimulationError,
    UnknownMetricError,
)
from repro.sim import Simulator, RandomStreams
from repro.hardware import Cluster, PhysicalServer, ServerSpec
from repro.virt import CreditScheduler, Domain, Hypervisor, OverheadModel
from repro.rubis import (
    BareMetalDeployment,
    ClientPopulation,
    RubisDatabase,
    VirtualizedDeployment,
    WorkloadMix,
)
from repro.monitoring import (
    TraceRecorder,
    TraceSet,
    TimeSeries,
    build_registry,
)
from repro.analysis import (
    ARModel,
    HistogramWorkloadModel,
    RegimeModel,
    best_fit,
    characterize_trace_set,
    detect_level_shifts,
    estimate_lag,
    render_characterization_report,
    summarize,
)
from repro.planning import (
    ResourceCapacity,
    SlaTarget,
    evaluate_sla,
    plan_capacity,
    project_workload,
)
from repro.traffic import (
    OpenLoopDriver,
    RateTrace,
    TrafficSpec,
    fit_rate_models,
    synthesize_rate_trace,
)
from repro.workloads import (
    MapReduceWorkload,
    RubisWorkload,
    TenantSpec,
    Workload,
)
from repro.control import (
    ControllerSpec,
    ElasticController,
    SignalTap,
    build_policy,
)
from repro.placement import (
    FleetController,
    FleetSpec,
    LiveMigration,
    PlacementEngine,
    VmRequest,
)
from repro.obs import (
    AnnotationStream,
    Diagnosis,
    Incident,
    ObsRecorder,
    build_manifest,
    diagnose,
    grade_attribution,
    render_policy_ranking_table,
)
from repro.experiments import (
    ExperimentResult,
    TestbedBuilder,
    autoscaled_consolidated_scenario,
    autoscaled_flash_crowd_scenario,
    compare_with_paper,
    consolidated_scenario,
    consolidated_web_batch_scenario,
    flash_crowd_scenario,
    interference_checks,
    open_loop_scenario,
    paper_matrix_suite,
    paper_scenarios,
    qualitative_checks,
    render_suite_ratio_table,
    run_scenario,
    run_scenario_cached,
    run_suite,
    scenario,
    scenario_catalog,
    suite_grid,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulingError",
    "CapacityError",
    "MonitoringError",
    "UnknownMetricError",
    "AnalysisError",
    "InsufficientDataError",
    # simulation + testbed
    "Simulator",
    "RandomStreams",
    "Cluster",
    "PhysicalServer",
    "ServerSpec",
    "CreditScheduler",
    "Domain",
    "Hypervisor",
    "OverheadModel",
    # RUBiS
    "RubisDatabase",
    "WorkloadMix",
    "ClientPopulation",
    "VirtualizedDeployment",
    "BareMetalDeployment",
    # monitoring
    "TraceRecorder",
    "TraceSet",
    "TimeSeries",
    "build_registry",
    # analysis
    "summarize",
    "best_fit",
    "estimate_lag",
    "detect_level_shifts",
    "characterize_trace_set",
    "render_characterization_report",
    "ARModel",
    "HistogramWorkloadModel",
    "RegimeModel",
    # planning
    "ResourceCapacity",
    "plan_capacity",
    "SlaTarget",
    "evaluate_sla",
    "project_workload",
    # traffic
    "OpenLoopDriver",
    "RateTrace",
    "TrafficSpec",
    "synthesize_rate_trace",
    "fit_rate_models",
    # workloads
    "Workload",
    "TenantSpec",
    "RubisWorkload",
    "MapReduceWorkload",
    # elastic control
    "ControllerSpec",
    "ElasticController",
    "SignalTap",
    "build_policy",
    # placement
    "FleetController",
    "FleetSpec",
    "LiveMigration",
    "PlacementEngine",
    "VmRequest",
    # observability
    "AnnotationStream",
    "ObsRecorder",
    "Incident",
    "Diagnosis",
    "diagnose",
    "grade_attribution",
    "build_manifest",
    "render_policy_ranking_table",
    # experiments
    "scenario",
    "open_loop_scenario",
    "flash_crowd_scenario",
    "autoscaled_flash_crowd_scenario",
    "autoscaled_consolidated_scenario",
    "consolidated_scenario",
    "consolidated_web_batch_scenario",
    "paper_scenarios",
    "scenario_catalog",
    "TestbedBuilder",
    "run_scenario",
    "run_scenario_cached",
    "ExperimentResult",
    "compare_with_paper",
    "qualitative_checks",
    # suite orchestration
    "suite_grid",
    "paper_matrix_suite",
    "run_suite",
    "interference_checks",
    "render_suite_ratio_table",
    "__version__",
]
