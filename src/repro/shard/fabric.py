"""The ordered message fabric between shard workers and coordinator.

All cross-shard traffic is plain data moving over per-shard queue
pairs in a fixed alternation: every window, each worker sends exactly
one ``signals`` message up and receives exactly one ``commands``
message down; after the last window it sends one ``result`` message.
The coordinator always drains shards in index order, so message
arrival order is deterministic and — because the *content* of every
message is a pure function of pod state and the optimizer is a pure
function of the sorted signals — the whole exchange is bit-identical
across shard counts.

Window messages double as heartbeats: a shard that fails to deliver
its message within the deadline fails the run fast with a
:class:`ShardTimeoutError` naming the shard and the server groups
(pods) it owns; a shard that raises ships the traceback up as an
``error`` message, re-raised as :class:`ShardWorkerError`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError, SimulationError

#: Message kinds a worker may send up (worker -> coordinator).
MSG_SIGNALS = "signals"
MSG_RESULT = "result"
MSG_ERROR = "error"
#: Message kind the coordinator sends down (coordinator -> worker).
MSG_COMMANDS = "commands"

#: Env hook for the heartbeat tests: a worker whose shard index equals
#: this value hangs forever before its first window message.
HANG_ENV = "REPRO_SHARD_TEST_HANG"


class ShardError(SimulationError):
    """Base class of sharded-fleet execution failures."""


class ShardTimeoutError(ShardError):
    """A shard worker missed its window-message deadline."""

    def __init__(
        self,
        shard: int,
        pods: Sequence[str],
        timeout_s: float,
        window_index: int,
    ) -> None:
        self.shard = shard
        self.pods = list(pods)
        self.timeout_s = timeout_s
        self.window_index = window_index
        super().__init__(
            f"shard {shard} (server groups: {', '.join(self.pods)}) sent "
            f"no heartbeat within {timeout_s:g}s while the coordinator "
            f"waited for window {window_index}"
        )


class ShardWorkerError(ShardError):
    """A shard worker process raised; carries its traceback text."""

    def __init__(self, shard: int, pods: Sequence[str], traceback: str) -> None:
        self.shard = shard
        self.pods = list(pods)
        self.traceback = traceback
        super().__init__(
            f"shard {shard} (server groups: {', '.join(pods)}) failed:\n"
            f"{traceback}"
        )


def shard_partition(
    pod_names: Sequence[str], shards: int
) -> List[List[str]]:
    """Round-robin pods over shards (pure, order-preserving).

    Pod ``i`` lands on shard ``i % shards`` — a function of the fleet
    definition only, never of runtime load, so the partition itself
    can't perturb determinism.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shards > len(pod_names):
        raise ConfigurationError(
            f"{shards} shards for {len(pod_names)} pod(s); "
            "shards must not exceed the pod count"
        )
    groups: List[List[str]] = [[] for _ in range(shards)]
    for index, name in enumerate(pod_names):
        groups[index % shards].append(name)
    return groups


def signals_message(window_index: int, shard: int, signals: Dict[str, dict]):
    return (MSG_SIGNALS, window_index, shard, signals)


def commands_message(window_index: int, commands: Dict[str, List[dict]]):
    return (MSG_COMMANDS, window_index, commands)


def result_message(shard: int, summaries: Dict[str, dict]):
    return (MSG_RESULT, shard, summaries)


def error_message(shard: int, traceback: str):
    return (MSG_ERROR, shard, traceback)
