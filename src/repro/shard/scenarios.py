"""Canonical fleet scenarios for the sharded engine.

Three families:

* ``two_pod_fleet`` — the cross-pod evacuation story: a crash fault
  kills the east pod's second server, its fleet controller detects
  the failure and evacuates locally, but a deliberately oversized
  ballast VM (26 GB against the surviving server's 24 GB of free
  guest memory) is *stranded* — no local survivor can host it.  The
  optimizer ships it to the west pod, whose second server is empty.
  The ``_watch`` variant runs the same pods without an optimizer, so
  tests can assert the evacuation actually changed the outcome.

* ``fleet_optimizer_demo`` — the bill-reading story: every pod carries
  idle 8-VCPU ballast reservations that push the fleet's
  $-per-kilorequest over budget; the optimizer throttles them to the
  cap floor, window by window, and the run ends strictly cheaper per
  request than the ``_watch`` baseline at the same seed.

* ``datacenter_fleet`` — the scale benchmark: 25 pods x 4 servers x
  40 VMs = 100 servers / 1000 VMs, the configuration the shard-scale
  benchmark and PERFORMANCE.md table run at.
"""

from __future__ import annotations

from typing import Dict

from repro.config import ExperimentConfig
from repro.placement.spec import FleetSpec
from repro.planning.budget import BudgetSpec
from repro.shard.spec import FleetScenario, OptimizerSpec, PodSpec
from repro.workloads.base import BALLAST, TenantSpec

#: FleetSpec thresholds that disable voluntary (hotspot) migrations —
#: used when a scenario wants failure detection only.
_NEVER_HOT = {"p95_high_ms": 10_000.0, "ready_high_s": 1_000.0}


def _stranding_pod_config(seed: int) -> ExperimentConfig:
    """Two servers; a crash strands an oversized ballast VM.

    Priority placement spreads the web pair onto server 1 and packs
    both batch VMs — a 26 GB ballast and a busy MapReduce tenant —
    onto server 2.  When server 2 crashes at t=20 s, the MapReduce
    tenant's starved demand floods CPU-ready time (the failure
    signature), the tenant itself evacuates to server 1, but the
    ballast cannot: server 1's 24 GB of free guest memory is smaller
    than its 26 GB reservation.  Stranded — until a fleet optimizer
    ships it to another pod.
    """
    return ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        seed=seed,
        clients=60,
        servers=2,
        placement="priority",
        tenants=(
            TenantSpec(
                name="heavy",
                workload=BALLAST,
                vcpus=8,
                memory_gb=26.0,
            ),
            TenantSpec(
                name="mr",
                workload="mapreduce",
                vcpus=8,
                memory_gb=2.0,
                job="sort",
                arrival_rate_per_s=0.25,
            ),
        ),
        fleet=FleetSpec(
            max_migrations=1,
            fail_ready_s=6.0,
            fail_windows=2,
            migration_bandwidth_bps=125e6,
            **_NEVER_HOT,
        ),
        faults="crash@20:0:0.01/cloud-2",
    )


def _receiver_pod_config(seed: int) -> ExperimentConfig:
    """Two servers, web pair only: the second server is all headroom."""
    return ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        seed=seed,
        clients=60,
        servers=2,
        placement="firstfit",
        fleet=FleetSpec(
            max_migrations=1,
            fail_ready_s=6.0,
            fail_windows=2,
            migration_bandwidth_bps=125e6,
            **_NEVER_HOT,
        ),
    )


def two_pod_fleet(seed: int = 42, optimizer: bool = True) -> FleetScenario:
    """Crash, strand, and (with an optimizer) evacuate cross-pod."""
    name = "two-pod" if optimizer else "two-pod-watch"
    return FleetScenario(
        name=name,
        pods=(
            PodSpec("east", _stranding_pod_config(seed)),
            PodSpec("west", _receiver_pod_config(seed)),
        ),
        duration_s=60.0,
        window_s=10.0,
        seed=seed,
        optimizer=(
            OptimizerSpec(slo_p95_ms=10_000.0) if optimizer else None
        ),
        description=(
            "crash strands a 26 GB ballast VM in the east pod; the "
            "optimizer evacuates it to the west pod's empty server"
        ),
    )


def two_pod_fleet_watch(seed: int = 42) -> FleetScenario:
    return two_pod_fleet(seed=seed, optimizer=False)


def _billing_pod_config(seed: int) -> ExperimentConfig:
    """Two servers serving web traffic next to idle 8-VCPU ballast."""
    return ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        seed=seed,
        clients=60,
        servers=2,
        placement="balance",
        tenants=tuple(
            TenantSpec(
                name=f"idle{index}",
                workload=BALLAST,
                vcpus=8,
                memory_gb=2.0,
            )
            for index in range(1, 4)
        ),
    )


def fleet_optimizer_demo(
    seed: int = 42, optimizer: bool = True
) -> FleetScenario:
    """Idle reservations overrun the budget; the optimizer scales down."""
    name = "optimizer-demo" if optimizer else "optimizer-demo-watch"
    return FleetScenario(
        name=name,
        pods=(
            PodSpec("pod-a", _billing_pod_config(seed)),
            PodSpec("pod-b", _billing_pod_config(seed)),
        ),
        duration_s=60.0,
        window_s=10.0,
        seed=seed,
        optimizer=(
            OptimizerSpec(
                slo_p95_ms=10_000.0,
                budget=BudgetSpec(
                    usd_per_kilorequest=0.003,
                    min_cap_cores=1.0,
                    over_windows=2,
                ),
            )
            if optimizer
            else None
        ),
        description=(
            "idle 8-VCPU ballasts push $-per-kilorequest over budget; "
            "the optimizer throttles them to the 1-core floor"
        ),
    )


def fleet_optimizer_demo_watch(seed: int = 42) -> FleetScenario:
    return fleet_optimizer_demo(seed=seed, optimizer=False)


def _datacenter_pod_config(seed: int, clients: int) -> ExperimentConfig:
    """Four servers, 40 VMs: web pair + 2 batch VMs + 36 ballast."""
    tenants = [
        TenantSpec(
            name=f"mr{index}",
            workload="mapreduce",
            vcpus=2,
            memory_gb=2.0,
            job="sort",
            input_mb=64.0,
            tasks=4,
            arrival_rate_per_s=0.02,
            map_slots=2,
            reduce_slots=1,
        )
        for index in range(1, 3)
    ]
    tenants.extend(
        TenantSpec(
            name=f"b{index:02d}",
            workload=BALLAST,
            vcpus=1,
            memory_gb=1.5,
        )
        for index in range(1, 37)
    )
    return ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        seed=seed,
        clients=clients,
        servers=4,
        placement="firstfit",
        tenants=tuple(tenants),
    )


def datacenter_fleet(
    seed: int = 42,
    pods: int = 25,
    duration_s: float = 60.0,
    clients: int = 100,
) -> FleetScenario:
    """The 100-server / 1000-VM scale configuration (25 x 4 x 40)."""
    return FleetScenario(
        name="datacenter",
        pods=tuple(
            PodSpec(
                f"pod-{index:02d}", _datacenter_pod_config(seed, clients)
            )
            for index in range(1, pods + 1)
        ),
        duration_s=duration_s,
        window_s=10.0,
        seed=seed,
        description=(
            f"{pods} pods x 4 servers x 40 VMs — the shard-scale "
            "benchmark fleet"
        ),
    )


def fleet_catalog(
    seed: int = 42, quick: bool = False
) -> Dict[str, FleetScenario]:
    """Every named fleet, for the CLI's ``--fleet`` flag.

    ``quick=True`` shrinks the datacenter fleet (fewer pods, shorter
    horizon) for smoke jobs; the two-pod fleets are already small.
    """
    datacenter = (
        datacenter_fleet(seed=seed, pods=4, duration_s=30.0, clients=60)
        if quick
        else datacenter_fleet(seed=seed)
    )
    fleets = (
        two_pod_fleet(seed=seed),
        two_pod_fleet_watch(seed=seed),
        fleet_optimizer_demo(seed=seed),
        fleet_optimizer_demo_watch(seed=seed),
        datacenter,
    )
    return {fleet.name: fleet for fleet in fleets}
