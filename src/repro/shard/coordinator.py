"""The shard coordinator: lockstep windows over worker processes.

``run_fleet`` partitions a :class:`~repro.shard.spec.FleetScenario`'s
pods over ``shards`` worker processes (spawn context — each worker is
a fresh interpreter receiving its pod set as plain dicts, the same
multiprocess-determinism discipline as the suite runner) and advances
every pod in lockstep windows:

1. each shard runs its pods to the next window boundary and sends
   their signals up (one message per shard per window — the
   heartbeat);
2. the coordinator feeds the merged, name-sorted signals to the
   :class:`~repro.shard.optimizer.FleetOptimizer` (when the fleet has
   one) and sends each shard its pods' commands;
3. shards apply commands at the boundary and run the next window.

``shards=1`` executes the identical per-pod operations inline (no
processes), which is why fingerprints are bit-identical across shard
counts: the partition only chooses *where* a pod's event loop runs,
never what it computes.

A shard that misses the heartbeat deadline fails the run fast with
:class:`~repro.shard.fabric.ShardTimeoutError` naming the shard and
its server groups; a shard that raises ships its traceback up and the
coordinator re-raises it as :class:`~repro.shard.fabric.
ShardWorkerError`.
"""

from __future__ import annotations

import hashlib
import queue as queue_module
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.shard.fabric import (
    MSG_ERROR,
    MSG_RESULT,
    MSG_SIGNALS,
    ShardTimeoutError,
    ShardWorkerError,
    commands_message,
    shard_partition,
)
from repro.shard.optimizer import FleetOptimizer
from repro.shard.pod import Pod
from repro.shard.spec import FleetScenario


@dataclass
class FleetResult:
    """Merged outcome of one sharded fleet run (plain data inside)."""

    fleet: FleetScenario
    shards: int
    #: Per-pod summaries (:meth:`~repro.shard.pod.Pod.finish` dicts),
    #: keyed by pod name.
    pods: Dict[str, dict]
    #: The optimizer's decision log + budget readings, or None for a
    #: watch-only fleet.
    optimizer: Optional[dict]
    wall_clock_s: float = 0.0
    phases_s: Dict[str, float] = field(default_factory=dict)

    @property
    def merged_sha256(self) -> str:
        """Order-independent fingerprint over every pod's traces.

        A pure function of the per-pod trace hashes, so it is the
        single number the determinism harness compares across shard
        counts and against the unsharded engine.
        """
        digest = hashlib.sha256()
        for name in sorted(self.pods):
            digest.update(name.encode("utf-8"))
            digest.update(self.pods[name]["trace_sha256"].encode("utf-8"))
        return digest.hexdigest()

    @property
    def events_fired(self) -> int:
        return sum(pod["events_fired"] for pod in self.pods.values())

    @property
    def requests_completed(self) -> int:
        return sum(
            pod["requests_completed"] for pod in self.pods.values()
        )

    @property
    def server_count(self) -> int:
        return sum(pod["servers"] for pod in self.pods.values())

    @property
    def vm_count(self) -> int:
        return sum(pod["vms"] for pod in self.pods.values())

    def billing(self) -> dict:
        """Fleet-wide bill, domains keyed ``<pod>/<domain>``."""
        merged = {}
        for name in sorted(self.pods):
            domains = self.pods[name]["billing"].get("domains", {})
            for domain, bill in domains.items():
                merged[f"{name}/{domain}"] = bill
        return {"kind": "billing", "domains": merged}

    def to_dict(self) -> dict:
        return {
            "fleet": self.fleet.name,
            "shards": self.shards,
            "merged_sha256": self.merged_sha256,
            "events_fired": self.events_fired,
            "requests_completed": self.requests_completed,
            "wall_clock_s": self.wall_clock_s,
            "phases_s": dict(self.phases_s),
            "pods": {name: dict(pod) for name, pod in self.pods.items()},
            "optimizer": self.optimizer,
        }

    def render(self) -> str:
        """Human-readable fleet report table."""
        lines = [
            f"{'pod':<16s} {'srv':>4s} {'vms':>5s} {'reqs':>8s} "
            f"{'X req/s':>8s} {'p95 ms':>8s} {'events':>10s}  trace sha256",
        ]
        for name in sorted(self.pods):
            pod = self.pods[name]
            marks = ""
            if pod["exported"]:
                marks += f" -{len(pod['exported'])}vm"
            if pod["imported"]:
                marks += f" +{len(pod['imported'])}vm"
            lines.append(
                f"{name:<16s} {pod['servers']:>4d} {pod['vms']:>5d} "
                f"{pod['requests_completed']:>8d} "
                f"{pod['throughput_rps']:>8.1f} {pod['p95_ms']:>8.1f} "
                f"{pod['events_fired']:>10d}  "
                f"{pod['trace_sha256'][:16]}{marks}"
            )
        lines.append(
            f"{len(self.pods)} pods / {self.server_count} servers / "
            f"{self.vm_count} VMs on {self.shards} shard(s), "
            f"{self.wall_clock_s:.1f}s wall clock; merged sha256 "
            f"{self.merged_sha256[:16]}"
        )
        if self.optimizer is not None:
            decisions = self.optimizer["decisions"]
            lines.append(
                f"optimizer: {len(decisions)} decision(s), "
                f"{self.optimizer['migrations_commanded']} migration(s) "
                "commanded"
            )
            for decision in decisions:
                reason = decision.get("reason", "")
                lines.append(
                    f"  t={decision['time_s']:>6.1f}s {decision['kind']} "
                    f"pod={decision['pod']} vm={decision.get('vm', '-')}"
                    f"  {reason}"
                )
        return "\n".join(lines)


class PodGroup:
    """The per-shard runtime: build, step and command a set of pods.

    Both execution paths — the inline ``shards=1`` coordinator and a
    spawned worker process — drive their pods through this one class,
    so a pod performs the identical operation sequence wherever it
    runs.
    """

    def __init__(self, fleet: FleetScenario, pod_names: List[str]) -> None:
        wanted = set(pod_names)
        self.pods: List[Pod] = [
            Pod(spec, fleet)
            for spec in fleet.pods
            if spec.name in wanted
        ]

    def start(self) -> None:
        for pod in self.pods:
            pod.start()

    def advance_to(self, horizon_s: float) -> Dict[str, dict]:
        """Run every pod to the boundary; return their signals."""
        signals = {}
        for pod in self.pods:
            pod.advance_to(horizon_s)
            signals[pod.name] = pod.signals()
        return signals

    def apply(self, commands: Dict[str, List[dict]]) -> None:
        for pod in self.pods:
            batch = commands.get(pod.name, [])
            if batch:
                pod.apply(batch)

    def finish(self) -> Dict[str, dict]:
        return {pod.name: pod.finish() for pod in self.pods}


def run_fleet(
    fleet: FleetScenario,
    shards: int = 1,
    heartbeat_timeout_s: Optional[float] = None,
) -> FleetResult:
    """Run a fleet scenario on ``shards`` workers and merge the result."""
    started = time.perf_counter()
    partition = shard_partition(fleet.pod_names(), shards)
    optimizer = (
        FleetOptimizer(fleet) if fleet.optimizer is not None else None
    )
    if shards == 1:
        pods = _run_inline(fleet, optimizer)
    else:
        timeout = (
            heartbeat_timeout_s
            if heartbeat_timeout_s is not None
            else fleet.heartbeat_timeout_s
        )
        pods = _run_sharded(fleet, partition, optimizer, timeout)
    wall = time.perf_counter() - started
    return FleetResult(
        fleet=fleet,
        shards=shards,
        pods=pods,
        optimizer=optimizer.report() if optimizer is not None else None,
        wall_clock_s=wall,
        phases_s=_merge_phases(pods),
    )


def _merge_phases(pods: Dict[str, dict]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for pod in pods.values():
        for phase, seconds in pod.get("phases_s", {}).items():
            merged[phase] = merged.get(phase, 0.0) + seconds
    return merged


def _exchange(optimizer, boundary, signals):
    """One boundary's optimizer pass over the merged signals."""
    if optimizer is None:
        return {}
    return optimizer.decide(boundary, signals)


def _run_inline(fleet: FleetScenario, optimizer) -> Dict[str, dict]:
    """The single-process engine (also the shards=1 reference path)."""
    group = PodGroup(fleet, list(fleet.pod_names()))
    group.start()
    boundaries = fleet.boundaries
    for index, boundary in enumerate(boundaries):
        signals = group.advance_to(boundary)
        if index < len(boundaries) - 1:
            commands = _exchange(optimizer, boundary, signals)
            group.apply(commands)
    return group.finish()


def _run_sharded(
    fleet: FleetScenario,
    partition: List[List[str]],
    optimizer,
    timeout_s: float,
) -> Dict[str, dict]:
    import multiprocessing

    from repro.shard.worker import worker_main

    context = multiprocessing.get_context("spawn")
    fleet_data = fleet.to_dict()
    inboxes = []
    outboxes = []
    workers = []
    for shard, pod_names in enumerate(partition):
        inbox = context.Queue()
        outbox = context.Queue()
        process = context.Process(
            target=worker_main,
            args=(fleet_data, pod_names, shard, inbox, outbox),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        inboxes.append(inbox)
        outboxes.append(outbox)
        workers.append(process)
    try:
        for process in workers:
            process.start()
        boundaries = fleet.boundaries
        for index, boundary in enumerate(boundaries):
            signals: Dict[str, dict] = {}
            for shard, pod_names in enumerate(partition):
                message = _receive(
                    outboxes[shard], shard, pod_names, timeout_s,
                    index, workers[shard],
                )
                if message[0] != MSG_SIGNALS:
                    raise ShardWorkerError(
                        shard, pod_names,
                        f"unexpected message {message[0]!r} while "
                        f"waiting for window {index} signals",
                    )
                signals.update(message[3])
            if index < len(boundaries) - 1:
                commands = _exchange(optimizer, boundary, signals)
                for shard, pod_names in enumerate(partition):
                    batch = {
                        name: commands.get(name, [])
                        for name in pod_names
                    }
                    inboxes[shard].put(commands_message(index, batch))
        pods: Dict[str, dict] = {}
        for shard, pod_names in enumerate(partition):
            message = _receive(
                outboxes[shard], shard, pod_names, timeout_s,
                len(boundaries), workers[shard],
            )
            if message[0] != MSG_RESULT:
                raise ShardWorkerError(
                    shard, pod_names,
                    f"unexpected message {message[0]!r} while waiting "
                    "for results",
                )
            pods.update(message[2])
        for process in workers:
            process.join(timeout=timeout_s)
        return pods
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
        for process in workers:
            process.join(timeout=5.0)


def _receive(outbox, shard, pod_names, timeout_s, window_index, process):
    """One heartbeat-guarded receive from a shard worker."""
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ShardTimeoutError(
                shard, pod_names, timeout_s, window_index
            )
        try:
            message = outbox.get(timeout=min(remaining, 1.0))
        except queue_module.Empty:
            if not process.is_alive():
                # Dead without a message: surface it as a worker crash
                # rather than waiting out the full heartbeat window.
                raise ShardWorkerError(
                    shard, pod_names,
                    f"worker process exited with code "
                    f"{process.exitcode} before window {window_index}",
                )
            continue
        if message[0] == MSG_ERROR:
            raise ShardWorkerError(shard, pod_names, message[2])
        return message
