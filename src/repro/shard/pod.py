"""One pod: a self-contained testbed advanced in lockstep windows.

A :class:`Pod` wraps a :class:`~repro.experiments.runner.PreparedRun`
— the exact build/collect code path of ``run_scenario`` — and adds
the three things the shard coordinator needs between windows:

* **passive signals** (:meth:`signals`): window request counts and
  p95, per-server free memory, the throttleable-VM inventory, the
  fleet controller's stranded evacuees and the live capacity bill.
  Collection drains shared sinks with cursors and never schedules an
  event or draws randomness, so a pod that receives no commands stays
  bit-identical to a plain one-shot run;
* **command application** (:meth:`apply`): throttles, commanded
  migrations and cross-pod evacuations, applied at the window
  boundary in list order;
* **cross-pod evacuation** (export/import): a stranded *ballast* VM —
  the only species with no in-flight driver state — leaves this pod's
  placement engine and hypervisor entirely (its image charged to the
  source NIC) and is re-created in another pod under the name
  ``<vm>@<source pod>`` (charged to the destination NIC).

Everything a pod reports across process boundaries is plain data.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.control.actuation import CapacityActuator
from repro.errors import ConfigurationError
from repro.experiments.runner import prepare_run
from repro.monitoring.export import trace_set_sha256
from repro.placement.fleet import FleetController
from repro.placement.migration import MIN_IMAGE_BYTES
from repro.placement.spec import VmRequest
from repro.shard.spec import FleetScenario, PodSpec
from repro.units import GB
from repro.virt.io_backend import DOM0_OWNER
from repro.workloads import BallastWorkload
from repro.workloads.base import BALLAST, TenantSpec


class Pod:
    """A named testbed stepping to coordinator-chosen boundaries."""

    def __init__(self, spec: PodSpec, fleet: FleetScenario) -> None:
        self.name = spec.name
        # The pod seed derives from the fleet seed + pod name (never
        # the shard), and the fleet's horizon overrides the config's.
        config = replace(
            spec.config,
            seed=fleet.pod_seed(spec.name),
            duration_s=fleet.duration_s,
        )
        self.config = config
        self.scenario = config.to_scenario()
        self.prepared = prepare_run(self.scenario)
        self.sim = self.prepared.sim
        self.testbed = self.prepared.testbed
        #: Plain-data log of every command this pod applied.
        self.command_log: List[dict] = []
        #: Evacuation bookkeeping (``{vm, peer}`` dicts).
        self.exported: List[dict] = []
        self.imported: List[dict] = []
        self._p95_cursor = 0
        self._requests_cursor = 0
        self._result = None

    # -- internals ---------------------------------------------------------

    @property
    def engine(self):
        return self.testbed.engine

    @property
    def fleet_controller(self) -> Optional[FleetController]:
        for controller in self.testbed.controllers:
            if isinstance(controller, FleetController):
                return controller
        return None

    def _ballast_tenant(self, vm_name: str) -> Optional[BallastWorkload]:
        tenant_name = (
            vm_name[: -len("-vm")] if vm_name.endswith("-vm") else vm_name
        )
        for tenant in self.testbed.tenants:
            if tenant.name == tenant_name and isinstance(
                tenant, BallastWorkload
            ):
                return tenant
        return None

    # -- lockstep lifecycle ------------------------------------------------

    def start(self) -> None:
        self.prepared.start()

    def advance_to(self, horizon_s: float) -> None:
        self.prepared.run_until(horizon_s)

    def finish(self) -> dict:
        """Collect the run and return the plain-data pod summary."""
        result = self.prepared.collect()
        self._result = result
        fleet_controller = self.fleet_controller
        return {
            "pod": self.name,
            "scenario": self.scenario.name,
            "seed": self.scenario.seed,
            "servers": self.config.servers,
            "vms": 2 + len(self.config.tenants)
            + len(self.imported) - len(self.exported),
            "requests_completed": result.requests_completed,
            "throughput_rps": result.throughput_rps,
            "mean_ms": result.mean_response_time_s * 1000.0,
            "p95_ms": result.p95_response_time_s * 1000.0,
            "events_fired": result.events_fired,
            "trace_sha256": trace_set_sha256(result.traces),
            "billing": self.testbed.billing_report(),
            "fleet": (
                fleet_controller.report()
                if fleet_controller is not None
                else None
            ),
            "tenant_reports": result.tenant_reports,
            "commands": list(self.command_log),
            "exported": list(self.exported),
            "imported": list(self.imported),
            "phases_s": result.phases_s,
        }

    # -- window signals (passive reads only) -------------------------------

    def signals(self) -> dict:
        """This window's coordinator-facing state (plain data)."""
        stats = self.testbed.web.stats
        times = stats.response_times_s
        window_times = times[self._p95_cursor:]
        self._p95_cursor = len(times)
        p95_ms = (
            float(np.percentile(np.asarray(window_times), 95.0)) * 1000.0
            if window_times
            else 0.0
        )
        requests_total = stats.responses_received
        requests_delta = requests_total - self._requests_cursor
        self._requests_cursor = requests_total

        signal = {
            "pod": self.name,
            "time_s": self.sim.now,
            "requests_total": requests_total,
            "requests_delta": requests_delta,
            "p95_ms": p95_ms,
            "billing": self.testbed.billing_report(),
            "migration_busy": False,
            "failed_servers": [],
            "stranded": [],
            "free_memory": {},
            "vms": [],
        }
        engine = self.engine
        if engine is None:
            return signal
        fleet_controller = self.fleet_controller
        failed = (
            list(fleet_controller.failed_servers)
            if fleet_controller is not None
            else []
        )
        signal["failed_servers"] = failed
        signal["free_memory"] = {
            load.name: load.free_memory_bytes
            for load in engine.server_loads()
            if load.name not in failed
        }
        if fleet_controller is not None:
            signal["migration_busy"] = (
                fleet_controller._active is not None
                or bool(fleet_controller._evac_queue)
            )
            signal["stranded"] = [
                self._export_descriptor(vm)
                for vm in fleet_controller.stranded_guests()
            ]
        vms = []
        for vm_name, server in sorted(engine.assignment().items()):
            request = engine.request_for(vm_name)
            if request.priority > 0:
                continue  # the web pair is never a throttle/move target
            domain = engine.hypervisors[server].domain(vm_name)
            vms.append({
                "name": vm_name,
                "server": server,
                "movable": request.movable,
                "vcpus": domain.online_vcpus,
                "cap_cores": domain.cap_cores,
                "mem_used": engine.hypervisors[server].vm_memory_used(
                    domain
                ),
            })
        signal["vms"] = vms
        return signal

    def _export_descriptor(self, vm_name: str) -> dict:
        """The shippable description of one stranded guest."""
        hypervisor = self.engine.hypervisor_for(vm_name)
        domain = hypervisor.domain(vm_name)
        request = self.engine.request_for(vm_name)
        return {
            "name": vm_name,
            # Only a ballast VM may leave the pod: its whole state is
            # its reservation (no driver events in flight).
            "shippable": self._ballast_tenant(vm_name) is not None,
            "vcpus": len(domain.vcpus),
            "memory_bytes": domain.memory_bytes,
            "weight": domain.weight,
            "cap_cores": domain.cap_cores,
            "priority": request.priority,
            "mem_used": hypervisor.vm_memory_used(domain),
        }

    # -- command application ------------------------------------------------

    def apply(self, commands: List[dict]) -> None:
        """Apply a window's commands in list order at the boundary."""
        for command in commands:
            op = command["op"]
            if op == "throttle":
                self._apply_throttle(command)
            elif op == "migrate":
                self._apply_migrate(command)
            elif op == "evacuate":
                self._apply_evacuate(command)
            elif op == "import":
                self._apply_import(command)
            else:
                raise ConfigurationError(
                    f"pod {self.name!r}: unknown command op {op!r}"
                )

    def _log(self, command: dict, outcome: str) -> None:
        entry = dict(command)
        entry["time_s"] = self.sim.now
        entry["outcome"] = outcome
        self.command_log.append(entry)

    def _apply_throttle(self, command: dict) -> None:
        vm_name = command["vm"]
        hypervisor = self.engine.hypervisor_for(vm_name)
        domain = hypervisor.domain(vm_name)
        CapacityActuator(hypervisor, domain).throttle(
            command["cap_cores"]
        )
        self._log(command, "applied")

    def _apply_migrate(self, command: dict) -> None:
        controller = self.fleet_controller
        if controller is None:
            self._log(command, "no-fleet-controller")
            return
        started = controller.request_migration(command["vm"])
        self._log(command, "started" if started else "declined")

    def _apply_evacuate(self, command: dict) -> None:
        """Export a stranded ballast VM out of this pod entirely."""
        vm_name = command["vm"]
        tenant = self._ballast_tenant(vm_name)
        if tenant is None:
            raise ConfigurationError(
                f"pod {self.name!r}: only ballast VMs are cross-pod "
                f"evacuable, not {vm_name!r}"
            )
        controller = self.fleet_controller
        if controller is not None:
            controller.cancel_evacuation(vm_name)
        hypervisor = self.engine.hypervisor_for(vm_name)
        domain = hypervisor.domain(vm_name)
        # Ship the image off this pod's NIC (the failed server's wire
        # still runs — crash faults starve the scheduler, not dom0).
        image_bytes = max(
            hypervisor.vm_memory_used(domain), MIN_IMAGE_BYTES
        )
        hypervisor.server.nic.transmit(
            self.sim.now, DOM0_OWNER, image_bytes
        )
        hypervisor.server.cpu.charge(
            DOM0_OWNER,
            image_bytes * hypervisor.overhead.net_cycles_per_byte,
        )
        hypervisor.detach_domain(vm_name)
        self.engine.remove_vm(vm_name)
        tenant.mark_evacuated(command["dest_pod"])
        self.exported.append(
            {"vm": vm_name, "peer": command["dest_pod"]}
        )
        self._log(command, "exported")

    def _apply_import(self, command: dict) -> None:
        """Re-create an evacuated ballast VM shipped from a peer pod."""
        image = command["image"]
        src_pod = command["src_pod"]
        new_name = f"{image['name']}@{src_pod}"
        request = VmRequest(
            name=new_name,
            vcpus=image["vcpus"],
            memory_bytes=image["memory_bytes"],
            priority=image["priority"],
            movable=True,
        )
        self.engine.place([request])
        hypervisor = self.engine.hypervisor_for(new_name)
        domain = hypervisor.create_domain(
            new_name,
            vcpu_count=image["vcpus"],
            memory_bytes=image["memory_bytes"],
            weight=image["weight"],
            cap_cores=image["cap_cores"],
        )
        hypervisor.set_vm_memory(domain, image["mem_used"])
        image_bytes = max(image["mem_used"], MIN_IMAGE_BYTES)
        hypervisor.server.nic.receive(
            self.sim.now, DOM0_OWNER, image_bytes
        )
        hypervisor.server.cpu.charge(
            DOM0_OWNER,
            image_bytes * hypervisor.overhead.net_cycles_per_byte,
        )
        # Record the adoptee as a ballast tenant so per-tenant reports
        # cover it (no probes, no events — reservation only).
        spec = TenantSpec(
            name=_tenant_name_for(image["name"], src_pod),
            workload=BALLAST,
            vcpus=image["vcpus"],
            memory_gb=image["memory_bytes"] / GB,
            weight=image["weight"],
            cap_cores=image["cap_cores"],
        )
        self.testbed.tenants.append(
            BallastWorkload(
                self.sim, None, spec, [], self.scenario.duration_s
            )
        )
        self.imported.append({"vm": new_name, "peer": src_pod})
        self._log(command, "imported")


def _tenant_name_for(vm_name: str, src_pod: str) -> str:
    base = vm_name[: -len("-vm")] if vm_name.endswith("-vm") else vm_name
    return f"{base}@{src_pod}"
