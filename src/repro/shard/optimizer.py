"""The coordinator-side fleet optimizer: read signals, issue commands.

Three levers, evaluated every window boundary over the *sorted* pod
signals (so decisions are independent of shard count and message
arrival order):

1. **Stranded guests** — a pod whose fleet controller holds evacuees
   no local survivor can host gets a cross-pod evacuation: the
   optimizer routes each shippable (ballast) guest to the peer pod
   with the most free memory on a single server, emitting an
   ``evacuate`` command to the source and the matching ``import`` to
   the destination in the same window.
2. **Budget** — a :class:`~repro.planning.budget.BudgetPolicy` reads
   the fleet-wide bill and request counter each window; after the
   hysteresis streak it throttles the most expensive uncapped batch
   VM on the pod with the most SLO slack down to the budget's cap
   floor (scale-down beats paying for idle reservation).
3. **Hot pods** — a pod whose window p95 exceeds the SLO gets either
   a commanded live migration of its cheapest movable antagonist
   (when admission control predicts the interference relief is worth
   the pre-copy traffic + downtime) or, on denial, a cap-down
   throttle of that same antagonist — the migrate-vs-resize
   composition.

The optimizer holds only plain-data state (decision log, counters,
budget cursors); :meth:`decide` is deterministic given the signal
history.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.placement.admission import admit_migration
from repro.placement.spec import FleetSpec
from repro.planning.budget import BudgetPolicy
from repro.shard.spec import FleetScenario, OptimizerSpec


class FleetOptimizer:
    """Pure-function-of-signals fleet controller of controllers."""

    def __init__(self, fleet: FleetScenario) -> None:
        if fleet.optimizer is None:
            raise ValueError("fleet has no optimizer spec")
        self.fleet = fleet
        self.spec: OptimizerSpec = fleet.optimizer
        self.budget: Optional[BudgetPolicy] = (
            BudgetPolicy(self.spec.budget)
            if self.spec.budget is not None
            else None
        )
        #: Plain-data decision log, in decision order.
        self.decisions: List[dict] = []
        self._migrations_commanded = 0
        self._fleet_specs: Dict[str, Optional[FleetSpec]] = {
            pod.name: pod.config.fleet for pod in fleet.pods
        }

    # -- the decision epoch --------------------------------------------------

    def decide(
        self, now: float, signals: Dict[str, dict]
    ) -> Dict[str, List[dict]]:
        """Map one window's pod signals to per-pod command lists."""
        commands: Dict[str, List[dict]] = {
            name: [] for name in sorted(signals)
        }
        self._decide_evacuations(now, signals, commands)
        self._decide_budget(now, signals, commands)
        self._decide_hot_pods(now, signals, commands)
        return commands

    def _record(self, now: float, kind: str, pod: str, **extra) -> None:
        entry = {"time_s": now, "kind": kind, "pod": pod}
        entry.update(extra)
        self.decisions.append(entry)

    # -- lever 1: cross-pod evacuation of stranded guests --------------------

    def _decide_evacuations(
        self,
        now: float,
        signals: Dict[str, dict],
        commands: Dict[str, List[dict]],
    ) -> None:
        # Free memory shrinks as this window routes imports; track it.
        free: Dict[str, Dict[str, float]] = {
            name: dict(signals[name].get("free_memory", {}))
            for name in sorted(signals)
        }
        for pod_name in sorted(signals):
            for image in signals[pod_name].get("stranded", []):
                if not image.get("shippable", False):
                    self._record(
                        now, "evacuate-skipped", pod_name,
                        vm=image["name"],
                        reason="not a ballast VM (driver state in flight)",
                    )
                    continue
                dest = self._route_import(
                    pod_name, image["memory_bytes"], free
                )
                if dest is None:
                    self._record(
                        now, "evacuate-stranded", pod_name,
                        vm=image["name"],
                        reason="no peer pod has a server with room",
                    )
                    continue
                dest_pod, dest_server = dest
                free[dest_pod][dest_server] -= image["memory_bytes"]
                commands[pod_name].append({
                    "op": "evacuate",
                    "vm": image["name"],
                    "dest_pod": dest_pod,
                })
                commands[dest_pod].append({
                    "op": "import",
                    "image": image,
                    "src_pod": pod_name,
                })
                self._record(
                    now, "evacuate", pod_name,
                    vm=image["name"], dest_pod=dest_pod,
                    reason=(
                        f"stranded on {pod_name}; {dest_pod}/"
                        f"{dest_server} has the most free memory"
                    ),
                )

    @staticmethod
    def _route_import(src_pod, memory_bytes, free):
        """Peer pod whose fullest-free server fits the image (max free,
        pod name as the deterministic tiebreak)."""
        best = None
        for pod_name in sorted(free):
            if pod_name == src_pod:
                continue
            for server in sorted(free[pod_name]):
                room = free[pod_name][server]
                if room < memory_bytes:
                    continue
                if best is None or room > best[2]:
                    best = (pod_name, server, room)
        if best is None:
            return None
        return best[0], best[1]

    # -- lever 2: bill-reading scale-down ------------------------------------

    def _decide_budget(
        self,
        now: float,
        signals: Dict[str, dict],
        commands: Dict[str, List[dict]],
    ) -> None:
        if self.budget is None:
            return
        merged: Dict[str, dict] = {}
        requests_total = 0
        for pod_name in sorted(signals):
            signal = signals[pod_name]
            requests_total += signal["requests_total"]
            domains = signal["billing"].get("domains", {})
            for domain, bill in domains.items():
                merged[f"{pod_name}/{domain}"] = bill
        reading = self.budget.observe(merged, requests_total, time_s=now)
        if not self.budget.should_act:
            return
        target = self._costliest_throttleable(signals)
        if target is None:
            self._record(
                now, "budget-exhausted", "-",
                reason="over budget but nothing left to throttle",
                usd_per_kilorequest=reading.usd_per_kilorequest,
            )
            return
        pod_name, vm = target
        cap = self.budget.spec.min_cap_cores
        commands[pod_name].append({
            "op": "throttle", "vm": vm["name"], "cap_cores": cap,
        })
        self._record(
            now, "budget-throttle", pod_name,
            vm=vm["name"], cap_cores=cap,
            usd_per_kilorequest=reading.usd_per_kilorequest,
            reason=(
                f"fleet at ${reading.usd_per_kilorequest:.4f}/kRq vs "
                f"budget ${self.budget.spec.usd_per_kilorequest:.4f}; "
                f"capping the costliest batch reservation"
            ),
        )

    def _costliest_throttleable(self, signals):
        """(pod, vm) paying the most reserved cores, on the pod with
        the most SLO slack at equal cost — or None when every batch VM
        already sits at/below the cap floor."""
        floor = self.budget.spec.min_cap_cores
        best = None
        for pod_name in sorted(signals):
            signal = signals[pod_name]
            slack = self.spec.slo_p95_ms - signal["p95_ms"]
            for vm in signal.get("vms", []):
                reserved = vm["vcpus"]
                if 0 < vm["cap_cores"] < reserved:
                    reserved = vm["cap_cores"]
                if reserved <= floor:
                    continue
                key = (reserved, slack)
                names = (pod_name, vm["name"])
                if (
                    best is None
                    or key > best[0]
                    or (key == best[0] and names < best[1])
                ):
                    best = (key, names, pod_name, vm)
        if best is None:
            return None
        return best[2], best[3]

    # -- lever 3: migrate-vs-resize on hot pods ------------------------------

    def _decide_hot_pods(
        self,
        now: float,
        signals: Dict[str, dict],
        commands: Dict[str, List[dict]],
    ) -> None:
        for pod_name in sorted(signals):
            signal = signals[pod_name]
            if signal["p95_ms"] <= self.spec.slo_p95_ms:
                continue
            if signal.get("migration_busy") or signal.get(
                "failed_servers"
            ):
                continue  # the pod's own controller has the wire
            victim = self._cheapest_movable(signal)
            if victim is None:
                continue
            fleet_spec = self._fleet_specs.get(pod_name)
            can_migrate = (
                fleet_spec is not None
                and self._migrations_commanded < self.spec.max_migrations
            )
            if can_migrate:
                decision = admit_migration(
                    victim["mem_used"],
                    fleet_spec,
                    relief_s=self.spec.relief_horizon_s,
                    relief_ratio=self.spec.admission_relief_ratio,
                )
                if decision.admitted:
                    self._migrations_commanded += 1
                    commands[pod_name].append({
                        "op": "migrate", "vm": victim["name"],
                    })
                    self._record(
                        now, "migrate", pod_name,
                        vm=victim["name"],
                        admission=decision.to_dict(),
                        reason=decision.reason,
                    )
                    continue
                reason = f"admission denied ({decision.reason})"
            else:
                reason = (
                    "no fleet controller in pod"
                    if fleet_spec is None
                    else "migration budget exhausted"
                )
            # Resize path: cap the antagonist down instead of moving it.
            if victim["cap_cores"] == self.spec.throttle_cap_cores:
                continue  # already throttled; don't re-log every window
            commands[pod_name].append({
                "op": "throttle",
                "vm": victim["name"],
                "cap_cores": self.spec.throttle_cap_cores,
            })
            self._record(
                now, "slo-throttle", pod_name,
                vm=victim["name"],
                cap_cores=self.spec.throttle_cap_cores,
                reason=f"p95 {signal['p95_ms']:.1f} ms over SLO; {reason}",
            )

    @staticmethod
    def _cheapest_movable(signal):
        """The movable batch VM with the smallest image (name breaks
        ties) — the cheapest candidate to migrate, and the one the
        pod's own controller would pick first."""
        candidates = [
            vm for vm in signal.get("vms", []) if vm["movable"]
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda vm: (vm["mem_used"], vm["name"])
        )

    # -- exports --------------------------------------------------------------

    def report(self) -> dict:
        """Plain-data summary of everything the optimizer decided."""
        return {
            "kind": "fleet-optimizer",
            "decisions": list(self.decisions),
            "migrations_commanded": self._migrations_commanded,
            "budget": (
                self.budget.report() if self.budget is not None else None
            ),
        }
