"""Sharded datacenter-scale fleet simulation.

The fleet-of-fleets layer: a :class:`~repro.shard.spec.FleetScenario`
partitions many self-contained multi-server *pods* over worker
processes, advances them in lockstep time windows, and exchanges
cross-pod traffic (stranded-guest evacuations, fleet-optimizer
commands) at the deterministic window boundaries.  Per-pod seeds
derive from the fleet seed and the pod name alone, so the merged
trace fingerprint is bit-identical across shard counts — and a
single-pod fleet is bit-identical to the plain single-process
``run_scenario`` path it wraps.
"""

from repro.shard.coordinator import (
    FleetResult,
    PodGroup,
    run_fleet,
)
from repro.shard.fabric import (
    ShardError,
    ShardTimeoutError,
    ShardWorkerError,
    shard_partition,
)
from repro.shard.optimizer import FleetOptimizer
from repro.shard.pod import Pod
from repro.shard.scenarios import (
    datacenter_fleet,
    fleet_catalog,
    fleet_optimizer_demo,
    fleet_optimizer_demo_watch,
    two_pod_fleet,
    two_pod_fleet_watch,
)
from repro.shard.spec import FleetScenario, OptimizerSpec, PodSpec

__all__ = [
    "FleetOptimizer",
    "FleetResult",
    "FleetScenario",
    "OptimizerSpec",
    "Pod",
    "PodGroup",
    "PodSpec",
    "ShardError",
    "ShardTimeoutError",
    "ShardWorkerError",
    "datacenter_fleet",
    "fleet_catalog",
    "fleet_optimizer_demo",
    "fleet_optimizer_demo_watch",
    "run_fleet",
    "shard_partition",
    "two_pod_fleet",
    "two_pod_fleet_watch",
]
