"""Declarative description of a sharded fleet-of-fleets run.

A *pod* is one self-contained multi-server testbed — its own
simulator, random streams, placement engine and workloads — described
by an ordinary :class:`~repro.config.ExperimentConfig`.  A
:class:`FleetScenario` names a set of pods, a lockstep window length
and (optionally) a fleet optimizer; the shard coordinator
(:mod:`repro.shard.coordinator`) partitions the pods over worker
processes and advances them window by window.

Determinism contract: every pod's seed derives from the fleet seed and
the pod's *name* through SHA-256
(:func:`~repro.experiments.suite.derive_run_seed`), never from which
shard it landed on — the same discipline the suite runner uses — so a
fleet's per-pod traces are bit-identical across shard counts.
Everything here round-trips through plain dicts, because worker
processes receive their pod set as JSON-able payloads.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional, Tuple

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.suite import derive_run_seed
from repro.planning.budget import BudgetSpec

#: Lockstep window length must be a multiple of the 2 s trace sampling
#: period so boundaries never fall between recorder ticks.
SAMPLE_PERIOD_S = 2.0


@dataclass(frozen=True)
class OptimizerSpec:
    """Knobs of the coordinator-side fleet optimizer.

    The optimizer reads every pod's window signals and issues commands
    at window boundaries: admission-gated live migrations on hot pods
    (with a cap-down throttle as the denied path), budget throttles
    when the fleet's $-per-kilorequest overruns, and cross-pod
    evacuations for stranded guests.
    """

    #: Web p95 ceiling (ms) above which a pod counts as hot.
    slo_p95_ms: float = 40.0
    #: Cap (cores) an SLO throttle applies to the chosen antagonist
    #: when a migration is denied or unavailable.
    throttle_cap_cores: float = 1.0
    #: Interference relief (seconds of SLO-violating time avoided) a
    #: migration is predicted to buy — the admission control benefit
    #: side.  Default: one lockstep window.
    relief_horizon_s: float = 10.0
    #: Required relief-to-cost ratio for admitting a migration.
    admission_relief_ratio: float = 2.0
    #: Total voluntary migrations the optimizer may command per run.
    max_migrations: int = 4
    #: Economic envelope; None disables the budget lever.
    budget: Optional[BudgetSpec] = None

    def __post_init__(self) -> None:
        if self.budget is not None and not isinstance(
            self.budget, BudgetSpec
        ):
            object.__setattr__(
                self, "budget", BudgetSpec.from_dict(self.budget)
            )
        if self.slo_p95_ms <= 0:
            raise ConfigurationError("slo_p95_ms must be positive")
        if self.throttle_cap_cores <= 0:
            raise ConfigurationError("throttle_cap_cores must be positive")
        if self.relief_horizon_s <= 0:
            raise ConfigurationError("relief_horizon_s must be positive")
        if self.admission_relief_ratio <= 0:
            raise ConfigurationError(
                "admission_relief_ratio must be positive"
            )
        if self.max_migrations < 0:
            raise ConfigurationError("max_migrations must be >= 0")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizerSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"optimizer spec must be an object, "
                f"got {type(data).__name__}"
            )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown optimizer spec keys: {sorted(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class PodSpec:
    """One pod: a named, self-contained multi-server testbed."""

    name: str
    config: ExperimentConfig

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("pod name must be non-empty")
        if "/" in self.name or "@" in self.name:
            # "/" structures seed ids; "@" tags evacuated-VM renames.
            raise ConfigurationError(
                f"pod name {self.name!r} must not contain '/' or '@'"
            )
        if not isinstance(self.config, ExperimentConfig):
            object.__setattr__(
                self, "config", ExperimentConfig.from_dict(self.config)
            )

    def to_dict(self) -> dict:
        return {"name": self.name, "config": self.config.to_dict()}


@dataclass(frozen=True)
class FleetScenario:
    """A named set of pods advancing in lockstep windows."""

    name: str
    pods: Tuple[PodSpec, ...]
    duration_s: float = 60.0
    window_s: float = 10.0
    seed: int = 42
    optimizer: Optional[OptimizerSpec] = None
    #: Coordinator-side deadline for one shard to deliver its window
    #: message before the run fails fast with a ShardTimeoutError.
    heartbeat_timeout_s: float = 300.0
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fleet name must be non-empty")
        coerced = tuple(
            pod if isinstance(pod, PodSpec) else PodSpec(**pod)
            for pod in self.pods
        )
        object.__setattr__(self, "pods", coerced)
        if not self.pods:
            raise ConfigurationError("a fleet needs at least one pod")
        names = [pod.name for pod in self.pods]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate pod names: {names}")
        if self.optimizer is not None and not isinstance(
            self.optimizer, OptimizerSpec
        ):
            object.__setattr__(
                self, "optimizer", OptimizerSpec.from_dict(self.optimizer)
            )
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        windows = self.duration_s / self.window_s
        if abs(windows - round(windows)) > 1e-9:
            raise ConfigurationError(
                f"duration_s ({self.duration_s}) must be a whole number "
                f"of windows ({self.window_s} s each)"
            )
        period = self.window_s / SAMPLE_PERIOD_S
        if abs(period - round(period)) > 1e-9:
            raise ConfigurationError(
                f"window_s ({self.window_s}) must be a multiple of the "
                f"{SAMPLE_PERIOD_S} s sampling period"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")

    # -- derived views -----------------------------------------------------

    @property
    def boundaries(self) -> Tuple[float, ...]:
        """The window-end times ``(window_s, 2*window_s, ..., duration)``."""
        count = round(self.duration_s / self.window_s)
        return tuple(
            round(k * self.window_s, 9) for k in range(1, count + 1)
        )

    def pod_seed(self, pod_name: str) -> int:
        """The pod's derived seed (shard-placement independent)."""
        return derive_run_seed(self.seed, f"{self.name}/{pod_name}")

    def pod_names(self) -> Tuple[str, ...]:
        return tuple(pod.name for pod in self.pods)

    def server_count(self) -> int:
        return sum(pod.config.servers for pod in self.pods)

    def vm_count(self) -> int:
        """Placed VMs at build time: the web pair + tenants, per pod."""
        return sum(2 + len(pod.config.tenants) for pod in self.pods)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["pods"] = [pod.to_dict() for pod in self.pods]
        if self.optimizer is not None:
            data["optimizer"] = self.optimizer.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetScenario":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fleet scenario must be an object, "
                f"got {type(data).__name__}"
            )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(
                f"unknown fleet scenario keys: {sorted(unknown)}"
            )
        return cls(**data)
