"""Shard worker entry point (spawn-safe, plain data in and out).

A worker process owns one shard's pods for the whole run: it rebuilds
the :class:`~repro.shard.spec.FleetScenario` from its dict form,
constructs its pods (each pod's seed depends only on the fleet seed
and the pod name, so *which* worker builds it cannot matter), then
alternates run-window / send-signals / receive-commands with the
coordinator until the horizon, finishing with one ``result`` message.

Failures never hang the coordinator: any exception is caught and
shipped up as an ``error`` message with the full traceback.  The
``REPRO_SHARD_TEST_HANG`` env hook (value = a shard index) makes that
worker sleep forever instead of sending its first window message —
the deterministic way the tests exercise the heartbeat timeout.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import List

from repro.shard.fabric import (
    HANG_ENV,
    MSG_COMMANDS,
    error_message,
    result_message,
    signals_message,
)
from repro.shard.spec import FleetScenario


def worker_main(
    fleet_data: dict,
    pod_names: List[str],
    shard: int,
    inbox,
    outbox,
) -> None:
    """Run one shard's pods in lockstep with the coordinator."""
    try:
        if os.environ.get(HANG_ENV) == str(shard):
            while True:  # heartbeat-timeout test hook: never report in
                time.sleep(3600.0)
        from repro.shard.coordinator import PodGroup

        fleet = FleetScenario.from_dict(fleet_data)
        group = PodGroup(fleet, pod_names)
        group.start()
        boundaries = fleet.boundaries
        for index, boundary in enumerate(boundaries):
            signals = group.advance_to(boundary)
            outbox.put(signals_message(index, shard, signals))
            if index < len(boundaries) - 1:
                message = inbox.get()
                if message[0] != MSG_COMMANDS:
                    raise RuntimeError(
                        f"shard {shard}: unexpected coordinator message "
                        f"{message[0]!r}"
                    )
                group.apply(message[2])
        outbox.put(result_message(shard, group.finish()))
    except BaseException:
        outbox.put(error_message(shard, traceback.format_exc()))
