"""Unit tests for execution contexts (virtualized and bare-metal)."""

import pytest

from repro.apps.tier import BareMetalContext, OsActivityModel, VirtualizedContext
from repro.errors import ConfigurationError
from repro.hardware.server import PhysicalServer
from repro.sim.engine import Simulator
from repro.units import MB
from repro.virt.hypervisor import Hypervisor


@pytest.fixture
def virt_parts():
    sim = Simulator()
    server = PhysicalServer("cloud-1")
    hypervisor = Hypervisor(sim, server)
    domain = hypervisor.create_domain("web-vm")
    context = VirtualizedContext(hypervisor, domain)
    return sim, server, hypervisor, domain, context


@pytest.fixture
def bare_parts():
    sim = Simulator()
    server = PhysicalServer("web-pm")
    os_model = OsActivityModel(
        disk_accounting_factor=2.0, net_accounting_factor=1.5
    )
    context = BareMetalContext(sim, server, "pm:web", os_model)
    return sim, server, context


class TestVirtualizedContext:
    def test_owner_matches_domain(self, virt_parts):
        _, _, _, domain, context = virt_parts
        assert context.owner == domain.owner == "vm:web-vm"

    def test_cpu_charge_and_counters(self, virt_parts):
        _, _, _, _, context = virt_parts
        context.charge_cpu(1e6)
        assert context.cpu_cycles_total() == 1e6

    def test_disk_counters_are_guest_visible(self, virt_parts):
        _, server, hypervisor, _, context = virt_parts
        context.disk_read(1000.0)
        assert context.disk_bytes_total() == 1000.0
        # The physical device saw amplified traffic under dom0.
        physical = server.disk.bytes_read("dom0")
        assert physical == pytest.approx(
            1000.0 * hypervisor.overhead.disk_amplification
        )

    def test_net_counters_are_guest_visible(self, virt_parts):
        _, _, _, _, context = virt_parts
        context.net_receive(100.0)
        context.net_transmit(200.0)
        assert context.net_bytes_total() == 300.0

    def test_memory_round_trip(self, virt_parts):
        _, _, _, _, context = virt_parts
        context.set_memory(500 * MB)
        assert context.memory_used() == 500 * MB

    def test_worker_gauge_updates_domain(self, virt_parts):
        _, _, _, domain, context = virt_parts
        context.worker_started()
        assert domain.active_workers == 1
        context.worker_finished()
        assert domain.active_workers == 0


class TestBareMetalContext:
    def test_cpu_charge_to_owner(self, bare_parts):
        _, server, context = bare_parts
        context.charge_cpu(5e6)
        assert server.cpu.ledger.total("pm:web") == 5e6

    def test_disk_accounting_factor_applied(self, bare_parts):
        _, server, context = bare_parts
        context.disk_write(1000.0)
        assert server.disk.bytes_written("pm:web") == pytest.approx(2000.0)

    def test_net_accounting_factor_applied(self, bare_parts):
        _, server, context = bare_parts
        context.net_transmit(1000.0)
        assert server.nic.bytes_transmitted("pm:web") == pytest.approx(1500.0)

    def test_account_request_charges_owner(self, bare_parts):
        _, server, context = bare_parts
        before = server.cpu.ledger.total("pm:web")
        context.account_request()
        delta = server.cpu.ledger.total("pm:web") - before
        assert delta == context.os_model.syscall_cycles_per_request

    def test_account_commit_charges_owner(self, bare_parts):
        _, server, context = bare_parts
        before = server.cpu.ledger.total("pm:web")
        context.account_commit()
        delta = server.cpu.ledger.total("pm:web") - before
        assert delta == context.os_model.commit_cycles

    def test_housekeeping_burns_base_cycles(self, bare_parts):
        sim, server, context = bare_parts
        sim.run_until(5.0)
        cycles = server.cpu.ledger.total("pm:web")
        assert cycles >= 5 * context.os_model.base_cycles_per_s

    def test_housekeeping_writes_logs(self, bare_parts):
        sim, server, context = bare_parts
        sim.run_until(5.0)
        assert server.disk.bytes_written("pm:web") > 0

    def test_shutdown_stops_housekeeping(self, bare_parts):
        sim, server, context = bare_parts
        sim.run_until(2.0)
        context.shutdown()
        cycles = server.cpu.ledger.total("pm:web")
        sim.run_until(10.0)
        assert server.cpu.ledger.total("pm:web") == cycles

    def test_cpu_time_full_core(self, bare_parts):
        _, server, context = bare_parts
        cycles = server.spec.frequency_hz
        assert context.cpu_time(cycles) == pytest.approx(1.0)


class TestOsActivityModel:
    def test_accounting_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            OsActivityModel(disk_accounting_factor=0.5)

    def test_negative_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            OsActivityModel(base_cycles_per_s=-1.0)
