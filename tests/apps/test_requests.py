"""Unit tests for request and demand records."""

from repro.apps.requests import Request, ResourceDemand


class TestResourceDemand:
    def test_scaled_multiplies_continuous_fields(self):
        demand = ResourceDemand(
            web_cycles=10.0,
            db_cycles=4.0,
            db_queries=3,
            response_bytes=100.0,
            commit=True,
        )
        scaled = demand.scaled(2.0)
        assert scaled.web_cycles == 20.0
        assert scaled.db_cycles == 8.0
        assert scaled.response_bytes == 200.0
        # Discrete/boolean fields are preserved, not scaled.
        assert scaled.db_queries == 3
        assert scaled.commit is True

    def test_defaults_are_zero(self):
        demand = ResourceDemand()
        assert demand.web_cycles == 0.0
        assert demand.commit is False


class TestRequest:
    def test_ids_are_unique_and_increasing(self):
        a = Request(1, "Home", ResourceDemand(), created_at=0.0)
        b = Request(1, "Home", ResourceDemand(), created_at=0.0)
        assert b.request_id > a.request_id

    def test_response_time_none_while_in_flight(self):
        request = Request(1, "Home", ResourceDemand(), created_at=5.0)
        assert request.response_time is None

    def test_response_time_after_completion(self):
        request = Request(1, "Home", ResourceDemand(), created_at=5.0)
        request.completed_at = 7.5
        assert request.response_time == 2.5
