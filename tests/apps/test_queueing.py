"""Unit and property tests for the queueing station."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.queueing import QueueingStation
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


def run_jobs(sim, station, arrivals, service_time):
    """Submit jobs at given times; returns completion times by index."""
    completions = {}

    def submit(index):
        station.submit(
            index,
            lambda job: service_time,
            lambda job: completions.__setitem__(job, sim.now),
        )

    for i, t in enumerate(arrivals):
        sim.schedule_at(t, submit, i)
    sim.run_until(max(arrivals) + 1000.0)
    return completions


class TestSingleWorker:
    def test_sequential_service(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        completions = run_jobs(sim, station, [0.0, 0.0, 0.0], 1.0)
        assert completions == {0: 1.0, 1: 2.0, 2: 3.0}

    def test_idle_gaps_not_accumulated(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        completions = run_jobs(sim, station, [0.0, 10.0], 1.0)
        assert completions[1] == pytest.approx(11.0)


class TestMultiWorker:
    def test_parallel_service(self, sim):
        station = QueueingStation(sim, "s", workers=3)
        completions = run_jobs(sim, station, [0.0, 0.0, 0.0], 1.0)
        assert all(c == pytest.approx(1.0) for c in completions.values())

    def test_queueing_beyond_worker_count(self, sim):
        station = QueueingStation(sim, "s", workers=2)
        completions = run_jobs(sim, station, [0.0] * 4, 1.0)
        assert sorted(completions.values()) == [1.0, 1.0, 2.0, 2.0]


class TestObservability:
    def test_backlog_and_occupancy(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        station.submit("a", lambda j: 5.0, lambda j: None)
        station.submit("b", lambda j: 5.0, lambda j: None)
        station.submit("c", lambda j: 5.0, lambda j: None)
        assert station.in_service == 1
        assert station.backlog == 2
        assert station.occupancy == 3

    def test_window_peak_resets_after_read(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        for name in "abc":
            station.submit(name, lambda j: 10.0, lambda j: None)
        assert station.take_window_peak() == 3
        # After reading, the peak restarts from current occupancy.
        assert station.take_window_peak() == 3  # still 3 jobs in system

    def test_window_peak_sees_transient_burst(self, sim):
        station = QueueingStation(sim, "s", workers=4)
        for i in range(8):
            station.submit(i, lambda j: 0.001, lambda j: None)
        sim.run_until(1.0)  # burst fully drained
        assert station.occupancy == 0
        assert station.take_window_peak() == 8

    def test_stats_wait_and_service(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        run_jobs(sim, station, [0.0, 0.0], 2.0)
        assert station.stats.completions == 2
        assert station.stats.mean_service_s == pytest.approx(2.0)
        # Second job waited 2 s.
        assert station.stats.total_wait_s == pytest.approx(2.0)

    def test_on_start_on_finish_hooks(self, sim):
        events = []
        station = QueueingStation(
            sim,
            "s",
            workers=1,
            on_start=lambda: events.append("start"),
            on_finish=lambda: events.append("finish"),
        )
        station.submit("a", lambda j: 1.0, lambda j: None)
        sim.run_until(2.0)
        assert events == ["start", "finish"]


class TestValidation:
    def test_zero_workers_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            QueueingStation(sim, "s", workers=0)

    def test_negative_service_rejected(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        # Dispatch is synchronous, so the bad duration surfaces at submit.
        with pytest.raises(ConfigurationError):
            station.submit("a", lambda j: -1.0, lambda j: None)


class TestStationProperties:
    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=40,
        ),
        workers=st.integers(min_value=1, max_value=8),
        service=st.floats(min_value=0.01, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_jobs_complete_exactly_once(self, arrivals, workers, service):
        sim = Simulator()
        station = QueueingStation(sim, "s", workers=workers)
        completions = run_jobs(sim, station, arrivals, service)
        assert len(completions) == len(arrivals)
        assert station.stats.completions == len(arrivals)
        assert station.stats.arrivals == len(arrivals)
        # No completion earlier than arrival + service.
        for i, arrival in enumerate(arrivals):
            assert completions[i] >= arrival + service - 1e-9


class TestRescaleInFlight:
    def test_stretch_reschedules_remaining_service(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        completions = {}
        station.submit(
            0,
            lambda job: 10.0,
            lambda job: completions.__setitem__(job, sim.now),
        )
        sim.run_until(4.0)
        # 6 s of service remain; a 3x slowdown stretches them to 18 s.
        assert station.rescale_in_flight(3.0) == 1
        sim.run_until(100.0)
        assert completions[0] == pytest.approx(4.0 + 18.0)

    def test_shrink_accelerates_remaining_service(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        completions = {}
        station.submit(
            0,
            lambda job: 10.0,
            lambda job: completions.__setitem__(job, sim.now),
        )
        sim.run_until(4.0)
        assert station.rescale_in_flight(0.5) == 1
        sim.run_until(100.0)
        assert completions[0] == pytest.approx(4.0 + 3.0)

    def test_queued_jobs_are_untouched(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        completions = {}
        station.submit(0, lambda job: 10.0, lambda job: None)
        station.submit(
            1,
            lambda job: 10.0,
            lambda job: completions.__setitem__(job, sim.now),
        )
        sim.run_until(1.0)
        # Only the in-service job re-scales; the queued one samples its
        # duration at dispatch.
        assert station.rescale_in_flight(2.0) == 1
        sim.run_until(100.0)
        # In-service: 9 remaining * 2 = 18, done at 19; queued runs 10.
        assert completions[1] == pytest.approx(29.0)

    def test_total_service_follows_adjustment(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        station.submit(0, lambda job: 10.0, lambda job: None)
        sim.run_until(4.0)
        station.rescale_in_flight(2.0)
        sim.run_until(100.0)
        assert station.stats.total_service_s == pytest.approx(16.0)

    def test_factor_one_or_idle_is_a_noop(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        assert station.rescale_in_flight(2.0) == 0
        station.submit(0, lambda job: 10.0, lambda job: None)
        sim.run_until(1.0)
        assert station.rescale_in_flight(1.0) == 0

    def test_invalid_factor_rejected(self, sim):
        station = QueueingStation(sim, "s", workers=1)
        with pytest.raises(ConfigurationError):
            station.rescale_in_flight(0.0)
