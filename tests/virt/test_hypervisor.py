"""Unit tests for the hypervisor facade."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.server import PhysicalServer
from repro.sim.engine import Simulator
from repro.units import GB, MB
from repro.virt.hypervisor import Hypervisor
from repro.virt.overhead import OverheadModel


@pytest.fixture
def hv():
    sim = Simulator()
    server = PhysicalServer("cloud-1")
    return sim, server, Hypervisor(sim, server)


class TestDomainManagement:
    def test_dom0_exists_at_boot(self, hv):
        _, _, hypervisor = hv
        assert hypervisor.dom0.name == "Domain-0"
        assert hypervisor.domain("Domain-0") is hypervisor.dom0

    def test_create_guest(self, hv):
        _, _, hypervisor = hv
        domain = hypervisor.create_domain("web-vm", memory_bytes=2 * GB)
        assert domain in hypervisor.guest_domains()
        assert hypervisor.domain("web-vm") is domain

    def test_duplicate_name_rejected(self, hv):
        _, _, hypervisor = hv
        hypervisor.create_domain("web-vm")
        with pytest.raises(ConfigurationError):
            hypervisor.create_domain("web-vm")

    def test_unknown_domain_rejected(self, hv):
        _, _, hypervisor = hv
        with pytest.raises(ConfigurationError):
            hypervisor.domain("ghost")

    def test_dom0_not_in_guests(self, hv):
        _, _, hypervisor = hv
        assert hypervisor.dom0 not in hypervisor.guest_domains()


class TestCpuPath:
    def test_cpu_time_at_full_speed(self, hv):
        _, server, hypervisor = hv
        domain = hypervisor.create_domain("web-vm")
        cycles = server.spec.frequency_hz  # one core-second of work
        assert hypervisor.cpu_time(domain, cycles) == pytest.approx(1.0)

    def test_charge_vm_cycles_goes_to_vm_owner(self, hv):
        _, server, hypervisor = hv
        domain = hypervisor.create_domain("web-vm")
        hypervisor.charge_vm_cycles(domain, 1e6)
        assert server.cpu.ledger.total("vm:web-vm") == 1e6
        assert server.cpu.ledger.total("dom0") == 0.0

    def test_account_request_charges_dom0(self, hv):
        _, server, hypervisor = hv
        domain = hypervisor.create_domain("web-vm")
        hypervisor.account_request(domain)
        expected = hypervisor.overhead.hypercall_cycles_per_request
        assert server.cpu.ledger.total("dom0") == expected
        assert hypervisor.requests_accounted == 1

    def test_account_commit_charges_dom0(self, hv):
        _, server, hypervisor = hv
        domain = hypervisor.create_domain("db-vm")
        hypervisor.account_commit(domain)
        assert (
            server.cpu.ledger.total("dom0")
            == hypervisor.overhead.commit_cycles
        )


class TestMemoryPath:
    def test_vm_memory_recorded_per_owner(self, hv):
        _, server, hypervisor = hv
        domain = hypervisor.create_domain("web-vm", memory_bytes=2 * GB)
        hypervisor.set_vm_memory(domain, 500 * MB)
        assert hypervisor.vm_memory_used(domain) == 500 * MB

    def test_vm_memory_clamped_to_vm_size(self, hv):
        _, _, hypervisor = hv
        domain = hypervisor.create_domain("web-vm", memory_bytes=1 * GB)
        hypervisor.set_vm_memory(domain, 5 * GB)
        assert hypervisor.vm_memory_used(domain) == 1 * GB

    def test_dom0_memory_tracks_guest_usage(self, hv):
        _, _, hypervisor = hv
        overhead = hypervisor.overhead
        domain = hypervisor.create_domain("web-vm", memory_bytes=2 * GB)
        base = overhead.dom0_base_memory_bytes
        hypervisor.set_vm_memory(domain, 1 * GB)
        expected = base + overhead.dom0_memory_per_vm_byte * 1 * GB
        assert hypervisor.dom0_memory_used() == pytest.approx(expected)


class TestPeriodicWork:
    def test_epochs_charge_scheduler_overhead(self):
        sim = Simulator()
        server = PhysicalServer("s")
        hypervisor = Hypervisor(sim, server, OverheadModel())
        domain = hypervisor.create_domain("web-vm")
        domain.active_workers = 1
        baseline = server.cpu.ledger.total("dom0")
        sim.run_until(1.0)
        assert server.cpu.ledger.total("dom0") > baseline

    def test_housekeeping_writes_dom0_logs(self):
        sim = Simulator()
        server = PhysicalServer("s")
        Hypervisor(sim, server, OverheadModel(dom0_log_bytes_per_s=1000.0))
        sim.run_until(3.0)
        assert server.disk.bytes_written("dom0") >= 2000.0

    def test_shutdown_stops_periodic_work(self):
        sim = Simulator()
        server = PhysicalServer("s")
        hypervisor = Hypervisor(sim, server)
        sim.run_until(1.0)
        hypervisor.shutdown()
        cycles_at_shutdown = server.cpu.ledger.total("dom0")
        sim.run_until(10.0)
        assert server.cpu.ledger.total("dom0") == cycles_at_shutdown

    def test_scheduler_decision_updates_every_epoch(self):
        sim = Simulator()
        server = PhysicalServer("s")
        hypervisor = Hypervisor(sim, server, epoch_s=0.1)
        sim.run_until(1.0)
        assert hypervisor.scheduler.epochs == 10
