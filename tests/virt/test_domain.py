"""Unit tests for domains and VCPUs."""

import pytest

from repro.errors import ConfigurationError
from repro.units import GB
from repro.virt.domain import Domain, DomainKind
from repro.virt.vcpu import Vcpu


class TestVcpu:
    def test_default_online(self):
        assert Vcpu(0).online

    def test_set_online(self):
        vcpu = Vcpu(1)
        vcpu.set_online(False)
        assert not vcpu.online

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Vcpu(-1)


class TestDomain:
    def test_owner_key_for_guest(self):
        domain = Domain("web-vm")
        assert domain.owner == "vm:web-vm"

    def test_owner_key_for_dom0(self):
        domain = Domain("Domain-0", kind=DomainKind.DOM0)
        assert domain.owner == "dom0"

    def test_paper_vm_shape(self):
        domain = Domain("web-vm", vcpu_count=2, memory_bytes=2 * GB)
        assert len(domain.vcpus) == 2
        assert domain.memory_bytes == 2 * GB

    def test_demand_bounded_by_vcpus(self):
        domain = Domain("d", vcpu_count=2)
        domain.active_workers = 10
        assert domain.demand_cores() == 2.0

    def test_demand_bounded_by_workers(self):
        domain = Domain("d", vcpu_count=2)
        domain.active_workers = 1
        assert domain.demand_cores() == 1.0

    def test_offline_vcpu_reduces_demand(self):
        domain = Domain("d", vcpu_count=2)
        domain.vcpus[1].set_online(False)
        domain.active_workers = 5
        assert domain.demand_cores() == 1.0

    def test_worker_lifecycle(self):
        domain = Domain("d")
        domain.worker_started()
        domain.worker_started()
        assert domain.active_workers == 2
        domain.worker_finished()
        assert domain.active_workers == 1

    def test_worker_finished_underflow_rejected(self):
        with pytest.raises(ConfigurationError):
            Domain("d").worker_finished()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vcpu_count": 0},
            {"memory_bytes": 0.0},
            {"weight": 0.0},
            {"cap_cores": -1.0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            Domain("bad", **kwargs)
