"""Hypervisor runtime actuators: hotplug, cap/weight, ballooning."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.sim.engine import Simulator
from repro.units import GB, MB
from repro.virt.hypervisor import Hypervisor
from repro.virt.io_backend import DOM0_OWNER


@pytest.fixture
def hypervisor(sim):
    server = Cluster().add_server("cloud-1")
    return Hypervisor(sim, server)


@pytest.fixture
def domain(hypervisor):
    return hypervisor.create_domain("web-vm", vcpu_count=2)


class TestActuators:
    def test_set_vcpus_hotplug_beyond_assigned(self, hypervisor, domain):
        hypervisor.set_vcpus(domain, 4)
        assert domain.online_vcpus == 4
        assert len(domain.vcpus) == 4

    def test_set_vcpus_unplug(self, hypervisor, domain):
        hypervisor.set_vcpus(domain, 1)
        assert domain.online_vcpus == 1
        assert len(domain.vcpus) == 2  # assigned VCPUs stay, offline

    def test_set_vcpus_rejects_zero(self, hypervisor, domain):
        with pytest.raises(ConfigurationError):
            hypervisor.set_vcpus(domain, 0)

    def test_set_cap_and_weight(self, hypervisor, domain):
        hypervisor.set_cap_cores(domain, 1.5)
        hypervisor.set_weight(domain, 512.0)
        assert domain.cap_cores == 1.5
        assert domain.weight == 512.0
        with pytest.raises(ConfigurationError):
            hypervisor.set_cap_cores(domain, -1.0)
        with pytest.raises(ConfigurationError):
            hypervisor.set_weight(domain, 0.0)

    def test_balloon_down_clamps_usage(self, hypervisor, domain):
        hypervisor.set_vm_memory(domain, 1.5 * GB)
        hypervisor.balloon(domain, 1 * GB)
        assert domain.memory_bytes == 1 * GB
        assert hypervisor.vm_memory_used(domain) == 1 * GB

    def test_balloon_up_keeps_usage(self, hypervisor, domain):
        hypervisor.set_vm_memory(domain, 0.5 * GB)
        hypervisor.balloon(domain, 4 * GB)
        assert hypervisor.vm_memory_used(domain) == 0.5 * GB

    def test_noop_actions_emit_nothing(self, hypervisor, domain):
        events = []
        hypervisor.add_control_hook(events.append)
        hypervisor.set_vcpus(domain, domain.online_vcpus)
        hypervisor.set_cap_cores(domain, domain.cap_cores)
        hypervisor.set_weight(domain, domain.weight)
        hypervisor.balloon(domain, domain.memory_bytes)
        assert events == []
        assert hypervisor.control_actions == 0

    def test_effective_actions_emit_events_and_charge_dom0(
        self, hypervisor, domain
    ):
        events = []
        hypervisor.add_control_hook(events.append)
        before = hypervisor.server.cpu.ledger.total(DOM0_OWNER)
        hypervisor.set_cap_cores(domain, 1.0)
        hypervisor.set_vcpus(domain, 1)
        hypervisor.balloon(domain, 1024 * MB)
        after = hypervisor.server.cpu.ledger.total(DOM0_OWNER)
        assert [e["kind"] for e in events] == [
            "set_cap", "set_vcpus", "balloon",
        ]
        assert all(e["domain"] == "web-vm" for e in events)
        assert hypervisor.control_actions == 3
        assert after - before == pytest.approx(
            3 * hypervisor.overhead.control_action_cycles
        )


class TestVcpuContention:
    def _context(self, sim, vcpu_contention):
        from repro.apps.tier import VirtualizedContext

        server = Cluster().add_server("cloud-1")
        hypervisor = Hypervisor(
            sim, server, vcpu_contention=vcpu_contention
        )
        domain = hypervisor.create_domain("web-vm", vcpu_count=2)
        return hypervisor, domain, VirtualizedContext(hypervisor, domain)

    def test_disabled_by_default_ignores_worker_excess(self, sim):
        _, domain, context = self._context(sim, vcpu_contention=False)
        baseline = context.cpu_time(1e6)
        domain.active_workers = 8
        assert context.cpu_time(1e6) == baseline

    def test_enabled_slows_workers_beyond_online_vcpus(self, sim):
        _, domain, context = self._context(sim, vcpu_contention=True)
        baseline = context.cpu_time(1e6)
        domain.active_workers = 8  # 8 runnable workers on 2 VCPUs
        assert context.cpu_time(1e6) == pytest.approx(4 * baseline)
        domain.active_workers = 2  # at or below the VCPUs: full speed
        assert context.cpu_time(1e6) == baseline

    def test_hotplug_restores_speed(self, sim):
        hypervisor, domain, context = self._context(
            sim, vcpu_contention=True
        )
        baseline = context.cpu_time(1e6)
        domain.active_workers = 4
        slowed = context.cpu_time(1e6)
        hypervisor.set_vcpus(domain, 4)
        assert context.cpu_time(1e6) == baseline < slowed


class TestProbeFollowsActuation:
    def test_probe_capacity_and_memory_track_actions(self, sim):
        from repro.apps.tier import VirtualizedContext
        from repro.monitoring.probes import ContextProbe

        server = Cluster().add_server("cloud-1")
        hypervisor = Hypervisor(sim, server)
        domain = hypervisor.create_domain("web-vm", vcpu_count=2)
        probe = ContextProbe(
            "web", VirtualizedContext(hypervisor, domain)
        )
        frequency = server.spec.frequency_hz
        assert probe.capacity_cycles_per_s == 2 * frequency
        assert probe.mem_total_bytes == domain.memory_bytes
        hypervisor.set_vcpus(domain, 1)
        hypervisor.balloon(domain, 1024 * MB)
        assert probe.capacity_cycles_per_s == 1 * frequency
        assert probe.mem_total_bytes == 1024 * MB
