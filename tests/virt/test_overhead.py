"""Unit tests for the overhead model validation."""

import pytest

from repro.errors import ConfigurationError
from repro.virt.overhead import OverheadModel


class TestOverheadModel:
    def test_defaults_valid(self):
        model = OverheadModel()
        assert model.disk_amplification >= 1.0
        assert model.net_amplification >= 1.0

    def test_amplification_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(disk_amplification=0.9)
        with pytest.raises(ConfigurationError):
            OverheadModel(net_amplification=0.5)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(hypercall_cycles_per_request=-1.0)
        with pytest.raises(ConfigurationError):
            OverheadModel(commit_cycles=-1.0)
        with pytest.raises(ConfigurationError):
            OverheadModel(dom0_base_cycles_per_s=-1.0)

    def test_invalid_flush_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            OverheadModel(flush_interval_s=0.0)

    def test_batching_can_be_disabled(self):
        model = OverheadModel(batch_writes=False)
        assert model.batch_writes is False
