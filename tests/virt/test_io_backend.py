"""Unit tests for the split-driver I/O backends."""

import pytest

from repro.hardware.cpu import CpuPackage
from repro.hardware.disk import Disk
from repro.hardware.network import NetworkInterface
from repro.sim.engine import Simulator
from repro.virt.io_backend import DOM0_OWNER, BlockBackend, NetBackend
from repro.virt.overhead import OverheadModel


@pytest.fixture
def parts():
    sim = Simulator()
    disk = Disk()
    nic = NetworkInterface()
    cpu = CpuPackage()
    return sim, disk, nic, cpu


class TestBlockBackend:
    def test_guest_counters_record_logical_bytes(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(disk_amplification=2.0)
        backend = BlockBackend(sim, disk, cpu, overhead)
        backend.read(0.0, "vm:web", 1000.0)
        backend.write(0.0, "vm:web", 500.0)
        assert backend.vm_bytes_read("vm:web") == 1000.0
        assert backend.vm_bytes_written("vm:web") == 500.0
        assert backend.vm_total_bytes("vm:web") == 1500.0

    def test_physical_reads_amplified_under_dom0(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(disk_amplification=2.0)
        backend = BlockBackend(sim, disk, cpu, overhead)
        backend.read(0.0, "vm:web", 1000.0)
        assert disk.bytes_read(DOM0_OWNER) == 2000.0
        assert disk.bytes_read("vm:web") == 0.0

    def test_batched_writes_deferred_until_flush(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(disk_amplification=2.0, flush_interval_s=1.0)
        backend = BlockBackend(sim, disk, cpu, overhead)
        backend.write(0.0, "vm:web", 1000.0)
        assert disk.bytes_written(DOM0_OWNER) == 0.0
        sim.run_until(1.5)
        assert disk.bytes_written(DOM0_OWNER) == 2000.0

    def test_batching_coalesces_multiple_writes(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(disk_amplification=1.0, flush_interval_s=1.0)
        backend = BlockBackend(sim, disk, cpu, overhead)
        served_before = disk.requests_served
        for _ in range(10):
            backend.write(0.0, "vm:web", 100.0)
        sim.run_until(1.5)
        # One physical request for ten guest writes.
        assert disk.requests_served == served_before + 1
        assert disk.bytes_written(DOM0_OWNER) == 1000.0

    def test_unbatched_mode_forwards_immediately(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(
            disk_amplification=1.0, batch_writes=False
        )
        backend = BlockBackend(sim, disk, cpu, overhead)
        backend.write(0.0, "vm:web", 100.0)
        assert disk.bytes_written(DOM0_OWNER) == 100.0

    def test_write_completion_immediate_when_batched(self, parts):
        sim, disk, _, cpu = parts
        backend = BlockBackend(sim, disk, cpu, OverheadModel())
        completion = backend.write(5.0, "vm:web", 100.0)
        assert completion == 5.0

    def test_dom0_cpu_charged_per_byte(self, parts):
        sim, disk, _, cpu = parts
        overhead = OverheadModel(
            disk_amplification=2.0, disk_cycles_per_byte=10.0
        )
        backend = BlockBackend(sim, disk, cpu, overhead)
        backend.read(0.0, "vm:web", 100.0)
        assert cpu.ledger.total(DOM0_OWNER) == pytest.approx(2000.0)

    def test_dom0_own_writes_not_amplified(self, parts):
        sim, disk, _, cpu = parts
        backend = BlockBackend(sim, disk, cpu, OverheadModel())
        backend.dom0_write(0.0, 500.0)
        assert disk.bytes_written(DOM0_OWNER) == 500.0


class TestNetBackend:
    def test_guest_counters_logical(self, parts):
        sim, _, nic, cpu = parts
        backend = NetBackend(sim, nic, cpu, OverheadModel())
        backend.receive(0.0, "vm:web", 1000.0)
        backend.transmit(0.0, "vm:web", 2000.0)
        assert backend.vm_bytes_received("vm:web") == 1000.0
        assert backend.vm_bytes_transmitted("vm:web") == 2000.0
        assert backend.vm_total_bytes("vm:web") == 3000.0

    def test_physical_bytes_amplified_under_dom0(self, parts):
        sim, _, nic, cpu = parts
        overhead = OverheadModel(net_amplification=1.05)
        backend = NetBackend(sim, nic, cpu, overhead)
        backend.receive(0.0, "vm:web", 1000.0)
        assert nic.bytes_received(DOM0_OWNER) == pytest.approx(1050.0)

    def test_dom0_cpu_charged_per_byte(self, parts):
        sim, _, nic, cpu = parts
        overhead = OverheadModel(
            net_amplification=1.0, net_cycles_per_byte=3.0
        )
        backend = NetBackend(sim, nic, cpu, overhead)
        backend.transmit(0.0, "vm:web", 100.0)
        assert cpu.ledger.total(DOM0_OWNER) == pytest.approx(300.0)

    def test_multiple_guests_kept_separate(self, parts):
        sim, _, nic, cpu = parts
        backend = NetBackend(sim, nic, cpu, OverheadModel())
        backend.receive(0.0, "vm:web", 100.0)
        backend.receive(0.0, "vm:db", 200.0)
        assert backend.vm_bytes_received("vm:web") == 100.0
        assert backend.vm_bytes_received("vm:db") == 200.0
