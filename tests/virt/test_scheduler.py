"""Unit and property tests for the credit scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.virt.domain import Domain
from repro.virt.scheduler import CreditScheduler


def make_domain(name, workers, vcpus=2, weight=256.0, cap=0.0):
    domain = Domain(
        name, vcpu_count=vcpus, weight=weight, cap_cores=cap
    )
    domain.active_workers = workers
    return domain


class TestWorkConservation:
    def test_under_light_load_everyone_gets_demand(self):
        scheduler = CreditScheduler(total_cores=8)
        domains = [make_domain("a", 2), make_domain("b", 1)]
        decision = scheduler.allocate(domains)
        assert decision.granted_cores["a"] == pytest.approx(2.0)
        assert decision.granted_cores["b"] == pytest.approx(1.0)

    def test_idle_domain_gets_nothing(self):
        scheduler = CreditScheduler(total_cores=8)
        domains = [make_domain("a", 0), make_domain("b", 2)]
        decision = scheduler.allocate(domains)
        assert decision.granted_cores["a"] == 0.0

    def test_total_never_exceeds_capacity(self):
        scheduler = CreditScheduler(total_cores=2)
        domains = [make_domain(f"d{i}", 2) for i in range(4)]
        decision = scheduler.allocate(domains)
        assert sum(decision.granted_cores.values()) <= 2.0 + 1e-9


class TestProportionalShare:
    def test_weights_divide_contended_capacity(self):
        scheduler = CreditScheduler(total_cores=2)
        domains = [
            make_domain("heavy", 2, weight=512.0),
            make_domain("light", 2, weight=256.0),
        ]
        decision = scheduler.allocate(domains)
        ratio = (
            decision.granted_cores["heavy"] / decision.granted_cores["light"]
        )
        assert ratio == pytest.approx(2.0, rel=1e-6)

    def test_unused_share_redistributed(self):
        # "small" only wants 0.5 core; its leftover share must flow to
        # "big" instead of being wasted (work conservation).
        scheduler = CreditScheduler(total_cores=2)
        small = make_domain("small", 1, vcpus=1, weight=256.0)
        small.active_workers = 1
        small.vcpus = small.vcpus[:1]
        big = make_domain("big", 4, vcpus=4, weight=256.0)
        decision = scheduler.allocate([small, big])
        assert decision.granted_cores["small"] == pytest.approx(1.0)
        assert decision.granted_cores["big"] == pytest.approx(1.0)


class TestCaps:
    def test_cap_limits_allocation(self):
        scheduler = CreditScheduler(total_cores=8)
        capped = make_domain("capped", 4, vcpus=4, cap=1.5)
        decision = scheduler.allocate([capped])
        assert decision.granted_cores["capped"] == pytest.approx(1.5)

    def test_cap_zero_means_uncapped(self):
        scheduler = CreditScheduler(total_cores=8)
        domain = make_domain("free", 2, cap=0.0)
        decision = scheduler.allocate([domain])
        assert decision.granted_cores["free"] == pytest.approx(2.0)


class TestSpeedFraction:
    def test_full_speed_when_satisfied(self):
        scheduler = CreditScheduler(total_cores=8)
        domain = make_domain("a", 2)
        scheduler.allocate([domain])
        assert scheduler.speed_fraction("a") == pytest.approx(1.0)

    def test_half_speed_under_2x_contention(self):
        scheduler = CreditScheduler(total_cores=2)
        domains = [make_domain("a", 2), make_domain("b", 2)]
        scheduler.allocate(domains)
        assert scheduler.speed_fraction("a") == pytest.approx(0.5)

    def test_idle_domain_reports_full_speed(self):
        scheduler = CreditScheduler(total_cores=2)
        scheduler.allocate([make_domain("a", 0)])
        assert scheduler.speed_fraction("a") == 1.0

    def test_unknown_domain_defaults_to_full_speed(self):
        scheduler = CreditScheduler(total_cores=2)
        assert scheduler.speed_fraction("ghost") == 1.0


class TestValidation:
    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CreditScheduler(total_cores=0)

    def test_epoch_counter(self):
        scheduler = CreditScheduler(total_cores=4)
        scheduler.allocate([make_domain("a", 1)])
        scheduler.allocate([make_domain("a", 1)])
        assert scheduler.epochs == 2


class TestSchedulerProperties:
    @given(
        workers=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=6
        ),
        weights=st.lists(
            st.floats(min_value=1.0, max_value=1024.0),
            min_size=6,
            max_size=6,
        ),
        cores=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_for_any_configuration(
        self, workers, weights, cores
    ):
        scheduler = CreditScheduler(total_cores=cores)
        domains = [
            make_domain(f"d{i}", w, weight=weights[i])
            for i, w in enumerate(workers)
        ]
        decision = scheduler.allocate(domains)
        granted = decision.granted_cores
        # Never over capacity.
        assert sum(granted.values()) <= cores + 1e-6
        for domain in domains:
            # Never more than demand.
            assert granted[domain.name] <= domain.demand_cores() + 1e-9
            # Never negative.
            assert granted[domain.name] >= 0.0
        # Work conservation: if total demand fits, everyone is satisfied.
        total_demand = sum(d.demand_cores() for d in domains)
        if total_demand <= cores:
            for domain in domains:
                assert granted[domain.name] == pytest.approx(
                    domain.demand_cores(), abs=1e-6
                )
