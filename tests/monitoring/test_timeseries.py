"""Unit tests for time series and trace sets."""

import numpy as np
import pytest

from repro.errors import AnalysisError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries, TraceSet


def series_of(values, name="s", start=0.0, step=2.0):
    s = TimeSeries(name)
    for i, v in enumerate(values):
        s.append(start + i * step, v)
    return s


class TestTimeSeries:
    def test_append_and_views(self):
        s = series_of([1.0, 2.0, 3.0])
        assert len(s) == 3
        assert list(s.times) == [0.0, 2.0, 4.0]
        assert list(s.values) == [1.0, 2.0, 3.0]

    def test_non_increasing_time_rejected(self):
        s = series_of([1.0])
        with pytest.raises(AnalysisError):
            s.append(0.0, 2.0)

    def test_summary_statistics(self):
        s = series_of([2.0, 4.0, 6.0])
        assert s.mean() == 4.0
        assert s.min() == 2.0
        assert s.max() == 6.0
        assert s.total() == 12.0
        assert s.std() == pytest.approx(2.0)
        assert s.variance() == pytest.approx(4.0)

    def test_cv(self):
        s = series_of([2.0, 4.0, 6.0])
        assert s.coefficient_of_variation() == pytest.approx(0.5)

    def test_cv_zero_mean_rejected(self):
        s = series_of([-1.0, 1.0])
        with pytest.raises(AnalysisError):
            s.coefficient_of_variation()

    def test_insufficient_data_raises(self):
        s = TimeSeries("empty")
        with pytest.raises(InsufficientDataError):
            s.mean()
        with pytest.raises(InsufficientDataError):
            series_of([1.0]).std()

    def test_sliced(self):
        s = series_of([1.0, 2.0, 3.0, 4.0])
        sub = s.sliced(2.0, 6.0)
        assert list(sub.values) == [2.0, 3.0]

    def test_without_warmup(self):
        s = series_of([1.0, 2.0, 3.0, 4.0])  # times 0, 2, 4, 6
        trimmed = s.without_warmup(3.0)
        assert list(trimmed.values) == [3.0, 4.0]

    def test_without_warmup_empty_series(self):
        s = TimeSeries("e")
        assert len(s.without_warmup(10.0)) == 0

    def test_scaled(self):
        s = series_of([1.0, 2.0])
        scaled = s.scaled(10.0, unit="KB")
        assert list(scaled.values) == [10.0, 20.0]
        assert scaled.unit == "KB"

    def test_mismatched_init_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            TimeSeries("bad", times=[1.0], values=[1.0, 2.0])


class TestTraceSet:
    def make(self):
        traces = TraceSet("virtualized", "browsing", 2.0)
        traces.add("web", "cpu_cycles", series_of([1.0, 2.0]))
        traces.add("db", "cpu_cycles", series_of([0.5, 0.5]))
        return traces

    def test_add_and_get(self):
        traces = self.make()
        assert traces.get("web", "cpu_cycles").mean() == 1.5

    def test_duplicate_rejected(self):
        traces = self.make()
        with pytest.raises(AnalysisError):
            traces.add("web", "cpu_cycles", series_of([1.0]))

    def test_missing_series_error_lists_known(self):
        traces = self.make()
        with pytest.raises(AnalysisError, match="cpu_cycles"):
            traces.get("dom0", "cpu_cycles")

    def test_entities_and_resources(self):
        traces = self.make()
        assert traces.entities() == ["db", "web"]
        assert traces.resources() == ["cpu_cycles"]

    def test_aggregate_sums_elementwise(self):
        traces = self.make()
        aggregate = traces.aggregate(["web", "db"], "cpu_cycles")
        assert list(aggregate.values) == [1.5, 2.5]

    def test_aggregate_length_mismatch_rejected(self):
        traces = self.make()
        traces.add("dom0", "cpu_cycles", series_of([1.0, 2.0, 3.0]))
        with pytest.raises(AnalysisError):
            traces.aggregate(["web", "dom0"], "cpu_cycles")

    def test_has(self):
        traces = self.make()
        assert traces.has("web", "cpu_cycles")
        assert not traces.has("web", "net_kb")

    def test_len_counts_series(self):
        assert len(self.make()) == 2
