"""Property tests for trace export round-trips."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.monitoring.export import trace_set_to_csv, trace_set_to_json
from repro.monitoring.timeseries import TimeSeries, TraceSet


@st.composite
def trace_sets(draw):
    n_samples = draw(st.integers(min_value=1, max_value=30))
    entities = draw(
        st.lists(
            st.sampled_from(["web", "db", "dom0"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    traces = TraceSet("virtualized", "browsing", 2.0)
    for entity in entities:
        for resource in ("cpu_cycles", "mem_used_mb"):
            values = draw(
                st.lists(
                    st.floats(
                        min_value=0.0,
                        max_value=1e12,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=n_samples,
                    max_size=n_samples,
                )
            )
            series = TimeSeries(f"{entity}:{resource}")
            for i, value in enumerate(values):
                series.append((i + 1) * 2.0, value)
            traces.add(entity, resource, series)
    return traces


class TestJsonRoundTrip:
    @given(traces=trace_sets())
    @settings(max_examples=30, deadline=None)
    def test_json_preserves_every_sample(self, traces):
        document = json.loads(trace_set_to_json(traces))
        assert len(document["series"]) == len(traces)
        for (entity, resource), series in traces.items():
            stored = document["series"][f"{entity}:{resource}"]
            assert stored["times"] == series.times.tolist()
            assert stored["values"] == series.values.tolist()

    @given(traces=trace_sets())
    @settings(max_examples=30, deadline=None)
    def test_csv_row_count_and_parse(self, traces):
        text = trace_set_to_csv(traces)
        lines = text.strip().splitlines()
        first_key = traces.keys()[0]
        assert len(lines) == 1 + len(traces.get(*first_key))
        header = lines[0].split(",")
        assert header[0] == "time_s"
        assert len(header) == 1 + len(traces)
        # Every cell parses back to a float within format precision.
        for line in lines[1:]:
            for cell in line.split(","):
                float(cell)

    def test_empty_trace_set_rejected(self):
        with pytest.raises(AnalysisError):
            trace_set_to_csv(TraceSet("v", "w", 2.0))
