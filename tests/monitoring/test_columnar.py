"""Columnar full-registry storage: container semantics and recorder parity."""

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitoring.columnar import ColumnarRows


class TestColumnarRows:
    def test_append_and_column_views(self):
        table = ColumnarRows(["time_s", "a", "b"])
        table.append_row([0.0, 1.0, 2.0])
        table.append_row([2.0, 3.0, 4.0])
        assert len(table) == 2
        assert list(table.column("a")) == [1.0, 3.0]
        assert list(table.column("time_s")) == [0.0, 2.0]

    def test_growth_preserves_rows(self):
        table = ColumnarRows(["t", "x"])
        for i in range(500):
            table.append_row([float(i), float(2 * i)])
        assert len(table) == 500
        assert np.array_equal(
            table.column("x"), 2.0 * np.arange(500, dtype=float)
        )

    def test_rows_round_trip_as_dicts(self):
        table = ColumnarRows(["t", "x"])
        table.append_row([1.0, 10.0])
        assert table.rows() == [{"t": 1.0, "x": 10.0}]
        assert table.row(0)["x"] == 10.0

    def test_matrix_view_read_only(self):
        table = ColumnarRows(["t", "x"])
        table.append_row([1.0, 2.0])
        with pytest.raises(ValueError):
            table.matrix()[0, 0] = 9.0
        with pytest.raises(ValueError):
            table.column("x")[0] = 9.0

    def test_validation(self):
        with pytest.raises(MonitoringError):
            ColumnarRows([])
        with pytest.raises(MonitoringError):
            ColumnarRows(["a", "a"])
        table = ColumnarRows(["a", "b"])
        with pytest.raises(MonitoringError):
            table.append_row([1.0])
        with pytest.raises(MonitoringError):
            table.column("missing")
        with pytest.raises(MonitoringError):
            table.row(0)


class TestRecorderColumnarParity:
    def test_columnar_rows_match_dict_rows_bit_for_bit(self):
        # Two identical runs of one scenario, differing only in storage
        # format, must produce the same samples: the columnar path reuses
        # the same compiled derivations in the same order, so the noise
        # stream is untouched.
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenarios import scenario

        sc = scenario("virtualized", "browsing", duration_s=20.0, seed=11)
        dict_run = run_scenario(sc, collect_full_registry=True)
        col_run = run_scenario(
            sc, collect_full_registry=True, columnar_rows=True
        )
        assert dict_run.full_rows, "dict-mode run produced no samples"
        assert col_run.full_rows == []  # opt-in replaces the dict rows
        reconstructed = col_run.columnar.rows()
        assert len(reconstructed) == len(dict_run.full_rows)
        for got, expected in zip(reconstructed, dict_run.full_rows):
            assert got == expected

    def test_columnar_requires_full_registry(self):
        from repro.monitoring.sampler import TraceRecorder
        from repro.sim.engine import Simulator

        class FakeProbe:
            entity = "x"
            mem_total_bytes = 1.0
            capacity_cycles_per_s = 1.0
            virtualized = False

            def snapshot(self):
                from repro.monitoring.probes import RawCounters

                return RawCounters(0, 0, 0, 0, 0, 0, 0)

        with pytest.raises(MonitoringError):
            TraceRecorder(
                Simulator(),
                [FakeProbe()],
                environment="e",
                workload="w",
                columnar_rows=True,
            )
