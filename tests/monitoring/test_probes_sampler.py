"""Unit tests for probes, the trace recorder, and export."""

import json

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitoring.export import trace_set_to_csv, trace_set_to_json
from repro.monitoring.probes import ContextProbe, Dom0Probe, RawCounters
from repro.monitoring.registry import build_registry
from repro.monitoring.sampler import TraceRecorder
from repro.rubis.deployment import VirtualizedDeployment
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


@pytest.fixture
def virt():
    sim = Simulator()
    deployment = VirtualizedDeployment(sim, RandomStreams(3))
    return sim, deployment


class FakeSession:
    session_id = 1


class TestRawCounters:
    def test_delta_differences_counters_keeps_level(self):
        earlier = RawCounters(100, 50, 10, 20, 30, 40, 5)
        later = RawCounters(150, 70, 15, 25, 35, 45, 9)
        delta = later.delta(earlier)
        assert delta.cpu_cycles == 50
        assert delta.mem_used_bytes == 70  # level, not differenced
        assert delta.requests == 4

    def test_monotonic_validation(self):
        bad = RawCounters(-5, 0, 0, 0, 0, 0, 0)
        with pytest.raises(MonitoringError):
            bad.validate_monotonic()


class TestContextProbe:
    def test_virtualized_probe_metadata(self, virt):
        _, deployment = virt
        probe = ContextProbe("web", deployment.web_context)
        assert probe.virtualized
        assert probe.mem_total_bytes == deployment.web_domain.memory_bytes
        assert probe.capacity_cycles_per_s == pytest.approx(2 * 2.8e9)

    def test_snapshot_tracks_activity(self, virt):
        sim, deployment = virt
        probe = ContextProbe("web", deployment.web_context)
        before = probe.snapshot()
        deployment.send(FakeSession(), "ViewItem", lambda r: None)
        sim.run_until(2.0)
        after = probe.snapshot()
        delta = after.delta(before)
        assert delta.cpu_cycles > 0
        assert delta.net_rx_bytes > 0


class TestDom0Probe:
    def test_snapshot_reads_dom0_owners(self, virt):
        sim, deployment = virt
        probe = Dom0Probe(deployment.hypervisor)
        sim.run_until(3.0)
        snapshot = probe.snapshot()
        assert snapshot.cpu_cycles > 0  # housekeeping burned cycles
        assert snapshot.mem_used_bytes > 0

    def test_not_flagged_virtualized(self, virt):
        _, deployment = virt
        assert not Dom0Probe(deployment.hypervisor).virtualized


class TestTraceRecorder:
    def test_core_series_collected_on_2s_grid(self, virt):
        sim, deployment = virt
        probes = [
            ContextProbe("web", deployment.web_context),
            ContextProbe("db", deployment.db_context),
            Dom0Probe(deployment.hypervisor),
        ]
        recorder = TraceRecorder(sim, probes, "virtualized", "browsing")
        sim.run_until(10.0)
        series = recorder.traces.get("web", "cpu_cycles")
        assert list(series.times) == [2.0, 4.0, 6.0, 8.0, 10.0]
        assert recorder.samples_taken == 5
        assert len(recorder.traces) == 12  # 3 entities x 4 resources

    def test_duplicate_entities_rejected(self, virt):
        sim, deployment = virt
        probes = [
            ContextProbe("web", deployment.web_context),
            ContextProbe("web", deployment.db_context),
        ]
        with pytest.raises(MonitoringError):
            TraceRecorder(sim, probes, "virtualized", "browsing")

    def test_no_probes_rejected(self, virt):
        sim, _ = virt
        with pytest.raises(MonitoringError):
            TraceRecorder(sim, [], "virtualized", "browsing")

    def test_full_registry_rows(self, virt):
        sim, deployment = virt
        probes = [ContextProbe("web", deployment.web_context)]
        recorder = TraceRecorder(
            sim,
            probes,
            "virtualized",
            "browsing",
            registry=build_registry(),
            collect_full_registry=True,
            rng=np.random.default_rng(0),
        )
        sim.run_until(4.0)
        assert len(recorder.full_rows) == 2
        row = recorder.full_rows[0]
        # 182 sysstat-vm + 154 perf + time column.
        assert len(row) == 182 + 154 + 1

    def test_full_registry_requires_registry_and_rng(self, virt):
        sim, deployment = virt
        probes = [ContextProbe("web", deployment.web_context)]
        with pytest.raises(MonitoringError):
            TraceRecorder(
                sim, probes, "v", "w", collect_full_registry=True
            )

    def test_stop_halts_sampling(self, virt):
        sim, deployment = virt
        recorder = TraceRecorder(
            sim,
            [ContextProbe("web", deployment.web_context)],
            "virtualized",
            "browsing",
        )
        sim.run_until(4.0)
        recorder.stop()
        sim.run_until(20.0)
        assert recorder.samples_taken == 2


class TestExport:
    def _recorded(self, virt):
        sim, deployment = virt
        recorder = TraceRecorder(
            sim,
            [
                ContextProbe("web", deployment.web_context),
                ContextProbe("db", deployment.db_context),
            ],
            "virtualized",
            "browsing",
        )
        deployment.send(FakeSession(), "ViewItem", lambda r: None)
        sim.run_until(6.0)
        return recorder.traces

    def test_csv_round_shape(self, virt):
        traces = self._recorded(virt)
        csv_text = trace_set_to_csv(traces)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("time_s,")
        assert len(lines) == 1 + 3  # header + 3 samples
        assert len(lines[0].split(",")) == 1 + 8  # time + 2x4 series

    def test_json_round_trip(self, virt):
        traces = self._recorded(virt)
        document = json.loads(trace_set_to_json(traces))
        assert document["environment"] == "virtualized"
        assert document["workload"] == "browsing"
        assert len(document["series"]) == 8
        web_cpu = document["series"]["web:cpu_cycles"]
        assert len(web_cpu["times"]) == 3
