"""Buffer semantics of the preallocated TimeSeries storage.

The series keeps amortized-growth float64 buffers with cached read-only
views; these tests pin the view-invalidation contract (satellite of the
vectorized-telemetry work) and the no-roundtrip transform paths.
"""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.monitoring.timeseries import TimeSeries, TraceSet


class TestCachedViews:
    def test_view_is_cached_between_reads(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        assert series.values is series.values
        assert series.times is series.times

    def test_append_invalidates_cached_views(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        before = series.values
        series.append(2.0, 5.0)
        after = series.values
        assert len(before) == 1  # old view keeps its snapshot length
        assert len(after) == 2
        assert after[-1] == 5.0
        assert series.times[-1] == 2.0

    def test_views_are_read_only(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        with pytest.raises(ValueError):
            series.values[0] = 99.0
        with pytest.raises(ValueError):
            series.times[0] = 99.0

    def test_old_view_survives_buffer_growth(self):
        series = TimeSeries("s")
        series.append(0.0, 0.0)
        view = series.values
        # Push well past the initial capacity so the buffer reallocates.
        for i in range(1, 500):
            series.append(2.0 * i, float(i))
        assert list(view) == [0.0]  # snapshot unaffected by growth
        assert len(series) == 500
        assert series.values[-1] == 499.0

    def test_growth_preserves_all_samples(self):
        series = TimeSeries("s")
        n = 1000
        for i in range(n):
            series.append(float(i), float(2 * i))
        assert np.array_equal(series.times, np.arange(n, dtype=float))
        assert np.array_equal(
            series.values, 2.0 * np.arange(n, dtype=float)
        )


class TestArrayConstruction:
    def test_constructor_accepts_numpy_arrays_directly(self):
        times = np.array([0.0, 2.0, 4.0])
        values = np.array([1.0, 2.0, 3.0])
        series = TimeSeries("s", "u", times, values)
        assert np.array_equal(series.times, times)
        assert np.array_equal(series.values, values)

    def test_constructor_copies_its_input(self):
        times = np.array([0.0, 2.0])
        values = np.array([1.0, 2.0])
        series = TimeSeries("s", "u", times, values)
        values[0] = 99.0
        assert series.values[0] == 1.0

    def test_constructor_accepts_generators(self):
        series = TimeSeries(
            "s", "u", (float(i) for i in range(3)), iter([5.0, 6.0, 7.0])
        )
        assert list(series.values) == [5.0, 6.0, 7.0]

    def test_append_after_array_construction(self):
        series = TimeSeries("s", "u", [0.0, 2.0], [1.0, 2.0])
        series.append(4.0, 3.0)
        assert list(series.values) == [1.0, 2.0, 3.0]
        with pytest.raises(AnalysisError):
            series.append(3.0, 9.0)  # still monotonic-checked


class TestTransformsStayArrayNative:
    def make(self):
        series = TimeSeries("s", "u")
        for i in range(10):
            series.append(2.0 * i, float(i))
        return series

    def test_sliced_returns_float64_and_appendable(self):
        sub = self.make().sliced(4.0, 12.0)
        assert sub.values.dtype == np.float64
        assert list(sub.values) == [2.0, 3.0, 4.0, 5.0]
        sub.append(100.0, 42.0)  # adopted arrays stay appendable
        assert len(sub) == 5

    def test_scaled_does_not_alias_source(self):
        series = self.make()
        scaled = series.scaled(10.0)
        scaled.append(100.0, 1.0)
        assert len(series) == 10
        assert series.values[-1] == 9.0

    def test_without_warmup_matches_mask(self):
        trimmed = self.make().without_warmup(10.0)
        assert list(trimmed.times) == [10.0, 12.0, 14.0, 16.0, 18.0]

    def test_aggregate_appendable_and_exact(self):
        traces = TraceSet("env", "wl", 2.0)
        traces.add("a", "r", TimeSeries("a", "u", [0.0, 2.0], [1.0, 2.0]))
        traces.add("b", "r", TimeSeries("b", "u", [0.0, 2.0], [0.5, 0.5]))
        total = traces.aggregate(["a", "b"], "r")
        assert list(total.values) == [1.5, 2.5]
        # The aggregate owns its buffers: mutating it must not leak back.
        total.append(4.0, 9.0)
        assert len(traces.get("a", "r")) == 2
