"""Unit tests for the 518-metric catalogue."""

import numpy as np
import pytest

from repro.errors import UnknownMetricError
from repro.monitoring.metric import MetricKind, MetricSource, SampleInputs
from repro.monitoring.registry import (
    PERF_METRIC_COUNT,
    SYSSTAT_METRIC_COUNT,
    TOTAL_METRIC_COUNT,
    build_registry,
    perf_metrics,
    sysstat_metrics,
    table1_sample,
)


@pytest.fixture(scope="module")
def registry():
    return build_registry()


def make_inputs(virtualized=False, cpu_cycles=1.4e9):
    return SampleInputs(
        interval_s=2.0,
        cpu_cycles=cpu_cycles,
        mem_used_bytes=600e6,
        mem_total_bytes=2e9,
        disk_read_bytes=100e3,
        disk_write_bytes=300e3,
        net_rx_bytes=2e6,
        net_tx_bytes=3e6,
        requests=280.0,
        capacity_cycles=2 * 2.8e9 * 2.0,
        rng=np.random.default_rng(5),
        virtualized=virtualized,
    )


class TestCatalogueCounts:
    def test_paper_totals(self, registry):
        # Section 3: "In total, 518 metrics are profiled, i.e., 182 for
        # the hypervisor and 182 for VMs by sysstat and 154 for
        # performance counters by perf".
        assert len(registry) == TOTAL_METRIC_COUNT == 518
        counts = registry.counts_by_source()
        assert counts["sysstat-hypervisor"] == SYSSTAT_METRIC_COUNT == 182
        assert counts["sysstat-vm"] == 182
        assert counts["perf"] == PERF_METRIC_COUNT == 154

    def test_sysstat_names_unique_within_source(self):
        metrics = sysstat_metrics(MetricSource.SYSSTAT_VM)
        names = [m.name for m in metrics]
        assert len(set(names)) == len(names)

    def test_perf_names_unique(self):
        names = [m.name for m in perf_metrics()]
        assert len(set(names)) == len(names)

    def test_perf_per_core_events(self):
        names = {m.name for m in perf_metrics()}
        for core in range(8):
            assert f"cpu{core}/cycles" in names
            assert f"cpu{core}/instructions" in names


class TestEvaluation:
    def test_all_metrics_evaluate_finite(self, registry):
        inputs = make_inputs(virtualized=True)
        values = registry.evaluate_all(inputs)
        assert len(values) == 518
        for value in values.values():
            assert np.isfinite(value)

    def test_memused_reflects_inputs(self, registry):
        metric = registry.lookup(MetricSource.SYSSTAT_VM, "kbmemused")
        value = metric.evaluate(make_inputs())
        assert value == pytest.approx(600e6 / 1024)

    def test_steal_only_when_virtualized(self, registry):
        metric = registry.lookup(MetricSource.SYSSTAT_VM, "%steal")
        assert metric.evaluate(make_inputs(virtualized=False)) == 0.0
        assert metric.evaluate(make_inputs(virtualized=True)) > 0.0

    def test_cycles_counter_passthrough(self, registry):
        metric = registry.lookup(MetricSource.PERF, "cycles")
        value = metric.evaluate(make_inputs(cpu_cycles=1e9))
        assert value == pytest.approx(1e9, rel=0.2)

    def test_virtualization_reduces_ipc(self, registry):
        metric = registry.lookup(MetricSource.PERF, "instructions")
        bare = metric.evaluate(make_inputs(virtualized=False))
        virt = metric.evaluate(make_inputs(virtualized=True))
        assert virt < bare

    def test_virtualization_raises_tlb_misses(self, registry):
        metric = registry.lookup(MetricSource.PERF, "dTLB-load-misses")
        bare = metric.evaluate(make_inputs(virtualized=False))
        virt = metric.evaluate(make_inputs(virtualized=True))
        assert virt > bare

    def test_idle_complement_of_utilization(self, registry):
        metric = registry.lookup(
            MetricSource.SYSSTAT_HYPERVISOR, "%idle"
        )
        idle = metric.evaluate(make_inputs(cpu_cycles=0.0))
        assert idle == pytest.approx(100.0)

    def test_network_rate_scales_with_bytes(self, registry):
        metric = registry.lookup(MetricSource.SYSSTAT_VM, "rxkB/s")
        value = metric.evaluate(make_inputs())
        assert value == pytest.approx(2e6 / 1024 / 2.0, rel=0.2)

    def test_lookup_unknown_rejected(self, registry):
        with pytest.raises(UnknownMetricError):
            registry.lookup(MetricSource.PERF, "quantum-flux")


class TestTable1:
    def test_sample_is_subset_of_catalogue(self, registry):
        sample = table1_sample(registry)
        assert len(sample) == 25
        for metric in sample:
            assert registry.lookup(metric.source, metric.name) is metric

    def test_sample_covers_all_three_collectors(self, registry):
        sources = {m.source for m in table1_sample(registry)}
        assert sources == {
            MetricSource.SYSSTAT_HYPERVISOR,
            MetricSource.SYSSTAT_VM,
            MetricSource.PERF,
        }

    def test_descriptions_nonempty(self, registry):
        for metric in table1_sample(registry):
            assert metric.description


class TestDrawBatching:
    """Record-and-replay noise batching is bit-identical to scalar draws.

    The vectorized registry tick records each probe's fixed draw
    schedule once, then batch-draws every later tick's noise as a few
    array fills.  numpy Generator array fills consume the bit stream
    element-wise exactly like sequential scalar calls, so the batched
    path must reproduce the scalar path value-for-value — the property
    that lets the optimization ship without a fingerprint rebaseline.
    """

    @pytest.mark.parametrize("virtualized", [True, False])
    def test_replay_matches_scalar_stream(self, registry, virtualized):
        from repro.monitoring.metric import DrawRecorder, DrawSchedule

        source = (
            MetricSource.SYSSTAT_VM
            if virtualized
            else MetricSource.SYSSTAT_HYPERVISOR
        )
        triples = registry.compiled(source) + registry.compiled(
            MetricSource.PERF
        )

        def tick_inputs(rng, load, feed=None):
            inputs = make_inputs(
                virtualized=virtualized, cpu_cycles=1.4e9 * load
            )
            inputs.rng = rng
            inputs.feed = feed
            return inputs

        loads = [1.0, 1.3, 0.7, 1.9]
        r_scalar = np.random.default_rng(77)
        scalar_rows = []
        for load in loads:
            d = tick_inputs(r_scalar, load)
            scalar_rows.append([derive(d) for _, _, derive in triples])

        r_batched = np.random.default_rng(77)
        recorder = DrawRecorder(r_batched)
        d = tick_inputs(r_batched, loads[0], feed=recorder)
        batched_rows = [[derive(d) for _, _, derive in triples]]
        schedule = DrawSchedule(recorder.schedule)
        assert schedule.size == len(recorder.schedule)
        for load in loads[1:]:
            feed = schedule.draw(r_batched)
            d = tick_inputs(r_batched, load, feed=feed)
            batched_rows.append([derive(d) for _, _, derive in triples])
            # every pre-drawn value was consumed, none left over
            assert feed.pos == schedule.size
        assert np.array_equal(
            np.array(scalar_rows), np.array(batched_rows)
        )
        # both generators are at the same stream position afterwards
        assert r_scalar.random() == r_batched.random()

    def test_schedule_groups_consecutive_draws(self, registry):
        from repro.monitoring.metric import DrawRecorder, DrawSchedule

        rng = np.random.default_rng(3)
        recorder = DrawRecorder(rng)
        inputs = make_inputs(virtualized=True)
        inputs.feed = recorder
        for _, _, derive in registry.compiled(MetricSource.SYSSTAT_VM):
            derive(inputs)
        schedule = DrawSchedule(recorder.schedule)
        # hundreds of draws collapse into a handful of array segments
        assert schedule.size > 100
        assert len(schedule.segments) < 25
