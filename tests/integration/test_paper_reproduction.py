"""Integration tests: the paper's findings hold end to end.

These are the acceptance tests of the reproduction: each asserts one of
the calibration targets (R1/R2/R4 within tolerance, R3 derived) or one
of the qualitative findings (Q1-Q5) on the shared 240-second runs.
Tolerances are sized for the short CI runs; full 1200 s runs land
tighter (see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.ratios import (
    cross_environment_ratios,
    demand_vector,
    physical_cross_ratios,
    tier_ratios,
    vm_to_hypervisor_ratios,
)
from repro.experiments.compare import compare_with_paper, qualitative_checks
from repro.experiments.paper_values import (
    PAPER_R1,
    PAPER_R2,
    PAPER_R4,
    VIRTUALIZED_TARGETS,
)

#: Relative tolerance for rate resources on 240 s runs.
RATE_TOLERANCE = 0.15
#: RAM needs a looser band: its warm-up ramp spans a large part of a
#: short run, biasing the level mean low.
LEVEL_TOLERANCE = 0.30


class TestR1TierRatios:
    def test_cpu(self, virt_browse_result):
        ratio = tier_ratios(virt_browse_result.traces)
        assert ratio.cpu_cycles == pytest.approx(
            PAPER_R1.cpu_cycles, rel=RATE_TOLERANCE
        )

    def test_ram(self, virt_browse_result):
        ratio = tier_ratios(virt_browse_result.traces)
        assert ratio.mem_used_mb == pytest.approx(
            PAPER_R1.mem_used_mb, rel=LEVEL_TOLERANCE
        )

    def test_disk(self, virt_browse_result):
        ratio = tier_ratios(virt_browse_result.traces)
        assert ratio.disk_kb == pytest.approx(
            PAPER_R1.disk_kb, rel=RATE_TOLERANCE
        )

    def test_network(self, virt_browse_result):
        ratio = tier_ratios(virt_browse_result.traces)
        assert ratio.net_kb == pytest.approx(
            PAPER_R1.net_kb, rel=RATE_TOLERANCE
        )


class TestR2VmToDom0:
    def test_cpu(self, virt_browse_result):
        ratio = vm_to_hypervisor_ratios(virt_browse_result.traces)
        assert ratio.cpu_cycles == pytest.approx(
            PAPER_R2.cpu_cycles, rel=RATE_TOLERANCE
        )

    def test_ram(self, virt_browse_result):
        ratio = vm_to_hypervisor_ratios(virt_browse_result.traces)
        assert ratio.mem_used_mb == pytest.approx(
            PAPER_R2.mem_used_mb, rel=LEVEL_TOLERANCE
        )

    def test_disk(self, virt_browse_result):
        ratio = vm_to_hypervisor_ratios(virt_browse_result.traces)
        assert ratio.disk_kb == pytest.approx(
            PAPER_R2.disk_kb, rel=RATE_TOLERANCE
        )

    def test_network(self, virt_browse_result):
        ratio = vm_to_hypervisor_ratios(virt_browse_result.traces)
        assert ratio.net_kb == pytest.approx(
            PAPER_R2.net_kb, rel=0.05
        )


class TestR4PhysicalCross:
    def test_cpu_non_virt_higher(self, virt_browse_result,
                                 bare_browse_result):
        ratio = physical_cross_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.cpu_cycles == pytest.approx(
            PAPER_R4.cpu_cycles, rel=RATE_TOLERANCE
        )

    def test_ram_non_virt_higher(self, virt_browse_result,
                                 bare_browse_result):
        ratio = physical_cross_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.mem_used_mb == pytest.approx(
            PAPER_R4.mem_used_mb, rel=LEVEL_TOLERANCE
        )

    def test_disk_non_virt_lower(self, virt_browse_result,
                                 bare_browse_result):
        ratio = physical_cross_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.disk_kb == pytest.approx(
            PAPER_R4.disk_kb, rel=RATE_TOLERANCE
        )
        assert ratio.disk_kb < 1.0  # the "25% less" direction

    def test_network_near_parity(self, virt_browse_result,
                                 bare_browse_result):
        ratio = physical_cross_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.net_kb == pytest.approx(
            PAPER_R4.net_kb, rel=0.10
        )


class TestR3Derived:
    def test_disk_and_net_match_paper(self, virt_browse_result,
                                      bare_browse_result):
        # R3 is derived, not calibrated; disk and network are the two
        # components consistent with R2 x R4 and they must match.
        ratio = cross_environment_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.disk_kb == pytest.approx(0.60, rel=0.20)
        assert ratio.net_kb == pytest.approx(0.98, rel=0.10)

    def test_cpu_shows_documented_inconsistency(self, virt_browse_result,
                                                bare_browse_result):
        # Paper states 3.47; under R2 and R4 the consistent value is
        # R2/R4 = 8.96.  We assert the derived value, documenting the
        # paper's internal inconsistency (see DESIGN.md section 3).
        ratio = cross_environment_ratios(
            virt_browse_result.traces, bare_browse_result.traces
        )
        assert ratio.cpu_cycles == pytest.approx(
            PAPER_R2.cpu_cycles / PAPER_R4.cpu_cycles, rel=0.20
        )


class TestQualitativeFindings:
    @pytest.fixture(scope="class")
    def checks(
        self,
        virt_browse_result,
        virt_bid_result,
        bare_browse_result,
        bare_bid_result,
    ):
        return qualitative_checks(
            virt_browse_result,
            virt_bid_result,
            bare_browse_result,
            bare_bid_result,
        )

    def test_q1_db_lags_web(self, checks):
        assert checks.q1_db_lags_web

    def test_q2_virt_browse_ram_jumps(self, checks):
        assert checks.q2_virt_browse_jumps

    def test_q2_virt_bid_ram_smooth(self, checks):
        assert checks.q2_virt_bid_smooth

    def test_q3_bare_bid_jumps_earlier(self, checks):
        assert checks.q3_bare_bid_jumps_earlier

    def test_q4_disk_variance_higher_on_bare_metal(self, checks):
        assert checks.q4_disk_variance_higher_bare

    def test_q5_bid_costs_dom0_more_cpu(self, checks):
        assert checks.q5_bid_more_dom0_cpu

    def test_all_findings_summary(self, checks):
        assert checks.all_pass()


class TestSeriesEnvelopes:
    def test_virt_web_cpu_mean_near_target(self, virt_browse_result):
        vector = demand_vector(virt_browse_result.traces, "web")
        assert vector.cpu_cycles == pytest.approx(
            VIRTUALIZED_TARGETS["web"].cpu_cycles, rel=0.15
        )

    def test_virt_web_net_mean_near_target(self, virt_browse_result):
        vector = demand_vector(virt_browse_result.traces, "web")
        assert vector.net_kb == pytest.approx(
            VIRTUALIZED_TARGETS["web"].net_kb, rel=0.15
        )

    def test_browse_demands_more_web_cpu_than_bid(
        self, virt_browse_result, virt_bid_result
    ):
        browse = demand_vector(virt_browse_result.traces, "web")
        bid = demand_vector(virt_bid_result.traces, "web")
        assert browse.cpu_cycles >= bid.cpu_cycles
        assert browse.net_kb >= bid.net_kb


class TestComparisonReports:
    def test_four_ratio_reports(self, virt_browse_result,
                                bare_browse_result):
        reports = compare_with_paper(
            virt_browse_result, bare_browse_result
        )
        names = [r.name for r in reports]
        assert len(reports) == 4
        assert any("R1" in n for n in names)
        assert any("R4" in n for n in names)
