"""Determinism and outcome regression for the sharded fleet engine.

The sharding contract has three legs:

1. **Shard-count invariance.**  A fleet's merged trace fingerprint is
   bit-identical across shard counts — including a faulted fleet whose
   recovery crosses shards (the two-pod crash/strand/evacuate story).
2. **Engine equivalence.**  A single-pod fleet produces exactly the
   traces the plain single-process ``run_scenario`` path produces at
   the pod-derived seed: the shard layer wraps the engine, it never
   re-implements it.
3. **Fail-fast liveness.**  A shard that stops heartbeating fails the
   run within the deadline, naming the shard and its server groups.
"""

import os
from dataclasses import replace

import pytest

from repro.config import ExperimentConfig
from repro.experiments.runner import run_scenario
from repro.monitoring.export import trace_set_sha256
from repro.planning.cost import score_cost_sla
from repro.shard import (
    FleetScenario,
    PodSpec,
    ShardTimeoutError,
    fleet_optimizer_demo,
    fleet_optimizer_demo_watch,
    run_fleet,
    two_pod_fleet,
    two_pod_fleet_watch,
)
from repro.shard.fabric import HANG_ENV


def _small_pod_config(seed: int = 7) -> ExperimentConfig:
    return ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        seed=seed,
        clients=40,
    )


def _four_pod_fleet() -> FleetScenario:
    return FleetScenario(
        name="four",
        pods=tuple(
            PodSpec(f"p{i}", _small_pod_config()) for i in range(1, 5)
        ),
        duration_s=20.0,
        window_s=10.0,
        seed=11,
    )


class TestShardCountInvariance:
    def test_faulted_two_pod_fleet_identical_across_shards(self):
        """The acceptance run: crash, strand, cross-shard evacuation —
        and the same merged fingerprint whether the pods share one
        process or talk through the message fabric."""
        inline = run_fleet(two_pod_fleet(), shards=1)
        sharded = run_fleet(two_pod_fleet(), shards=2)
        assert inline.merged_sha256 == sharded.merged_sha256
        for result in (inline, sharded):
            east, west = result.pods["east"], result.pods["west"]
            assert east["fleet"]["failed_servers"] == ["cloud-2"]
            assert east["exported"] == [{"vm": "heavy-vm", "peer": "west"}]
            assert west["imported"] == [
                {"vm": "heavy-vm@east", "peer": "east"}
            ]
            kinds = [d["kind"] for d in result.optimizer["decisions"]]
            assert "evacuate" in kinds

    def test_watch_fleet_leaves_the_guest_stranded(self):
        """Without the optimizer the heavy guest stays on the failed
        server — the cross-pod evacuation is what changes the outcome."""
        watch = run_fleet(two_pod_fleet_watch(), shards=1)
        east = watch.pods["east"]
        assert east["exported"] == []
        assert east["fleet"]["placement"]["cloud-2"] == ["heavy-vm"]

    def test_four_pod_fleet_identical_across_1_2_4_shards(self):
        fingerprints = {
            shards: run_fleet(_four_pod_fleet(), shards=shards).merged_sha256
            for shards in (1, 2, 4)
        }
        assert len(set(fingerprints.values())) == 1


class TestEngineEquivalence:
    def test_single_pod_fleet_matches_run_scenario(self):
        fleet = FleetScenario(
            name="solo",
            pods=(PodSpec("only", _small_pod_config()),),
            duration_s=20.0,
            window_s=10.0,
            seed=11,
        )
        result = run_fleet(fleet, shards=1)
        config = replace(
            _small_pod_config(),
            seed=fleet.pod_seed("only"),
            duration_s=20.0,
        )
        reference = run_scenario(config.to_scenario())
        assert (
            result.pods["only"]["trace_sha256"]
            == trace_set_sha256(reference.traces)
        )


class TestFleetOptimizerEconomics:
    def test_budget_lever_beats_watching(self):
        """The bill-reading acceptance check: the optimized fleet ends
        strictly cheaper per kilorequest than the watch-only baseline
        at the same seed, without violating the SLO."""
        optimized = run_fleet(fleet_optimizer_demo(), shards=1)
        watch = run_fleet(fleet_optimizer_demo_watch(), shards=1)

        def score(result):
            p95 = max(pod["p95_ms"] for pod in result.pods.values())
            return score_cost_sla(
                result.billing(), p95, slo_ms=50.0,
                requests_completed=result.requests_completed,
            )

        cheap, base = score(optimized), score(watch)
        assert cheap.usd_per_kilorequest < base.usd_per_kilorequest
        assert cheap.sla_met
        kinds = [d["kind"] for d in optimized.optimizer["decisions"]]
        assert "budget-throttle" in kinds


class TestHeartbeat:
    def test_hung_shard_fails_fast_naming_its_server_groups(self):
        os.environ[HANG_ENV] = "1"
        try:
            with pytest.raises(
                ShardTimeoutError,
                match=r"shard 1 \(server groups: p2, p4\)",
            ) as excinfo:
                run_fleet(
                    _four_pod_fleet(), shards=2, heartbeat_timeout_s=3.0
                )
        finally:
            os.environ.pop(HANG_ENV, None)
        assert excinfo.value.shard == 1
        assert excinfo.value.pods == ["p2", "p4"]
        assert excinfo.value.window_index == 0
