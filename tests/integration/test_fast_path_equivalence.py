"""End-to-end equivalence of the optimized engine against the seed loop.

The performance work (inlined run_until, fused pop, compiled registry,
precomputed demand profiles) must not move a single sample: running a
full scenario under the original peek/step formulation of ``run_until``
has to produce identical traces, identical full-registry rows, and the
same event count as the fast path.
"""

import numpy as np

from repro.errors import SimulationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.sim.engine import Simulator


def reference_run_until(self, end_time):
    """The seed engine's run_until: peek the queue, bounds-check, step."""
    if end_time < self.now:
        raise SimulationError(
            f"run_until({end_time}) is before now={self.now}"
        )
    self._running = True
    self._stopped = False
    try:
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
    finally:
        self._running = False
    if not self._stopped:
        self.now = end_time


class TestFastPathEquivalence:
    def test_scenario_traces_identical_under_reference_loop(self, monkeypatch):
        sc = scenario("virtualized", "browsing", duration_s=40.0, seed=13)
        fast = run_scenario(sc, collect_full_registry=True)

        monkeypatch.setattr(Simulator, "run_until", reference_run_until)
        slow = run_scenario(sc, collect_full_registry=True)
        monkeypatch.undo()

        assert (
            fast.deployment.sim.events_fired
            == slow.deployment.sim.events_fired
        )
        for key in fast.traces.keys():
            fast_series = fast.traces.get(*key)
            slow_series = slow.traces.get(*key)
            assert np.array_equal(
                fast_series.times, slow_series.times
            ), f"times diverged for {key}"
            assert np.array_equal(
                fast_series.values, slow_series.values
            ), f"values diverged for {key}"
        assert len(fast.full_rows) == len(slow.full_rows)
        for fast_row, slow_row in zip(fast.full_rows, slow.full_rows):
            assert fast_row == slow_row
        assert fast.requests_completed == slow.requests_completed

    def test_bare_metal_equivalence(self, monkeypatch):
        sc = scenario("bare-metal", "bidding", duration_s=40.0, seed=5)
        fast = run_scenario(sc)

        monkeypatch.setattr(Simulator, "run_until", reference_run_until)
        slow = run_scenario(sc)
        monkeypatch.undo()

        for key in fast.traces.keys():
            assert np.array_equal(
                fast.traces.get(*key).values,
                slow.traces.get(*key).values,
            ), f"series {key} diverged"
