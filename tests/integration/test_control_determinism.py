"""Determinism regression for the control subsystem.

Two invariants guard the elastic-control PR:

1. **No controller ⇒ bit-identical traces.**  The SHA-256 fingerprints
   below were recorded on the pre-control tree (PR 3 head) for four
   representative scenarios; any drift on a ``controller=None`` path —
   the hypervisor actuator plumbing, the probe properties, the traffic
   retry hooks — is a regression.
2. **Controller ⇒ deterministic.**  Policies and actuators draw no
   randomness, so a controller-enabled run is a pure function of the
   scenario seed: identical trace hashes across repeated runs and
   across suite worker counts.
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    autoscaled_flash_crowd_scenario,
    consolidated_web_batch_scenario,
    flash_crowd_scenario,
    scenario,
)
from repro.experiments.suite import run_suite, suite_grid
from repro.monitoring.export import trace_set_sha256

#: (factory, sha256 recorded at the pre-control seed tree).
PRE_CONTROL_FINGERPRINTS = [
    (
        "virtualized/browsing 60s seed=7",
        lambda: scenario("virtualized", "browsing", duration_s=60.0, seed=7),
        "49df5d8a0695ad34e5fe43f360c36d1d4a456316542a4a423a1aaee0b83a4efb",
    ),
    (
        "bare-metal/bidding 60s seed=3",
        lambda: scenario("bare-metal", "bidding", duration_s=60.0, seed=3),
        "f355247543d87fb64a6044b98d8af28314feba51652adcba42b74942da775dbf",
    ),
    (
        "flash crowd 60s 200 clients budget=300",
        lambda: flash_crowd_scenario(
            duration_s=60.0, clients=200, session_budget=300
        ),
        "4bf1fb50e25d3a5cf4e291d2438a9726b086b534547a71f19d04b3cf383301b8",
    ),
    (
        "consolidated web+batch 60s 200 clients",
        lambda: consolidated_web_batch_scenario(
            duration_s=60.0, clients=200
        ),
        "3d83dc656d62eb8b3c0dba02c762334ab9c0a4d7165ce47fd5599fb5340ac274",
    ),
]


class TestUncontrolledPathsBitIdentical:
    @pytest.mark.parametrize(
        "label,factory,expected",
        PRE_CONTROL_FINGERPRINTS,
        ids=[entry[0] for entry in PRE_CONTROL_FINGERPRINTS],
    )
    def test_traces_match_pre_control_fingerprints(
        self, label, factory, expected
    ):
        result = run_scenario(factory())
        assert trace_set_sha256(result.traces) == expected, (
            f"{label}: controller=None traces drifted from the "
            "pre-control baseline"
        )


class TestControlledRunsDeterministic:
    def test_same_seed_same_trace_hash(self):
        spec = autoscaled_flash_crowd_scenario(
            duration_s=60.0, clients=200, controller="threshold"
        )
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert trace_set_sha256(first.traces) == trace_set_sha256(
            second.traces
        )
        assert (
            first.control_reports["control"]["num_actions"]
            == second.control_reports["control"]["num_actions"]
        )

    def test_different_policies_different_traces(self):
        static = run_scenario(
            autoscaled_flash_crowd_scenario(
                duration_s=60.0, clients=200, controller="static"
            )
        )
        threshold = run_scenario(
            autoscaled_flash_crowd_scenario(
                duration_s=60.0, clients=200, controller="threshold"
            )
        )
        assert trace_set_sha256(static.traces) != trace_set_sha256(
            threshold.traces
        )

    def test_worker_count_does_not_change_controlled_results(self):
        runs = suite_grid(
            compositions=("browsing",),
            traffics=(None, "poisson"),
            controllers=("static", "threshold"),
            duration_s=40.0,
            clients=150,
            seed=11,
        )
        assert len(runs) == 4
        serial = run_suite(runs, workers=1)
        parallel = run_suite(runs, workers=2)
        assert serial.merged_sha256() == parallel.merged_sha256()
        for run_id, summary in serial.summaries.items():
            other = parallel.summaries[run_id]
            assert summary.trace_sha256 == other.trace_sha256
            assert summary.control_reports == other.control_reports
