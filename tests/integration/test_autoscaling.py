"""Qualitative elasticity findings: autoscaled runs beat static ones.

The acceptance claims of the control subsystem, asserted on the same
seed and the same offered arrival stream (only the controller differs):

* flash crowd — the threshold-autoscaled run has a strictly lower web
  p95 during the flash-crowd window and a strictly lower shed fraction
  than the statically provisioned baseline;
* consolidation — the autoscaled web tiers recover most of the
  interference-inflated latency while the batch tenant still makes
  progress.
"""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    autoscaled_consolidated_scenario,
    autoscaled_flash_crowd_scenario,
    flash_crowd_window,
)

DURATION_S = 90.0
CLIENTS = 300


def _window_p95_ms(result):
    """Peak windowed web p95 inside the flash-crowd surge."""
    low, high = flash_crowd_window(result.scenario)
    series = result.traces.get("control", "p95_ms")
    mask = (series.times >= low) & (series.times <= high)
    return float(series.values[mask].max())


@pytest.fixture(scope="module")
def flash_static():
    return run_scenario(
        autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="static"
        )
    )


@pytest.fixture(scope="module")
def flash_threshold():
    return run_scenario(
        autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="threshold"
        )
    )


class TestFlashCrowdElasticity:
    def test_same_offered_arrival_stream(self, flash_static, flash_threshold):
        # Apples-to-apples: the controller must not perturb the load.
        assert (
            flash_static.arrival_trace.sha256()
            == flash_threshold.arrival_trace.sha256()
        )
        assert (
            flash_static.traffic_report["offered"]
            == flash_threshold.traffic_report["offered"]
        )

    def test_lower_p95_during_the_flash_window(
        self, flash_static, flash_threshold
    ):
        static_p95 = _window_p95_ms(flash_static)
        scaled_p95 = _window_p95_ms(flash_threshold)
        assert scaled_p95 < static_p95

    def test_lower_shed_fraction(self, flash_static, flash_threshold):
        static_shed = flash_static.traffic_report["shed_fraction"]
        scaled_shed = flash_threshold.traffic_report["shed_fraction"]
        assert scaled_shed < static_shed
        # The margin is structural (the budget tripled), not noise.
        assert scaled_shed < 0.75 * static_shed

    def test_lower_abandonment(self, flash_static, flash_threshold):
        assert (
            flash_threshold.traffic_report["abandonment_fraction"]
            < flash_static.traffic_report["abandonment_fraction"]
        )

    def test_more_requests_served(self, flash_static, flash_threshold):
        assert (
            flash_threshold.requests_completed
            > flash_static.requests_completed
        )

    def test_capacity_held_while_overload_persists(self, flash_threshold):
        # The flash decays with a horizon-relative time constant, so
        # shedding persists to the end of the run — and the controller
        # must keep holding the grown capacity rather than flapping.
        caps = flash_threshold.traces.get("control", "web-vm.cap_cores")
        shed = flash_threshold.traces.get("control", "shed_fraction")
        spec = flash_threshold.scenario.controller
        late = caps.times > flash_crowd_window(flash_threshold.scenario)[1]
        assert shed.values[late].max() > 0  # overload really persists
        assert caps.values[late].min() > spec.min_cap_cores

    def test_capacity_scales_down_when_calm(self):
        # Steady calm traffic through the same controller: the warmup
        # transient bumps capacity, the calm hysteresis releases it.
        from dataclasses import replace

        from repro.experiments.scenarios import open_loop_scenario

        flash = autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="threshold"
        )
        base = open_loop_scenario(
            "virtualized", "browsing", kind="poisson",
            duration_s=DURATION_S, clients=CLIENTS,
        )
        calm = replace(
            base,
            name="calm@threshold",
            controller=flash.controller,
            traffic=replace(
                base.traffic,
                session_budget=2 * CLIENTS,
                requests_per_session=5,
                rate_rps=base.mix.clients / base.mix.think_time_s / 5,
            ),
        )
        result = run_scenario(calm)
        caps = result.traces.get("control", "web-vm.cap_cores").values
        spec = calm.controller
        rose = np.flatnonzero(caps > spec.min_cap_cores + 1e-9)
        assert rose.size > 0
        assert caps[rose[0]:].min() == pytest.approx(spec.min_cap_cores)

    def test_static_latency_collapse_is_structural(self, flash_static):
        # The static sizing fails on CPU, not just admission: its
        # flash-window p95 is in the hundreds of milliseconds while
        # the calm phase serves in single-digit milliseconds.
        assert _window_p95_ms(flash_static) > 100.0


class TestConsolidatedElasticity:
    @pytest.fixture(scope="class")
    def static(self):
        return run_scenario(
            autoscaled_consolidated_scenario(
                duration_s=DURATION_S, clients=400, controller="static"
            )
        )

    @pytest.fixture(scope="class")
    def threshold(self):
        return run_scenario(
            autoscaled_consolidated_scenario(
                duration_s=DURATION_S, clients=400, controller="threshold"
            )
        )

    def test_latency_recovers_under_autoscaling(self, static, threshold):
        assert (
            threshold.p95_response_time_s < static.p95_response_time_s
        )
        assert (
            threshold.mean_response_time_s < static.mean_response_time_s
        )

    def test_recovery_margin_is_large(self, static, threshold):
        # Static capped tiers under batch interference inflate p95 by
        # several-fold; the controller must claw back at least half.
        assert (
            threshold.p95_response_time_s
            < 0.5 * static.p95_response_time_s
        )

    def test_batch_progress_unharmed(self, static, threshold):
        static_tasks = static.tenant_reports["batch"]["tasks_completed"]
        scaled_tasks = threshold.tenant_reports["batch"]["tasks_completed"]
        assert scaled_tasks > 0
        assert scaled_tasks >= 0.8 * static_tasks

    def test_weight_boost_exercised(self, threshold):
        kinds = threshold.control_reports["control"]["actions_by_kind"]
        assert kinds.get("set_weight", 0) > 0


class TestPolicyFamilies:
    @pytest.mark.parametrize("kind", ["pid", "predictive"])
    def test_active_policies_beat_static_on_shedding(self, kind,
                                                     flash_static):
        result = run_scenario(
            autoscaled_flash_crowd_scenario(
                duration_s=DURATION_S, clients=CLIENTS, controller=kind
            )
        )
        assert (
            result.traffic_report["shed_fraction"]
            < flash_static.traffic_report["shed_fraction"]
        )
        assert result.control_reports["control"]["num_actions"] > 0

    def test_predictive_scales_before_reactive_thresholds(self):
        result = run_scenario(
            autoscaled_flash_crowd_scenario(
                duration_s=DURATION_S, clients=CLIENTS,
                controller="predictive",
            )
        )
        threshold_result = run_scenario(
            autoscaled_flash_crowd_scenario(
                duration_s=DURATION_S, clients=CLIENTS,
                controller="threshold",
            )
        )

        def first_scale_time(res):
            caps = res.traces.get("control", "web-vm.cap_cores")
            spec = res.scenario.controller
            above = caps.times[caps.values > spec.min_cap_cores + 1e-9]
            return above[0] if above.size else np.inf

        assert first_scale_time(result) <= first_scale_time(
            threshold_result
        )
