"""Classic vs batched engine: pinned baselines and equivalence in distribution.

The batched engine (PERFORMANCE.md "Epoch 2") trades bitwise identity
for array-native throughput.  This harness is the contract that makes
the trade safe:

* the classic engine stays **bit-identical** to its pinned epoch-1
  fingerprints (``tests/baselines/engine_fingerprints.json``, written
  by ``scripts/rebaseline.py``),
* the batched engine is **self-deterministic** (same pinned-fingerprint
  treatment, fresh process each time),
* at matched seeds the two engines are **equivalent in distribution**:
  two-sample KS on response times, relative-error bounds on
  throughput / utilization / CPU-ready aggregates, and per-figure
  series-mean ratios, across the paper's 4-run matrix and the
  open-loop poisson cell.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.experiments.baseline import (
    baseline_scenarios,
    ks_statistic,
    ks_threshold,
    load_fingerprints,
    matrix_cells,
    relative_error,
    result_fingerprint,
    series_mean_ratio,
)
from repro.experiments.runner import run_scenario

ROOT = Path(__file__).resolve().parent.parent.parent

CLOSED_CELLS = [f"{env}/{comp}" for env, comp in matrix_cells()]
OPEN_CELL = "virtualized/browsing/poisson"
ALL_CELLS = CLOSED_CELLS + [OPEN_CELL]

#: Figure resources compared per entity (the four per-panel series the
#: paper's figures plot).
FIGURE_RESOURCES = ("cpu_cycles", "mem_used_mb", "disk_kb", "net_kb")


@pytest.fixture(scope="module")
def pinned():
    return load_fingerprints(ROOT)


@pytest.fixture(scope="module")
def classic_results():
    return {
        cell: run_scenario(spec)
        for cell, spec in baseline_scenarios("classic").items()
    }


@pytest.fixture(scope="module")
def batched_results():
    return {
        cell: run_scenario(spec)
        for cell, spec in baseline_scenarios("batched").items()
    }


class TestPinnedFingerprints:
    """Both engines reproduce their pinned baselines bit-for-bit."""

    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_classic_bit_stable(self, pinned, classic_results, cell):
        assert (
            result_fingerprint(classic_results[cell])
            == pinned["engines"]["classic"][cell]
        ), (
            f"classic fingerprint drifted for {cell} — the bit-stable "
            "engine moved; fix the regression (do NOT rebaseline)"
        )

    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_batched_self_deterministic(self, pinned, batched_results, cell):
        assert (
            result_fingerprint(batched_results[cell])
            == pinned["engines"]["batched"][cell]
        ), (
            f"batched fingerprint drifted for {cell} — either a "
            "determinism bug, or a deliberate epoch change that needs "
            "scripts/rebaseline.py plus a PERFORMANCE.md note"
        )


class TestDistributionalEquivalence:
    """At matched seeds the engines agree in distribution."""

    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_response_time_ks(self, classic_results, batched_results, cell):
        a = np.asarray(classic_results[cell].client_stats.response_times_s)
        b = np.asarray(batched_results[cell].client_stats.response_times_s)
        statistic = ks_statistic(a, b)
        # 4x the alpha=1e-3 critical value: generous headroom over
        # seed-to-seed sampling noise while still rejecting any
        # structural shift (the pre-fix per-device-frontier bug sat at
        # D ~ 0.9 on this test).
        bound = 4.0 * ks_threshold(a.size, b.size, alpha=1e-3)
        assert statistic < bound, (
            f"{cell}: KS={statistic:.4f} exceeds {bound:.4f} "
            f"(n={a.size}, m={b.size})"
        )

    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_throughput_and_latency_close(
        self, classic_results, batched_results, cell
    ):
        classic = classic_results[cell]
        batched = batched_results[cell]
        assert (
            relative_error(classic.throughput_rps, batched.throughput_rps)
            < 0.05
        )
        assert (
            relative_error(
                classic.mean_response_time_s, batched.mean_response_time_s
            )
            < 0.15
        )

    @pytest.mark.parametrize("cell", CLOSED_CELLS)
    def test_figure_series_ratios(
        self, classic_results, batched_results, cell
    ):
        classic = classic_results[cell]
        batched = batched_results[cell]
        for entity in classic.traces.entities():
            for resource in FIGURE_RESOURCES:
                ratio = series_mean_ratio(classic, batched, entity, resource)
                assert 0.85 < ratio < 1.18, (
                    f"{cell} {entity}/{resource}: batched/classic series "
                    f"mean ratio {ratio:.3f} out of bounds"
                )

    def test_cpu_ready_close(self, classic_results, batched_results):
        for cell in ("virtualized/browsing", "virtualized/bidding"):
            classic = classic_results[cell]
            batched = batched_results[cell]
            for domain in ("web", "db"):
                ready_c = classic.cpu_ready_seconds(domain)
                ready_b = batched.cpu_ready_seconds(domain)
                assert relative_error(ready_c, ready_b) < 0.25, (
                    f"{cell} {domain}: ready {ready_c:.3f}s vs "
                    f"{ready_b:.3f}s"
                )

    def test_open_loop_arrivals_bit_identical(
        self, classic_results, batched_results
    ):
        # The offered workload shares the classic arrival stream, so
        # the metered arrival trace must match exactly — the engines
        # differ only in how the lifecycle executes.
        classic = classic_results[OPEN_CELL]
        batched = batched_results[OPEN_CELL]
        assert np.array_equal(
            classic.arrival_trace.rates_rps, batched.arrival_trace.rates_rps
        )
        assert (
            classic.traffic_report["offered"]
            == batched.traffic_report["offered"]
        )
        assert (
            classic.traffic_report["admitted"]
            == batched.traffic_report["admitted"]
        )
