"""Integration tests: determinism and cross-cutting pipeline behaviour."""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.monitoring.export import trace_set_to_csv


class TestDeterminism:
    def test_same_seed_identical_traces(self):
        a = run_scenario(
            scenario("virtualized", "browsing", duration_s=60.0, seed=7)
        )
        b = run_scenario(
            scenario("virtualized", "browsing", duration_s=60.0, seed=7)
        )
        for key in a.traces.keys():
            va = a.traces.get(*key).values
            vb = b.traces.get(*key).values
            assert np.array_equal(va, vb), f"series {key} diverged"
        assert a.requests_completed == b.requests_completed

    def test_different_seed_different_traces(self):
        a = run_scenario(
            scenario("virtualized", "browsing", duration_s=60.0, seed=7)
        )
        b = run_scenario(
            scenario("virtualized", "browsing", duration_s=60.0, seed=8)
        )
        assert not np.array_equal(
            a.traces.get("web", "cpu_cycles").values,
            b.traces.get("web", "cpu_cycles").values,
        )

    def test_bare_metal_also_deterministic(self):
        a = run_scenario(
            scenario("bare-metal", "bidding", duration_s=60.0, seed=3)
        )
        b = run_scenario(
            scenario("bare-metal", "bidding", duration_s=60.0, seed=3)
        )
        assert np.array_equal(
            a.traces.get("web", "disk_kb").values,
            b.traces.get("web", "disk_kb").values,
        )


class TestPipelineConsistency:
    def test_throughput_matches_closed_loop_law(self, virt_browse_result):
        # X = N / (Z + R); bursts add a few percent on short runs.
        result = virt_browse_result
        expected = 1000.0 / (7.0 + result.mean_response_time_s)
        assert result.throughput_rps == pytest.approx(expected, rel=0.10)

    def test_response_time_far_below_think_time(self, virt_browse_result):
        assert virt_browse_result.mean_response_time_s < 0.5

    def test_interaction_frequencies_match_matrix(self, virt_browse_result):
        from repro.rubis.transitions import browsing_matrix

        pi = browsing_matrix().stationary_distribution()
        counts = virt_browse_result.client_stats.per_interaction
        total = sum(counts.values())
        for state, probability in pi.items():
            if probability > 0.08:
                observed = counts.get(state, 0) / total
                assert observed == pytest.approx(probability, abs=0.03)

    def test_traces_export_to_csv(self, virt_browse_result):
        text = trace_set_to_csv(virt_browse_result.traces)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 120  # header + 240s/2s samples
        assert lines[0].count(",") == 12  # time + 3 entities x 4

    def test_memory_never_exceeds_vm_allocation(self, virt_browse_result):
        web_ram = virt_browse_result.traces.get("web", "mem_used_mb")
        assert web_ram.max() <= 2048.0  # 2 GB VM

    def test_all_series_non_negative(self, virt_browse_result,
                                     bare_browse_result):
        for result in (virt_browse_result, bare_browse_result):
            for key in result.traces.keys():
                assert result.traces.get(*key).values.min() >= 0.0
