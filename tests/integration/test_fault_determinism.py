"""Fault-injection determinism invariants.

Three properties hold the subsystem together:

* a faulted run is a pure function of its scenario — same seed, same
  schedule, bit-identical traces on re-run;
* fault schedules resolve from SHA-256, not RNG state, so a suite with
  a ``faults`` axis merges bit-identically across worker counts; and
* the faulted and fault-free cells of one grid share their per-run
  seed (the faults token joins the run id *after* the seed id), so a
  recovery comparison never compares across seed noise.

The companion invariant — fault-*free* runs remain bit-identical to
the pre-fault-subsystem baseline — is pinned by the fingerprint tests
in ``test_placement_determinism.py``.
"""

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import detect_and_evacuate_scenario
from repro.experiments.suite import run_suite, suite_grid
from repro.monitoring.export import trace_set_sha256


class TestFaultedRunsAreDeterministic:
    def test_same_scenario_same_traces(self):
        spec = detect_and_evacuate_scenario(duration_s=120.0, clients=300)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert trace_set_sha256(first.traces) == trace_set_sha256(
            second.traces
        )
        assert (
            first.control_reports["faults"]
            == second.control_reports["faults"]
        )
        assert (
            first.control_reports["fleet"]["evacuations"]
            == second.control_reports["fleet"]["evacuations"]
        )


class TestFaultAxisSuite:
    def _grid(self):
        return suite_grid(
            faults=(None, "crash@20:20", "cap_theft@15:10:0.2/web-vm"),
            servers=(2,),
            duration_s=40.0,
            clients=80,
        )

    def test_fault_cells_share_the_clean_cell_seed(self):
        runs = self._grid()
        assert len(runs) == 3
        assert len({run.config.seed for run in runs}) == 1
        assert len({run.run_id for run in runs}) == 3

    def test_worker_count_does_not_change_results(self):
        runs = self._grid()
        serial = run_suite(runs, workers=1)
        parallel = run_suite(runs, workers=2)
        assert serial.merged_sha256() == parallel.merged_sha256()
        for run_id in serial.summaries:
            a = serial.summaries[run_id]
            b = parallel.summaries[run_id]
            assert a.trace_sha256 == b.trace_sha256
            # The resolved schedules (and everything the faults did)
            # crossed the process boundary bit-identically.
            assert a.control_reports == b.control_reports

    def test_faulted_cell_differs_from_clean_cell(self):
        suite = run_suite(self._grid(), workers=1)
        hashes = {
            summary.trace_sha256 for summary in suite.summaries.values()
        }
        assert len(hashes) == 3, (
            "each fault schedule must leave its own trace signature"
        )
