"""Determinism regression for the placement subsystem.

Two invariants guard the multi-server PR:

1. **``--servers 1`` ⇒ bit-identical traces.**  Single-server runs
   never enter the placement path; their SHA-256 fingerprints must
   match the pre-placement tree exactly (the values below are the
   PR-4-era fingerprints, re-asserted here through the config layer's
   explicit ``servers=1``).
2. **Multi-server ⇒ deterministic.**  Placement policies, the
   migration model and the fleet controller draw no randomness, so
   fleet runs are a pure function of the scenario seed: identical
   trace hashes across repeated runs and across suite worker counts.
"""

import pytest

from repro.config import ExperimentConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import migration_rebalance_scenario
from repro.experiments.suite import run_suite, suite_grid
from repro.monitoring.export import trace_set_sha256
from repro.workloads.base import TenantSpec

#: (label, config, sha256 recorded on the pre-placement tree).
PRE_PLACEMENT_FINGERPRINTS = [
    (
        "virtualized/browsing 60s seed=7 servers=1",
        ExperimentConfig(
            environment="virtualized", composition="browsing",
            duration_s=60.0, seed=7, servers=1,
        ),
        "49df5d8a0695ad34e5fe43f360c36d1d4a456316542a4a423a1aaee0b83a4efb",
    ),
    (
        "bare-metal/bidding 60s seed=3 servers=1",
        ExperimentConfig(
            environment="bare-metal", composition="bidding",
            duration_s=60.0, seed=3, servers=1,
        ),
        "f355247543d87fb64a6044b98d8af28314feba51652adcba42b74942da775dbf",
    ),
    (
        "consolidated web+batch 60s 200 clients servers=1",
        ExperimentConfig(
            environment="virtualized", composition="browsing",
            duration_s=60.0, clients=200, tenants=({},), servers=1,
        ),
        "3d83dc656d62eb8b3c0dba02c762334ab9c0a4d7165ce47fd5599fb5340ac274",
    ),
]


class TestSingleServerBitIdentical:
    @pytest.mark.parametrize(
        "label,config,expected",
        PRE_PLACEMENT_FINGERPRINTS,
        ids=[entry[0] for entry in PRE_PLACEMENT_FINGERPRINTS],
    )
    def test_traces_match_pre_placement_fingerprints(
        self, label, config, expected
    ):
        result = run_scenario(config.to_scenario())
        assert trace_set_sha256(result.traces) == expected, (
            f"{label}: servers=1 traces drifted from the pre-placement "
            "baseline"
        )


class TestMultiServerDeterministic:
    def test_same_seed_same_trace_hash(self):
        spec = migration_rebalance_scenario(duration_s=60.0, clients=200)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert trace_set_sha256(first.traces) == trace_set_sha256(
            second.traces
        )
        assert (
            first.control_reports["fleet"]["migrations"]
            == second.control_reports["fleet"]["migrations"]
        )

    def test_placement_policy_changes_multi_server_traces(self):
        packed = run_scenario(
            ExperimentConfig(
                duration_s=40.0, clients=150, tenants=({},),
                servers=2, placement="firstfit",
            ).to_scenario()
        )
        spread = run_scenario(
            ExperimentConfig(
                duration_s=40.0, clients=150, tenants=({},),
                servers=2, placement="priority",
            ).to_scenario()
        )
        assert trace_set_sha256(packed.traces) != trace_set_sha256(
            spread.traces
        )

    def test_worker_count_does_not_change_fleet_results(self):
        runs = suite_grid(
            compositions=("browsing",),
            tenant_mixes=((), (TenantSpec(),)),
            servers=(1, 2),
            placement="priority",
            duration_s=40.0,
            clients=150,
            seed=11,
        )
        assert len(runs) == 4
        serial = run_suite(runs, workers=1)
        parallel = run_suite(runs, workers=2)
        assert serial.merged_sha256() == parallel.merged_sha256()
        for run_id, summary in serial.summaries.items():
            other = parallel.summaries[run_id]
            assert summary.trace_sha256 == other.trace_sha256
            assert summary.control_reports == other.control_reports
