"""Tests for the MapReduce extension (the paper's future work)."""

import pytest

from repro.errors import ConfigurationError
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import JobSpec, MapReduceJob
from repro.mapreduce.workload import JobMix, grep_like_job, sort_like_job
from repro.monitoring.probes import ContextProbe
from repro.monitoring.sampler import TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import MB


@pytest.fixture
def mr():
    sim = Simulator()
    cluster = MapReduceCluster(
        sim, RandomStreams(5), nodes=3, map_slots=2, reduce_slots=2
    )
    return sim, cluster


def small_spec(**overrides):
    base = dict(
        name="tiny",
        input_bytes=64 * MB,
        map_tasks=6,
        reduce_tasks=3,
        map_output_ratio=0.5,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_derived_quantities(self):
        spec = small_spec()
        assert spec.split_bytes == pytest.approx(64 * MB / 6)
        assert spec.intermediate_bytes == pytest.approx(32 * MB)
        assert spec.partition_bytes == pytest.approx(32 * MB / 3)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(input_bytes=0.0)
        with pytest.raises(ConfigurationError):
            small_spec(map_tasks=0)
        with pytest.raises(ConfigurationError):
            small_spec(map_output_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            small_spec(output_replication=0)

    def test_canonical_templates(self):
        assert sort_like_job().map_output_ratio == 1.0
        assert grep_like_job().map_output_ratio < 0.1


class TestExecution:
    def test_job_runs_to_completion(self, mr):
        sim, cluster = mr
        job = MapReduceJob(small_spec())
        done = []
        cluster.submit(job, done.append)
        sim.run_until(3600.0)
        assert done == [job]
        assert job.stats.makespan_s > 0
        assert job.stats.maps_completed == 6
        assert job.stats.reduces_completed == 3

    def test_phase_ordering(self, mr):
        sim, cluster = mr
        job = MapReduceJob(small_spec())
        cluster.submit(job)
        sim.run_until(3600.0)
        stats = job.stats
        assert (
            stats.submitted_at
            <= stats.map_started_at
            < stats.map_finished_at
            <= stats.shuffle_finished_at
            <= stats.finished_at
        )

    def test_resource_accounting_lands_on_nodes(self, mr):
        sim, cluster = mr
        job = MapReduceJob(small_spec())
        cluster.submit(job)
        sim.run_until(3600.0)
        contexts = cluster.contexts()
        total_cpu = sum(c.cpu_cycles_total() for c in contexts.values())
        total_disk = sum(c.disk_bytes_total() for c in contexts.values())
        total_net = sum(c.net_bytes_total() for c in contexts.values())
        spec = job.spec
        expected_cpu = spec.input_bytes * spec.map_cycles_per_byte + (
            spec.intermediate_bytes * spec.reduce_cycles_per_byte
        )
        assert total_cpu >= expected_cpu  # plus OS housekeeping
        # Disk: input read + intermediate write + replicated output.
        expected_disk = spec.input_bytes + spec.intermediate_bytes + (
            spec.intermediate_bytes * spec.output_replication
        )
        assert total_disk >= expected_disk * 0.99
        # Network: shuffle moves the intermediate volume twice (tx + rx).
        assert total_net == pytest.approx(
            2 * spec.intermediate_bytes, rel=0.01
        )

    def test_shuffle_bytes_tracked(self, mr):
        sim, cluster = mr
        job = MapReduceJob(small_spec())
        cluster.submit(job)
        sim.run_until(3600.0)
        assert job.stats.shuffle_bytes_moved == pytest.approx(
            job.spec.intermediate_bytes, rel=0.01
        )

    def test_slots_limit_parallelism(self):
        # One node, one map slot: maps must serialize, stretching the
        # map phase compared to an unconstrained cluster.  The job is
        # made CPU-bound (high cycles/byte) because the single shared
        # spindle serializes split reads regardless of slot count.
        def run(slots):
            sim = Simulator()
            cluster = MapReduceCluster(
                sim, RandomStreams(5), nodes=1, map_slots=slots,
                reduce_slots=2,
            )
            job = MapReduceJob(small_spec(map_cycles_per_byte=120.0))
            cluster.submit(job)
            sim.run_until(36000.0)
            return job.stats.map_phase_s

        assert run(1) > 2.0 * run(6)

    def test_grep_shuffles_less_than_sort(self):
        def shuffle_bytes(spec):
            sim = Simulator()
            cluster = MapReduceCluster(sim, RandomStreams(5), nodes=2)
            job = MapReduceJob(spec)
            cluster.submit(job)
            sim.run_until(36000.0)
            return job.stats.shuffle_bytes_moved

        assert shuffle_bytes(grep_like_job(64, 8)) < 0.1 * shuffle_bytes(
            sort_like_job(64, 8)
        )

    def test_invalid_cluster_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            MapReduceCluster(sim, RandomStreams(1), nodes=0)
        with pytest.raises(ConfigurationError):
            MapReduceCluster(sim, RandomStreams(1), map_slots=0)


class TestMonitoringIntegration:
    def test_standard_pipeline_profiles_mapreduce(self, mr):
        sim, cluster = mr
        probes = [
            ContextProbe(name, context)
            for name, context in cluster.contexts().items()
        ]
        recorder = TraceRecorder(
            sim, probes, environment="bare-metal", workload="sort"
        )
        cluster.submit(MapReduceJob(sort_like_job(128, 8)))
        sim.run_until(120.0)
        recorder.stop()
        traces = recorder.traces
        assert len(traces.entities()) == 3
        # The shuffle is visible on the network series of some node.
        peak_net = max(
            traces.get(entity, "net_kb").max()
            for entity in traces.entities()
        )
        assert peak_net > 0


class TestJobMix:
    def test_poisson_arrivals_within_horizon(self, mr):
        sim, cluster = mr
        import numpy as np

        mix = JobMix([grep_like_job(16, 4)], arrival_rate_per_s=0.5)
        jobs = mix.drive(
            sim, cluster, np.random.default_rng(3), horizon_s=60.0
        )
        assert len(jobs) > 5
        sim.run_until(4000.0)
        assert cluster.jobs_completed == len(jobs)

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigurationError):
            JobMix([])
