"""Tests for fault specifications, CLI tokens and seed-resolved timing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.spec import (
    CAP_THEFT,
    CRASH,
    DEFAULT_MAGNITUDE,
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
    _derive_jitter,
)


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(kind=CRASH, at_s=60.0)
        assert spec.duration_s == 0.0
        assert spec.magnitude == 0.0
        assert spec.effective_magnitude == DEFAULT_MAGNITUDE[CRASH]
        assert spec.server_target

    def test_domain_target_kinds(self):
        assert not FaultSpec(kind=CAP_THEFT, at_s=10.0).server_target
        assert not FaultSpec(kind="bot_flood", at_s=10.0).server_target

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="gamma_ray", at_s=10.0)

    def test_invalid_values_rejected(self):
        for kwargs in (
            {"kind": CRASH, "at_s": -1.0},
            {"kind": CRASH, "at_s": 10.0, "duration_s": -1.0},
            {"kind": CRASH, "at_s": 10.0, "magnitude": -0.5},
            {"kind": CRASH, "at_s": 10.0, "jitter_s": -1.0},
            # crash magnitude is the residual fraction: must stay < 1
            {"kind": CRASH, "at_s": 10.0, "magnitude": 1.5},
            # degrade/flash magnitudes are factors: must be >= 1
            {"kind": "degrade_disk", "at_s": 10.0, "magnitude": 0.5},
            {"kind": "flash_crowd", "at_s": 10.0, "magnitude": 0.5},
        ):
            with pytest.raises(ConfigurationError):
                FaultSpec(**kwargs)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            kind=CAP_THEFT, at_s=40.0, duration_s=30.0,
            target="web-vm", magnitude=0.1, jitter_s=5.0,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_dict_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"kind": CRASH, "at_s": 1.0, "blast": 9})


class TestCliTokens:
    def test_minimal_token(self):
        spec = FaultSpec.from_cli_token("crash@60")
        assert spec == FaultSpec(kind=CRASH, at_s=60.0)
        assert spec.as_cli_token() == "crash@60"

    def test_full_token_round_trip(self):
        for token in (
            "crash@60",
            "degrade_disk@30:20",
            "cap_theft@40:30:0.25/web-vm",
            "crash@60/cloud-2",
            "bot_flood@90:15:200",
        ):
            spec = FaultSpec.from_cli_token(token)
            assert FaultSpec.from_cli_token(spec.as_cli_token()) == spec

    def test_malformed_tokens_rejected(self):
        for token in ("crash", "crash@", "crash@a", "crash@1:2:3:4",
                      "warp@60"):
            with pytest.raises(ConfigurationError):
                FaultSpec.from_cli_token(token)

    def test_schedule_round_trip(self):
        schedule = FaultSchedule.from_cli_string("crash@60+bot_flood@90:15")
        assert schedule.kinds() == ("crash", "bot_flood")
        assert (
            FaultSchedule.from_cli_string(schedule.as_cli_string())
            == schedule
        )

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule.from_cli_string("+")
        with pytest.raises(ConfigurationError):
            FaultSchedule(faults=())


class TestResolution:
    def test_no_jitter_resolves_verbatim(self):
        schedule = FaultSchedule((
            FaultSpec(kind=CRASH, at_s=60.0),
            FaultSpec(kind=CAP_THEFT, at_s=20.0, duration_s=30.0),
        ))
        resolved = schedule.resolve(seed=7)
        # Sorted by onset, not schedule position.
        assert [r.spec.kind for r in resolved] == [CAP_THEFT, CRASH]
        assert resolved[0].inject_at_s == 20.0
        assert resolved[0].clear_at_s == 50.0
        # duration 0 holds to the horizon: no clear event.
        assert resolved[1].clear_at_s is None

    def test_jitter_is_deterministic_and_bounded(self):
        spec = FaultSpec(kind=CRASH, at_s=60.0, jitter_s=10.0)
        draws = {_derive_jitter(seed, 0, spec) for seed in range(20)}
        assert all(0.0 <= j < 10.0 for j in draws)
        assert len(draws) > 1, "jitter must vary with the seed"
        # Same (seed, index, spec) -> bit-identical jitter, any process.
        assert _derive_jitter(42, 0, spec) == _derive_jitter(42, 0, spec)

    def test_resolution_is_pure(self):
        schedule = FaultSchedule((
            FaultSpec(kind=kind, at_s=30.0, jitter_s=8.0)
            for kind in FAULT_KINDS[:3]
        ))
        assert schedule.resolve(123) == schedule.resolve(123)
        assert schedule.resolve(123) != schedule.resolve(124)
