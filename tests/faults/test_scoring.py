"""Tests for recovery scoring (detection/recovery/violation math)."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.scoring import billing_delta, score_recovery

WINDOW_S = 2.0


def _series(values, start=0.0):
    times = start + WINDOW_S * (1 + np.arange(len(values)))
    return times, np.asarray(values, dtype=float)


class TestScoreRecovery:
    def test_breach_then_sustained_recovery(self):
        # SLO 100 ms: breach for 3 windows, then clean to the horizon.
        times, values = _series([50, 50, 150, 150, 150, 60, 60, 60, 60])
        score = score_recovery(times, values, 4.0, 100.0, sustain_windows=3)
        assert score.detected_at_s == 6.0
        assert score.detection_s == 2.0
        assert score.recovered_at_s == 12.0
        assert score.recovery_s == 8.0
        assert score.slo_violation_s == 3 * WINDOW_S
        assert score.recovered

    def test_isolated_later_breach_does_not_revoke_recovery(self):
        # A single post-recovery spike (co-tenant burst) adds violation
        # width but keeps the recovery point.
        times, values = _series(
            [150, 150, 60, 60, 60, 60, 150, 60, 60, 60]
        )
        score = score_recovery(times, values, 0.0, 100.0, sustain_windows=3)
        assert score.recovered_at_s == 6.0
        assert score.slo_violation_s == 3 * WINDOW_S

    def test_never_breached(self):
        times, values = _series([50, 60, 70])
        score = score_recovery(times, values, 0.0, 100.0)
        assert score.detected_at_s is None
        assert score.recovered_at_s is None
        assert score.detection_s is None
        assert score.recovery_s is None
        assert score.slo_violation_s == 0.0
        assert not score.recovered

    def test_never_recovered(self):
        times, values = _series([50, 150, 150, 150, 150])
        score = score_recovery(times, values, 0.0, 100.0, sustain_windows=3)
        assert score.detected_at_s == 4.0
        assert score.recovered_at_s is None
        assert score.slo_violation_s == 4 * WINDOW_S

    def test_tail_shorter_than_sustain_is_not_recovery(self):
        # Only 2 clean windows after the breach: sustain=3 says no.
        times, values = _series([150, 60, 60])
        score = score_recovery(times, values, 0.0, 100.0, sustain_windows=3)
        assert score.recovered_at_s is None

    def test_windows_before_the_fault_are_ignored(self):
        times, values = _series([500, 500, 50, 150, 50, 50, 50])
        score = score_recovery(times, values, 5.0, 100.0, sustain_windows=2)
        # The pre-fault breaches at t=2,4 do not count.
        assert score.detected_at_s == 8.0
        assert score.slo_violation_s == 1 * WINDOW_S

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            score_recovery([1.0], [1.0], 0.0, slo_ms=0.0)
        with pytest.raises(ConfigurationError):
            score_recovery([1.0], [1.0], 0.0, 100.0, sustain_windows=0)
        with pytest.raises(ConfigurationError):
            score_recovery([1.0, 2.0], [1.0], 0.0, 100.0)

    def test_to_dict_is_plain_data(self):
        times, values = _series([150, 60, 60, 60])
        data = score_recovery(
            times, values, 0.0, 100.0, sustain_windows=3
        ).to_dict()
        assert data["recovered"] is True
        assert data["detection_s"] == data["detected_at_s"]


def _result(core_s, requests):
    billing = {
        "kind": "billing",
        "domains": {
            "web-vm": {"capacity_core_s": core_s, "memory_gb_s": core_s},
        },
    }
    return SimpleNamespace(
        control_reports={"billing": billing},
        requests_completed=requests,
    )


class TestBillingDelta:
    def test_same_bill_fewer_requests_costs_more_per_kilorequest(self):
        # Reservation billing: the watch-only run pays the same bill
        # for fewer completed requests.
        delta = billing_delta(_result(1000.0, 5000), _result(1000.0, 3000))
        assert delta["delta_usd"] == pytest.approx(0.0)
        assert (
            delta["recovered_usd_per_kilorequest"]
            < delta["baseline_usd_per_kilorequest"]
        )

    def test_zero_requests_prices_as_infinite(self):
        delta = billing_delta(_result(1000.0, 100), _result(1000.0, 0))
        assert delta["baseline_usd_per_kilorequest"] == float("inf")

    def test_missing_billing_rejected(self):
        bare = SimpleNamespace(control_reports={}, requests_completed=1)
        with pytest.raises(ConfigurationError):
            billing_delta(bare, _result(1.0, 1))
