"""Tests for fault actuators (save/restore against a live testbed)."""

from repro.experiments.scenarios import scenario
from repro.experiments.testbed import build_testbed
from repro.faults.injectors import (
    CapTheftInjector,
    Dom0SaturateInjector,
    DiskDegradeInjector,
    MarkerInjector,
    NicDegradeInjector,
    ServerCrashInjector,
    build_injector,
)
from repro.faults.spec import FaultSpec
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def _hypervisor():
    spec = scenario("virtualized", "browsing", duration_s=30.0)
    sim = Simulator()
    streams = RandomStreams(seed=spec.seed)
    testbed = build_testbed(sim, streams, spec)
    return testbed, testbed.hypervisor


class TestServerCrash:
    def test_collapse_and_restore(self):
        _, hypervisor = _hypervisor()
        before = hypervisor.scheduler.total_cores
        injector = ServerCrashInjector(hypervisor, residual_fraction=0.05)
        injector.inject()
        assert hypervisor.scheduler.total_cores == before * 0.05
        injector.clear()
        assert hypervisor.scheduler.total_cores == before

    def test_clear_without_inject_is_a_noop(self):
        _, hypervisor = _hypervisor()
        before = hypervisor.scheduler.total_cores
        ServerCrashInjector(hypervisor, 0.05).clear()
        assert hypervisor.scheduler.total_cores == before


class TestDegrade:
    def test_disk_bandwidth_divided_latency_multiplied(self):
        _, hypervisor = _hypervisor()
        disk = hypervisor.server.disk
        before = (
            disk.read_bandwidth_bps,
            disk.write_bandwidth_bps,
            disk.access_latency_s,
        )
        injector = DiskDegradeInjector(hypervisor.server, factor=8.0)
        injector.inject()
        assert disk.read_bandwidth_bps == before[0] / 8.0
        assert disk.write_bandwidth_bps == before[1] / 8.0
        assert disk.access_latency_s == before[2] * 8.0
        injector.clear()
        assert (
            disk.read_bandwidth_bps,
            disk.write_bandwidth_bps,
            disk.access_latency_s,
        ) == before

    def test_nic_bandwidth_divided(self):
        _, hypervisor = _hypervisor()
        nic = hypervisor.server.nic
        before = nic.bandwidth_bps
        injector = NicDegradeInjector(hypervisor.server, factor=4.0)
        injector.inject()
        assert nic.bandwidth_bps == before / 4.0
        injector.clear()
        assert nic.bandwidth_bps == before


class TestCapTheft:
    def test_steal_and_restore(self):
        _, hypervisor = _hypervisor()
        domain = hypervisor.domain("web-vm")
        before = domain.cap_cores
        injector = CapTheftInjector(hypervisor, "web-vm", stolen_cap=0.25)
        injector.inject()
        assert hypervisor.domain("web-vm").cap_cores == 0.25
        injector.clear()
        assert hypervisor.domain("web-vm").cap_cores == before

    def test_clear_defers_to_a_controller_that_reacted(self):
        # An elastic controller re-raised the cap mid-fault: the clear
        # must not silently undo its recovery.
        _, hypervisor = _hypervisor()
        injector = CapTheftInjector(hypervisor, "web-vm", stolen_cap=0.25)
        injector.inject()
        hypervisor.set_cap_cores(hypervisor.domain("web-vm"), 1.5)
        injector.clear()
        assert hypervisor.domain("web-vm").cap_cores == 1.5


class TestDom0Saturate:
    def test_park_and_unpark_workers(self):
        _, hypervisor = _hypervisor()
        before = hypervisor.dom0.active_workers
        injector = Dom0SaturateInjector(hypervisor, extra_workers=8)
        injector.inject()
        assert hypervisor.dom0.active_workers == before + 8
        injector.clear()
        assert hypervisor.dom0.active_workers == before


class TestDispatch:
    def test_build_injector_covers_every_kind(self):
        testbed, hypervisor = _hypervisor()
        expected = {
            "crash": ServerCrashInjector,
            "degrade_disk": DiskDegradeInjector,
            "degrade_nic": NicDegradeInjector,
            "cap_theft": CapTheftInjector,
            "dom0_saturate": Dom0SaturateInjector,
            "flash_crowd": MarkerInjector,
        }
        streams = RandomStreams(seed=1)
        for kind, klass in expected.items():
            spec = FaultSpec(kind=kind, at_s=10.0)
            injector = build_injector(
                spec, hypervisor, testbed.deployment, streams.stream
            )
            assert isinstance(injector, klass), kind

    def test_marker_injector_is_inert(self):
        marker = MarkerInjector()
        marker.inject()
        marker.clear()
