"""Shared fixtures for the test suite.

The four core experiment runs (virtualized/bare-metal x browse/bid) are
expensive relative to unit tests, so they are produced once per test
session through the runner's memoizing cache and shared by every
integration test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import run_scenario_cached
from repro.experiments.scenarios import scenario
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Integration-run length: long enough for warm-up plus stable means,
#: short enough to keep the suite fast.
INTEGRATION_DURATION_S = 240.0


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=77)


def _core_run(environment: str, composition: str):
    return run_scenario_cached(
        scenario(environment, composition, duration_s=INTEGRATION_DURATION_S)
    )


@pytest.fixture(scope="session")
def virt_browse_result():
    return _core_run("virtualized", "browsing")


@pytest.fixture(scope="session")
def virt_bid_result():
    return _core_run("virtualized", "bidding")


@pytest.fixture(scope="session")
def bare_browse_result():
    return _core_run("bare-metal", "browsing")


@pytest.fixture(scope="session")
def bare_bid_result():
    return _core_run("bare-metal", "bidding")
