"""Fast-path engine semantics: inlined run_until, compaction, bookkeeping.

The optimized run loop must be observationally identical to the simple
peek/step formulation the engine started with; these tests pin that
equivalence plus the event-queue invariants the fast path relies on
(dead-entry accounting, compaction order preservation, cancellation-
heavy bookkeeping).
"""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


def _noop():
    pass


def reference_run_until(sim: Simulator, end_time: float) -> None:
    """The seed engine's loop: peek, bounds-check, step."""
    while True:
        next_time = sim._queue.peek_time()
        if next_time is None or next_time > end_time:
            break
        sim.step()
    sim.now = end_time


def _build_schedule(sim: Simulator, log: list) -> None:
    """A mixed workload: ties, priorities, cancellations, re-scheduling."""
    for i in range(50):
        sim.schedule(0.1 * (i % 7), log.append, ("a", i), priority=5 + i % 3)
    for i in range(50):
        event = sim.schedule(0.05 * i, log.append, ("b", i))
        if i % 3 == 0:
            sim.cancel(event)
    # Same-time ties must fire in scheduling order.
    for i in range(10):
        sim.schedule(1.0, log.append, ("tie", i))

    def reschedule():
        log.append(("resched",))
        sim.schedule(0.5, log.append, ("late",))

    sim.schedule(0.2, reschedule)


class TestRunUntilEquivalence:
    def test_same_firing_order_as_reference_loop(self):
        fast_log, ref_log = [], []
        fast, ref = Simulator(), Simulator()
        _build_schedule(fast, fast_log)
        _build_schedule(ref, ref_log)

        fast.run_until(2.0)
        reference_run_until(ref, 2.0)

        assert fast_log == ref_log
        assert fast.events_fired == ref.events_fired
        assert fast.now == ref.now == 2.0
        assert fast.pending_events == ref.pending_events

    def test_events_beyond_horizon_stay_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.pending_events == 1
        sim.run_until(4.0)
        assert fired == [1, 3]

    def test_stop_inside_callback_halts_loop(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock stays at the stopping event

    def test_events_fired_visible_after_run(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), _noop)
        sim.run_until(10.0)
        assert sim.events_fired == 5


class TestHeapCompaction:
    def test_compaction_triggered_by_cancellation_pressure(self):
        queue = EventQueue()
        keep = [queue.push(float(i), _noop) for i in range(10)]
        victims = [queue.push(1000.0 + i, _noop) for i in range(200)]
        for event in victims:
            event.cancel()
            queue.note_cancelled(event)
        assert queue.compactions >= 1
        # Invariant: dead entries never exceed the compaction threshold
        # or the live count for long.
        assert queue.dead_entries <= max(
            EventQueue.COMPACT_MIN_DEAD, len(queue)
        )
        assert len(queue) == len(keep)

    def test_compaction_preserves_time_priority_seq_order(self):
        queue = EventQueue()
        events = []
        # Interleave priorities and ties so ordering is non-trivial.
        for i in range(300):
            events.append(
                queue.push(float(i % 13), _noop, priority=i % 5)
            )
        for i, event in enumerate(events):
            if i % 2 == 0:
                event.cancel()
                queue.note_cancelled(event)
        queue.compact()
        expected = sorted(
            (e for e in events if not e.cancelled),
            key=lambda e: e.sort_key(),
        )
        popped = [queue.pop() for _ in range(len(queue))]
        assert popped == expected

    def test_explicit_compact_on_clean_queue_is_safe(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        queue.compact()
        assert len(queue) == 1
        assert queue.pop().time == 1.0


class TestCancellationBookkeeping:
    def test_note_cancelled_is_idempotent(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        victim = queue.push(2.0, _noop)
        victim.cancel()
        queue.note_cancelled(victim)
        queue.note_cancelled(victim)  # a second holder of the handle
        assert len(queue) == 1

    def test_unnoted_cancellation_corrects_len_on_discard(self):
        # Regression: event.cancel() without note_cancelled used to leave
        # len() overcounting forever.
        queue = EventQueue()
        victim = queue.push(1.0, _noop)
        survivor = queue.push(2.0, _noop)
        victim.cancel()  # behind the queue's back
        assert queue.pop() is survivor  # discard fixes the live count
        assert len(queue) == 0

    def test_unnoted_cancellation_corrected_by_peek(self):
        queue = EventQueue()
        victim = queue.push(1.0, _noop)
        queue.push(5.0, _noop)
        victim.cancel()
        assert queue.peek_time() == 5.0
        assert len(queue) == 1

    def test_unnoted_cancellation_corrected_by_compact(self):
        queue = EventQueue()
        victims = [queue.push(float(i), _noop) for i in range(10)]
        for event in victims:
            event.cancel()  # never noted
        queue.compact()
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_cancellation_heavy_workload_drains_clean(self):
        # Burst-wave pattern: re-arm timers constantly, cancelling the
        # previous one each time.
        sim = Simulator()
        fired = []
        pending = None
        for i in range(500):
            if pending is not None:
                sim.cancel(pending)
            pending = sim.schedule(1000.0 + i, fired.append, i)
            sim.schedule(0.001 * (i + 1), _noop)
        sim.run_until(1.0)
        assert fired == []  # all far-future timers were cancelled but one
        assert sim.pending_events == 1
        sim.run_until(2000.0)
        assert fired == [499]
        assert sim.pending_events == 0
        assert sim._queue.dead_entries == 0

    def test_pop_ready_leaves_future_events(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        queue.push(5.0, _noop)
        assert queue.pop_ready(2.0).time == 1.0
        assert queue.pop_ready(2.0) is None
        assert len(queue) == 1  # the 5.0 event was not consumed
        assert queue.pop_ready(10.0).time == 5.0

    def test_pop_ready_discards_cancelled_heads(self):
        queue = EventQueue()
        victim = queue.push(1.0, _noop)
        survivor = queue.push(2.0, _noop)
        victim.cancel()
        queue.note_cancelled(victim)
        assert queue.pop_ready(10.0) is survivor
        assert queue.dead_entries == 0

    def test_pop_empty_still_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()
