"""Unit tests for periodic processes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.process import PeriodicProcess


class TestPeriodicProcess:
    def test_fires_at_aligned_ticks(self, sim):
        ticks = []
        PeriodicProcess(sim, 2.0, ticks.append).start()
        sim.run_until(10.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_explicit_start_time(self, sim):
        ticks = []
        PeriodicProcess(sim, 2.0, ticks.append, start=1.0).start()
        sim.run_until(6.0)
        assert ticks == [1.0, 3.0, 5.0]

    def test_stop_halts_ticks(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append).start()
        sim.schedule(3.5, process.stop)
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_tick_counter(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda t: None).start()
        sim.run_until(5.0)
        assert process.ticks == 5

    def test_no_drift_with_slow_callbacks(self, sim):
        # Callback schedules further work; tick times remain on-grid.
        ticks = []

        def callback(t):
            ticks.append(t)
            sim.schedule(0.3, lambda: None)

        PeriodicProcess(sim, 1.0, callback).start()
        sim.run_until(4.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0]

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            PeriodicProcess(sim, 0.0, lambda t: None)

    def test_start_is_idempotent(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, ticks.append)
        process.start()
        process.start()
        sim.run_until(2.0)
        assert ticks == [1.0, 2.0]

    def test_running_flag(self, sim):
        process = PeriodicProcess(sim, 1.0, lambda t: None)
        assert not process.running
        process.start()
        assert process.running
        process.stop()
        assert not process.running
