"""Unit and property tests for the distribution samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.distributions import (
    Constant,
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    LogNormal,
    Mixture,
    ParetoBounded,
    TruncatedNormal,
    Uniform,
    distribution_from_spec,
)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestConstant:
    def test_sample_is_value(self, rng):
        assert Constant(3.5).sample(rng) == 3.5

    def test_mean(self):
        assert Constant(2.0).mean() == 2.0

    def test_deterministic_alias(self):
        assert Deterministic is Constant


class TestExponential:
    def test_sample_mean_converges(self, rng):
        dist = Exponential(mean=4.0)
        samples = dist.sample_many(rng, 20000)
        assert abs(samples.mean() - 4.0) < 0.15

    def test_samples_positive(self, rng):
        samples = Exponential(1.0).sample_many(rng, 1000)
        assert (samples >= 0).all()

    def test_invalid_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)


class TestUniform:
    def test_bounds_respected(self, rng):
        dist = Uniform(2.0, 5.0)
        samples = dist.sample_many(rng, 1000)
        assert samples.min() >= 2.0
        assert samples.max() <= 5.0

    def test_mean(self):
        assert Uniform(2.0, 4.0).mean() == 3.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Uniform(5.0, 2.0)


class TestTruncatedNormal:
    def test_floor_respected(self, rng):
        dist = TruncatedNormal(mean=0.5, std=1.0, floor=0.0)
        samples = np.array([dist.sample(rng) for _ in range(2000)])
        assert (samples >= 0).all()

    def test_zero_std_returns_mean(self, rng):
        assert TruncatedNormal(3.0, 0.0).sample(rng) == 3.0

    def test_negative_std_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedNormal(1.0, -0.5)


class TestLogNormal:
    def test_mean_parameterization(self, rng):
        dist = LogNormal(mean=10.0, cv=0.5)
        samples = dist.sample_many(rng, 50000)
        assert abs(samples.mean() - 10.0) / 10.0 < 0.03

    def test_cv_parameterization(self, rng):
        dist = LogNormal(mean=10.0, cv=0.5)
        samples = dist.sample_many(rng, 50000)
        cv = samples.std() / samples.mean()
        assert abs(cv - 0.5) < 0.05

    def test_zero_cv_degenerates_to_constant(self, rng):
        assert LogNormal(mean=7.0, cv=0.0).sample(rng) == 7.0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            LogNormal(mean=-1.0)


class TestParetoBounded:
    def test_bounds_respected(self, rng):
        dist = ParetoBounded(alpha=1.2, low=1.0, high=100.0)
        samples = dist.sample_many(rng, 5000)
        assert samples.min() >= 1.0
        assert samples.max() <= 100.0

    def test_analytic_mean_matches_samples(self, rng):
        dist = ParetoBounded(alpha=1.5, low=2.0, high=50.0)
        samples = dist.sample_many(rng, 200000)
        assert abs(samples.mean() - dist.mean()) / dist.mean() < 0.02

    def test_alpha_one_mean(self, rng):
        dist = ParetoBounded(alpha=1.0, low=1.0, high=10.0)
        samples = dist.sample_many(rng, 200000)
        assert abs(samples.mean() - dist.mean()) / dist.mean() < 0.02

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ParetoBounded(alpha=1.0, low=5.0, high=2.0)


class TestErlang:
    def test_mean(self, rng):
        dist = Erlang(k=3, mean=6.0)
        samples = dist.sample_many(rng, 50000)
        assert abs(samples.mean() - 6.0) / 6.0 < 0.03

    def test_lower_cv_than_exponential(self, rng):
        erlang = Erlang(k=4, mean=1.0).sample_many(rng, 50000)
        expo = Exponential(1.0).sample_many(rng, 50000)
        assert erlang.std() < expo.std()

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            Erlang(k=0, mean=1.0)


class TestEmpirical:
    def test_samples_from_support(self, rng):
        dist = Empirical([1.0, 2.0, 3.0], [1, 1, 2])
        samples = dist.sample_many(rng, 500)
        assert set(np.unique(samples)) <= {1.0, 2.0, 3.0}

    def test_mean_weighted(self):
        dist = Empirical([0.0, 10.0], [3, 1])
        assert dist.mean() == 2.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Empirical([1.0], [1, 2])

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            Empirical([1.0, 2.0], [1, -1])


class TestMixture:
    def test_mean_is_weighted(self):
        mixture = Mixture([Constant(0.0), Constant(10.0)], [1, 3])
        assert mixture.mean() == 7.5

    def test_sampling_uses_components(self, rng):
        mixture = Mixture([Constant(1.0), Constant(2.0)], [1, 1])
        samples = {mixture.sample(rng) for _ in range(100)}
        assert samples == {1.0, 2.0}


class TestSpecBuilder:
    @pytest.mark.parametrize(
        "spec, expected_type",
        [
            ({"kind": "constant", "value": 2.0}, Constant),
            ({"kind": "exponential", "mean": 1.0}, Exponential),
            ({"kind": "uniform", "low": 0.0, "high": 1.0}, Uniform),
            ({"kind": "lognormal", "mean": 1.0, "cv": 0.3}, LogNormal),
            ({"kind": "normal", "mean": 1.0, "std": 0.1}, TruncatedNormal),
            ({"kind": "pareto", "alpha": 1.1, "low": 1, "high": 9}, ParetoBounded),
            ({"kind": "erlang", "k": 2, "mean": 3.0}, Erlang),
            (
                {"kind": "empirical", "values": [1, 2], "weights": [1, 1]},
                Empirical,
            ),
        ],
    )
    def test_builds_each_family(self, spec, expected_type):
        assert isinstance(distribution_from_spec(spec), expected_type)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution_from_spec({"kind": "zipf"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution_from_spec({"mean": 1.0})

    def test_missing_parameter_reported(self):
        with pytest.raises(ConfigurationError, match="missing parameter"):
            distribution_from_spec({"kind": "exponential"})


class TestSamplerProperties:
    @given(mean=st.floats(min_value=0.01, max_value=1e6))
    @settings(max_examples=30, deadline=None)
    def test_lognormal_reported_mean(self, mean):
        assert LogNormal(mean=mean, cv=0.4).mean() == pytest.approx(mean)

    @given(
        low=st.floats(min_value=0.1, max_value=10.0),
        span=st.floats(min_value=0.1, max_value=100.0),
        alpha=st.floats(min_value=0.2, max_value=4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_pareto_mean_within_bounds(self, low, span, alpha):
        if abs(alpha - 1.0) < 1e-3:
            alpha += 0.01
        dist = ParetoBounded(alpha=alpha, low=low, high=low + span)
        assert low <= dist.mean() <= low + span

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_samples_never_negative(self, seed):
        rng = np.random.default_rng(seed)
        for dist in (
            Exponential(1.0),
            LogNormal(2.0, 0.8),
            Erlang(2, 1.0),
            TruncatedNormal(0.1, 1.0, floor=0.0),
        ):
            assert dist.sample(rng) >= 0.0
