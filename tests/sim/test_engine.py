"""Unit tests for the simulation engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_schedule_relative_delay(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, 1)
        sim.run_until(10.0)
        assert fired == [1]
        assert sim.now == 10.0

    def test_schedule_at_absolute_time(self, sim):
        times = []
        sim.schedule_at(3.0, lambda: times.append(sim.now))
        sim.run_until(5.0)
        assert times == [3.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SchedulingError):
            sim.schedule_at(4.0, lambda: None)

    def test_pending_events_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_cancel_prevents_firing(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_events == 0

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.pending_events == 0


class TestExecution:
    def test_clock_advances_to_event_times(self, sim):
        observed = []
        sim.schedule(1.0, lambda: observed.append(sim.now))
        sim.schedule(2.5, lambda: observed.append(sim.now))
        sim.run_until(3.0)
        assert observed == [1.0, 2.5]

    def test_run_until_inclusive_of_boundary(self, sim):
        fired = []
        sim.schedule_at(3.0, fired.append, "boundary")
        sim.run_until(3.0)
        assert fired == ["boundary"]

    def test_events_beyond_horizon_stay_pending(self, sim):
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run_until(15.0)
        assert fired == ["late"]

    def test_run_until_backwards_rejected(self, sim):
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_handlers_can_schedule_more_events(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_stop_halts_run(self, sim):
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, fired.append, 2)
        sim.run_until(10.0)
        assert fired == [1]
        # Clock stays at the stop point, not the horizon.
        assert sim.now == 1.0

    def test_events_fired_counter(self, sim):
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run_until(10.0)
        assert sim.events_fired == 4

    def test_run_drains_queue(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b"]

    def test_run_max_events(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_reset_clears_state(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run_until(0.5)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.events_fired == 0

    def test_step_on_empty_queue_returns_false(self, sim):
        assert sim.step() is False
