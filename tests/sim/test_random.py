"""Unit tests for deterministic named random streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(seed=5).stream("x").normal(size=10)
        b = RandomStreams(seed=5).stream("x").normal(size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=5).stream("x").normal(size=10)
        b = RandomStreams(seed=6).stream("x").normal(size=10)
        assert not (a == b).all()

    def test_streams_are_independent_of_creation_order(self):
        forward = RandomStreams(seed=9)
        fa = forward.stream("alpha").normal(size=5)
        fb = forward.stream("beta").normal(size=5)
        backward = RandomStreams(seed=9)
        bb = backward.stream("beta").normal(size=5)
        ba = backward.stream("alpha").normal(size=5)
        assert (fa == ba).all()
        assert (fb == bb).all()

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_new_stream_does_not_perturb_existing(self):
        # The ablation-stability property: draws from "x" are the same
        # whether or not "y" exists.
        lonely = RandomStreams(seed=3)
        expected = lonely.stream("x").normal(size=8)
        crowded = RandomStreams(seed=3)
        crowded.stream("y").normal(size=100)
        observed = crowded.stream("x").normal(size=8)
        assert (expected == observed).all()

    def test_fork_changes_family(self):
        base = RandomStreams(seed=4)
        fork = base.fork(1)
        assert fork.seed != base.seed
        a = base.stream("x").normal(size=5)
        b = fork.stream("x").normal(size=5)
        assert not (a == b).all()

    def test_stream_names_listing(self):
        streams = RandomStreams(seed=1)
        streams.stream("b")
        streams.stream("a")
        assert streams.stream_names() == ["a", "b"]
