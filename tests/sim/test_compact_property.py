"""Property test: heap compaction under cancellation-heavy load.

Drives :class:`~repro.sim.events.EventQueue` (and the engine-level
``Simulator.cancel`` / :func:`~repro.sim.batched.bulk_cancel` paths the
batched engine leans on) through long randomized schedule / cancel /
pop interleavings, checking every observable against a naive reference
queue that re-sorts a plain list.  The point is the bookkeeping the
fast path can silently get wrong: ``len()`` across unnoted vs noted
cancellations, compaction triggering, and total order stability across
``compact()`` rebuilds.
"""

import random

import pytest

from repro.errors import SchedulingError
from repro.sim.batched import bulk_cancel
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class ReferenceQueue:
    """The obviously correct queue: a sorted list, eager deletion."""

    def __init__(self):
        self._entries = []  # (time, priority, seq)
        self._seq = 0

    def push(self, time, priority=10):
        key = (time, priority, self._seq)
        self._seq += 1
        self._entries.append(key)
        self._entries.sort()
        return key

    def cancel(self, key):
        self._entries.remove(key)

    def pop(self):
        return self._entries.pop(0)

    def peek_time(self):
        return self._entries[0][0] if self._entries else None

    def __len__(self):
        return len(self._entries)


def _noop():
    pass


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_queue_matches_reference_under_cancellation_storm(seed):
    rng = random.Random(seed)
    queue = EventQueue()
    reference = ReferenceQueue()
    live = {}  # ref key -> Event
    clock = 0.0

    for step in range(4000):
        action = rng.random()
        if action < 0.45 or not live:
            # Schedule at or after the current clock, occasional ties.
            time = clock + rng.choice([0.0, rng.random(), rng.random() * 10])
            priority = rng.choice([0, 10, 10, 10, 20])
            event = queue.push(time, _noop, (), priority)
            key = reference.push(time, priority)
            live[key] = event
        elif action < 0.85:
            # Cancel a random batch — the burst-wave pattern.  Half the
            # batches go through note_cancelled (the accounted path),
            # half cancel behind the queue's back (lazy discard).
            batch = rng.sample(
                sorted(live), k=min(len(live), rng.randint(1, 64))
            )
            accounted = rng.random() < 0.5
            for key in batch:
                event = live.pop(key)
                event.cancel()
                if accounted:
                    queue.note_cancelled(event)
                reference.cancel(key)
        else:
            # Pop the earliest live event from both; order must agree.
            if len(reference) == 0:
                # Anything left in the heap is cancelled debris.
                with pytest.raises(SchedulingError):
                    queue.pop()
                continue
            event = queue.pop()
            key = reference.pop()
            assert (event.time, event.priority) == (key[0], key[1])
            assert live.pop(key) is event
            clock = max(clock, event.time)

        # Invariants after every operation.  Unnoted cancellations are
        # documented to count as live until they surface, so len() may
        # temporarily exceed the reference; a compact() reconciles the
        # count exactly, and peeking always skips the dead.
        assert len(queue) >= len(reference), f"live count lost at {step}"
        assert queue.peek_time() == reference.peek_time()
        if step % 97 == 0:
            queue.compact()
            assert len(queue) == len(reference), (
                f"live count drifted at {step}"
            )
            assert queue.dead_entries == 0

    # Drain completely: total order must match to the end.
    queue.compact()
    assert len(queue) == len(reference)
    while len(reference):
        event = queue.pop()
        key = reference.pop()
        assert (event.time, event.priority) == (key[0], key[1])
    with pytest.raises(SchedulingError):
        queue.pop()


def test_note_cancelled_triggers_compaction():
    queue = EventQueue()
    events = [queue.push(float(i), _noop, ()) for i in range(200)]
    # Cancel enough that dead (noted) entries outnumber the live rest.
    doomed = events[: EventQueue.COMPACT_MIN_DEAD + 40]
    for event in doomed:
        event.cancel()
        queue.note_cancelled(event)
    assert queue.compactions >= 1
    # Notes after the triggered compaction may re-accumulate a few dead
    # entries, but never past the trigger threshold again.
    assert queue.dead_entries <= EventQueue.COMPACT_MIN_DEAD
    assert len(queue) == 200 - len(doomed)
    # Survivors still pop in exact schedule order.
    times = [queue.pop().time for _ in range(len(queue))]
    assert times == sorted(times)


def test_note_cancelled_is_idempotent_and_guards_live_events():
    queue = EventQueue()
    event = queue.push(1.0, _noop, ())
    with pytest.raises(SchedulingError):
        queue.note_cancelled(event)
    event.cancel()
    queue.note_cancelled(event)
    queue.note_cancelled(event)  # second note must not double-count
    assert len(queue) == 0
    assert queue.dead_entries == 1


def test_compact_accounts_unnoted_cancellations():
    queue = EventQueue()
    events = [queue.push(float(i), _noop, ()) for i in range(100)]
    for event in events[:30]:
        event.cancel()  # behind the queue's back: still counted live
    assert len(queue) == 100
    queue.compact()
    assert len(queue) == 70
    assert queue.dead_entries == 0


@pytest.mark.parametrize("seed", [11, 12])
def test_bulk_cancel_through_simulator(seed):
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(rng.random() * 100, fired.append, i)
        for i in range(3000)
    ]
    survivors = set(range(3000))
    # Several storms, enough each time that compaction triggers.
    for _ in range(4):
        batch = rng.sample(sorted(survivors), k=700)
        survivors -= set(batch)
        cancelled = bulk_cancel(sim, [events[i] for i in batch])
        assert cancelled == 700
        # Re-cancelling is a no-op (bulk_cancel skips dead events).
        assert bulk_cancel(sim, [events[i] for i in batch]) == 0
    assert sim._queue.compactions >= 1
    sim.run_until(200.0)
    assert sorted(fired) == sorted(survivors)
