"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.sim.events import Event, EventQueue


def _noop():
    pass


class TestEventOrdering:
    def test_pop_returns_earliest(self):
        q = EventQueue()
        q.push(2.0, _noop)
        q.push(1.0, _noop)
        q.push(3.0, _noop)
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0
        assert q.pop().time == 3.0

    def test_ties_fire_in_scheduling_order(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, order.append, (i,))
        while q:
            event = q.pop()
            event.fn(*event.args)
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties_before_sequence(self):
        q = EventQueue()
        first = q.push(1.0, _noop, priority=20)
        second = q.push(1.0, _noop, priority=5)
        assert q.pop() is second
        assert q.pop() is first

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_pop_order_is_sorted_for_any_times(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, _noop)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(times)


class TestEventQueueBookkeeping:
    def test_len_counts_live_events(self):
        q = EventQueue()
        assert len(q) == 0
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        q.push(1.0, _noop)
        assert q

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SchedulingError):
            q.pop()

    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        victim = q.push(1.0, _noop)
        survivor = q.push(2.0, _noop)
        victim.cancel()
        q.note_cancelled(victim)
        assert len(q) == 1
        assert q.pop() is survivor

    def test_note_cancelled_requires_cancelled_event(self):
        q = EventQueue()
        event = q.push(1.0, _noop)
        with pytest.raises(SchedulingError):
            q.note_cancelled(event)

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        victim = q.push(1.0, _noop)
        q.push(5.0, _noop)
        victim.cancel()
        q.note_cancelled(victim)
        assert q.peek_time() == 5.0

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_clear_drops_everything(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.clear()
        assert len(q) == 0
        assert q.peek_time() is None


class TestEvent:
    def test_sort_key_structure(self):
        event = Event(1.5, _noop, (), priority=3, seq=7)
        assert event.sort_key() == (1.5, 3, 7)

    def test_cancel_sets_flag(self):
        event = Event(1.0, _noop)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled
