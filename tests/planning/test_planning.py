"""Unit tests for capacity planning and SLA prediction."""

import numpy as np
import pytest

from repro.analysis.ratios import ResourceVector
from repro.errors import ConfigurationError, InsufficientDataError
from repro.hardware.server import ServerSpec
from repro.planning.capacity import (
    ResourceCapacity,
    plan_capacity,
    utilization_at,
)
from repro.planning.predictor import project_workload
from repro.planning.sla import SlaTarget, evaluate_sla


@pytest.fixture
def capacity():
    return ResourceCapacity.from_server_spec(ServerSpec.paper_testbed())


@pytest.fixture
def demand():
    # Roughly the calibrated virtualized web-tier demand per 2 s sample.
    return ResourceVector(
        cpu_cycles=700e6, mem_used_mb=600.0, disk_kb=400.0, net_kb=5000.0
    )


class TestResourceCapacity:
    def test_paper_server_capacity(self, capacity):
        assert capacity.cpu_cycles == pytest.approx(8 * 2.8e9 * 2.0)
        assert capacity.mem_used_mb == pytest.approx(32 * 1024)

    def test_all_positive(self, capacity):
        for value in capacity.as_dict().values():
            assert value > 0


class TestUtilization:
    def test_linear_scaling(self, capacity, demand):
        at_1000 = utilization_at(demand, 1000, 1000, capacity)
        at_2000 = utilization_at(demand, 1000, 2000, capacity)
        for resource in at_1000:
            assert at_2000[resource] == pytest.approx(
                2 * at_1000[resource]
            )

    def test_paper_operating_point_is_light(self, capacity, demand):
        utilizations = utilization_at(demand, 1000, 1000, capacity)
        # The paper's figures show no saturation anywhere.
        assert max(utilizations.values()) < 0.30

    def test_invalid_clients_rejected(self, capacity, demand):
        with pytest.raises(ConfigurationError):
            utilization_at(demand, 0, 100, capacity)


class TestCapacityPlan:
    def test_bottleneck_identified(self, capacity, demand):
        plan = plan_capacity(demand, 1000, 1000, capacity)
        assert plan.bottleneck in plan.utilizations
        assert plan.bottleneck_utilization == max(
            plan.utilizations.values()
        )

    def test_max_clients_respects_headroom(self, capacity, demand):
        plan = plan_capacity(demand, 1000, 1000, capacity, headroom=0.8)
        at_max = utilization_at(demand, 1000, plan.max_clients, capacity)
        assert max(at_max.values()) <= 0.8 + 1e-6

    def test_feasibility_flag(self, capacity, demand):
        light = plan_capacity(demand, 1000, 1000, capacity)
        assert light.feasible
        heavy = plan_capacity(demand, 1000, 10_000_000, capacity)
        assert not heavy.feasible

    def test_invalid_headroom_rejected(self, capacity, demand):
        with pytest.raises(ConfigurationError):
            plan_capacity(demand, 1000, 1000, capacity, headroom=0.0)


class TestSla:
    def test_compliant_when_quantile_below_threshold(self):
        rng = np.random.default_rng(0)
        times = rng.exponential(0.01, size=1000)
        evaluation = evaluate_sla(times, SlaTarget(threshold_s=0.5))
        assert evaluation.compliant
        assert evaluation.margin_s > 0

    def test_violation_detected(self):
        times = [1.0] * 100
        evaluation = evaluate_sla(times, SlaTarget(threshold_s=0.5))
        assert not evaluation.compliant
        assert evaluation.violation_fraction == 1.0

    def test_quantile_respected(self):
        times = [0.1] * 94 + [2.0] * 6  # p95 above 0.5 barely
        evaluation = evaluate_sla(
            times, SlaTarget(threshold_s=0.5, quantile=0.95)
        )
        assert not evaluation.compliant

    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientDataError):
            evaluate_sla([0.1] * 5, SlaTarget(threshold_s=1.0))

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError):
            SlaTarget(threshold_s=0.0)
        with pytest.raises(ConfigurationError):
            SlaTarget(threshold_s=1.0, quantile=1.5)


class TestProjection:
    def test_response_time_grows_with_load(self, capacity, demand):
        low = project_workload(demand, 1000, 0.01, 2000, capacity)
        high = project_workload(demand, 1000, 0.01, 50_000, capacity)
        assert (
            high.predicted_response_time_s
            >= low.predicted_response_time_s
        )

    def test_sla_prediction_flips_at_saturation(self, capacity, demand):
        target = SlaTarget(threshold_s=0.5)
        light = project_workload(
            demand, 1000, 0.01, 2000, capacity, sla_target=target
        )
        assert light.sla_predicted_compliant
        crushed = project_workload(
            demand, 1000, 0.01, 10_000_000, capacity, sla_target=target
        )
        assert not crushed.sla_predicted_compliant

    def test_projection_without_sla(self, capacity, demand):
        projection = project_workload(demand, 1000, 0.01, 2000, capacity)
        assert projection.sla_predicted_compliant is None

    def test_invalid_base_response_rejected(self, capacity, demand):
        with pytest.raises(ConfigurationError):
            project_workload(demand, 1000, 0.0, 2000, capacity)

    def test_utilizations_exposed(self, capacity, demand):
        projection = project_workload(demand, 1000, 0.01, 2000, capacity)
        assert set(projection.utilizations) == {
            "cpu_cycles",
            "mem_used_mb",
            "disk_kb",
            "net_kb",
        }
