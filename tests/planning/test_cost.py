"""Unit tests for capacity-bill pricing and $-vs-SLA scoring."""

import pytest

from repro.errors import ConfigurationError
from repro.planning.cost import CostModel, score_cost_sla


BILLING = {
    "kind": "billing",
    "domains": {
        "web-vm": {"capacity_core_s": 3600.0, "memory_gb_s": 7200.0},
        "batch-vm": {"capacity_core_s": 7200.0, "memory_gb_s": 14400.0},
    },
}


class TestCostModel:
    def test_domain_cost(self):
        model = CostModel(usd_per_core_hour=0.04, usd_per_gb_hour=0.005)
        cost = model.domain_cost_usd(BILLING["domains"]["web-vm"])
        assert cost == pytest.approx(1 * 0.04 + 2 * 0.005)

    def test_run_cost_accepts_envelope_and_raw_forms(self):
        model = CostModel()
        from_envelope = model.run_cost_usd(BILLING)
        from_raw = model.run_cost_usd(BILLING["domains"])
        assert from_envelope == from_raw
        assert from_envelope["total"] == pytest.approx(
            from_envelope["web-vm"] + from_envelope["batch-vm"]
        )

    def test_negative_prices_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(usd_per_core_hour=-1.0)


class TestScoreCostSla:
    def test_compliant_run(self):
        score = score_cost_sla(
            BILLING, p95_ms=40.0, slo_ms=50.0, requests_completed=10_000
        )
        assert score.sla_met
        assert score.slo_margin_ms == pytest.approx(10.0)
        assert score.cost_usd > 0
        assert score.usd_per_kilorequest == pytest.approx(
            score.cost_usd / 10.0
        )

    def test_violating_run(self):
        score = score_cost_sla(BILLING, p95_ms=80.0, slo_ms=50.0)
        assert not score.sla_met
        assert score.usd_per_kilorequest == float("inf")

    def test_bad_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            score_cost_sla(BILLING, p95_ms=10.0, slo_ms=0.0)

    def test_scores_a_real_fleet_run(self):
        from repro.experiments.runner import run_scenario
        from repro.experiments.scenarios import (
            migration_rebalance_scenario,
        )

        result = run_scenario(
            migration_rebalance_scenario(duration_s=40.0, clients=150)
        )
        score = score_cost_sla(
            result.control_reports["billing"],
            p95_ms=result.p95_response_time_s * 1000.0,
            slo_ms=500.0,
            requests_completed=result.requests_completed,
        )
        assert score.cost_usd > 0
        assert score.usd_per_kilorequest > 0
