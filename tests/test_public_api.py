"""Contract tests for the top-level public API."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_every_all_entry_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing {name}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.hardware",
            "repro.virt",
            "repro.apps",
            "repro.rubis",
            "repro.monitoring",
            "repro.analysis",
            "repro.planning",
            "repro.traffic",
            "repro.experiments",
            "repro.obs",
            "repro.shard",
            "repro.mapreduce",
            "repro.config",
            "repro.cli",
        ],
    )
    def test_subpackage_imports_cleanly(self, module):
        importlib.import_module(module)

    def test_errors_form_one_hierarchy(self):
        from repro import errors

        for name in errors.__dict__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or (
                    obj is errors.ReproError
                )

    def test_docstrings_on_public_symbols(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__"
            and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert undocumented == []
