"""Unit tests for autocorrelation and lag estimation."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    autocorrelation,
    cross_correlation,
    estimate_lag,
)
from repro.errors import AnalysisError, InsufficientDataError


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(0)
        acf = autocorrelation(rng.normal(size=200), max_lag=5)
        assert acf[0] == 1.0

    def test_white_noise_decorrelates(self):
        rng = np.random.default_rng(1)
        acf = autocorrelation(rng.normal(size=5000), max_lag=3)
        assert abs(acf[1]) < 0.05

    def test_ar1_has_geometric_decay(self):
        rng = np.random.default_rng(2)
        phi = 0.8
        x = np.zeros(5000)
        for t in range(1, 5000):
            x[t] = phi * x[t - 1] + rng.normal()
        acf = autocorrelation(x, max_lag=2)
        assert acf[1] == pytest.approx(phi, abs=0.05)
        assert acf[2] == pytest.approx(phi**2, abs=0.07)

    def test_constant_series_rejected(self):
        with pytest.raises(AnalysisError):
            autocorrelation([1.0] * 50, max_lag=2)

    def test_too_short_rejected(self):
        with pytest.raises(InsufficientDataError):
            autocorrelation([1.0, 2.0], max_lag=5)


class TestCrossCorrelation:
    def test_detects_known_shift(self):
        rng = np.random.default_rng(3)
        front = rng.normal(size=500)
        shift = 4
        back = np.roll(front, shift)  # back follows front by 4 samples
        xcorr = cross_correlation(front, back, max_lag=10)
        peak = int(np.argmax(xcorr)) - 10
        assert peak == shift

    def test_symmetric_when_identical(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=300)
        xcorr = cross_correlation(x, x, max_lag=5)
        assert int(np.argmax(xcorr)) == 5  # lag 0
        assert xcorr[5] == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            cross_correlation([1.0, 2.0, 3.0], [1.0, 2.0], max_lag=1)

    def test_constant_series_rejected(self):
        with pytest.raises(AnalysisError):
            cross_correlation([1.0] * 50, list(range(50)), max_lag=2)


class TestEstimateLag:
    def test_positive_lag_means_back_follows(self):
        rng = np.random.default_rng(5)
        front = rng.normal(size=400)
        back = np.roll(front, 3)
        lag = estimate_lag(front, back, max_lag=10, sample_period_s=2.0)
        assert lag.lag_samples == 3
        assert lag.lag_seconds == 6.0
        assert lag.back_follows_front

    def test_negative_lag_detected(self):
        rng = np.random.default_rng(6)
        back = rng.normal(size=400)
        front = np.roll(back, 2)  # front follows back: lag -2
        lag = estimate_lag(front, back, max_lag=10)
        assert lag.lag_samples == -2
        assert not lag.back_follows_front

    def test_correlation_value_in_range(self):
        rng = np.random.default_rng(7)
        front = rng.normal(size=300)
        back = 0.5 * np.roll(front, 1) + 0.5 * rng.normal(size=300)
        lag = estimate_lag(front, back, max_lag=5)
        assert -1.0 <= lag.correlation <= 1.0
