"""Unit tests for the demand-ratio analysis."""

import pytest

from repro.analysis.ratios import (
    RatioReport,
    ResourceVector,
    aggregate_vector,
    demand_vector,
    tier_ratios,
    vm_to_hypervisor_ratios,
)
from repro.errors import AnalysisError
from repro.monitoring.timeseries import TimeSeries, TraceSet


def make_traces(values_by_entity, environment="virtualized"):
    """values_by_entity: {entity: (cpu, ram, disk, net)} constant series."""
    traces = TraceSet(environment, "browsing", 2.0)
    resources = ("cpu_cycles", "mem_used_mb", "disk_kb", "net_kb")
    for entity, values in values_by_entity.items():
        for resource, value in zip(resources, values):
            series = TimeSeries(f"{entity}:{resource}")
            for i in range(40):
                series.append(i * 2.0, value)
            traces.add(entity, resource, series)
    return traces


class TestResourceVector:
    def test_ratio_elementwise(self):
        a = ResourceVector(10.0, 20.0, 30.0, 40.0)
        b = ResourceVector(2.0, 4.0, 5.0, 8.0)
        ratio = a.ratio_to(b)
        assert ratio.cpu_cycles == 5.0
        assert ratio.mem_used_mb == 5.0
        assert ratio.disk_kb == 6.0
        assert ratio.net_kb == 5.0

    def test_zero_denominator_rejected(self):
        a = ResourceVector(1.0, 1.0, 1.0, 1.0)
        b = ResourceVector(1.0, 0.0, 1.0, 1.0)
        with pytest.raises(AnalysisError):
            a.ratio_to(b)

    def test_plus(self):
        a = ResourceVector(1.0, 2.0, 3.0, 4.0)
        total = a.plus(a)
        assert total.net_kb == 8.0


class TestDemandVectors:
    def test_demand_vector_post_warmup_mean(self):
        traces = make_traces({"web": (100.0, 50.0, 10.0, 5.0)})
        vector = demand_vector(traces, "web", warmup_s=30.0)
        assert vector.cpu_cycles == 100.0

    def test_warmup_excluded(self):
        traces = TraceSet("virtualized", "browsing", 2.0)
        for resource in ("cpu_cycles", "mem_used_mb", "disk_kb", "net_kb"):
            series = TimeSeries(resource)
            for i in range(40):
                # Garbage during the first 30 s, then steady 10.0.
                series.append(i * 2.0, 1e9 if i * 2.0 < 30.0 else 10.0)
            traces.add("web", resource, series)
        vector = demand_vector(traces, "web", warmup_s=30.0)
        assert vector.cpu_cycles == 10.0

    def test_aggregate_vector_sums(self):
        traces = make_traces(
            {"web": (100.0, 50.0, 10.0, 5.0), "db": (20.0, 10.0, 2.0, 1.0)}
        )
        total = aggregate_vector(traces, ("web", "db"))
        assert total.cpu_cycles == 120.0

    def test_tier_ratios(self):
        traces = make_traces(
            {"web": (600.0, 300.0, 50.0, 500.0), "db": (100.0, 100.0, 10.0, 10.0)}
        )
        ratio = tier_ratios(traces)
        assert ratio.cpu_cycles == 6.0
        assert ratio.net_kb == 50.0

    def test_vm_to_hypervisor_requires_dom0(self):
        traces = make_traces({"web": (1, 1, 1, 1), "db": (1, 1, 1, 1)})
        with pytest.raises(AnalysisError):
            vm_to_hypervisor_ratios(traces)

    def test_vm_to_hypervisor_ratio(self):
        traces = make_traces(
            {
                "web": (100.0, 50.0, 10.0, 5.0),
                "db": (20.0, 10.0, 2.0, 1.0),
                "dom0": (10.0, 120.0, 24.0, 6.0),
            }
        )
        ratio = vm_to_hypervisor_ratios(traces)
        assert ratio.cpu_cycles == pytest.approx(12.0)
        assert ratio.mem_used_mb == pytest.approx(0.5)
        assert ratio.disk_kb == pytest.approx(0.5)
        assert ratio.net_kb == pytest.approx(1.0)


class TestRatioReport:
    def test_rows_include_relative_error(self):
        report = RatioReport(
            name="R1",
            measured=ResourceVector(6.0, 3.0, 5.0, 50.0),
            paper=ResourceVector(6.11, 3.29, 5.71, 55.56),
        )
        rows = report.rows()
        assert len(rows) == 4
        label, measured, paper, relative = rows[0]
        assert label == "CPU cycles"
        assert relative == pytest.approx(6.0 / 6.11)
