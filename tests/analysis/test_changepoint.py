"""Unit and property tests for level-shift detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.changepoint import (
    count_upward_jumps,
    detect_level_shifts,
    first_jump_time,
)
from repro.errors import ConfigurationError, InsufficientDataError
from repro.monitoring.timeseries import TimeSeries


def step_series(n, step_at, magnitude, noise=1.0, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, noise, size=n)
    values[step_at:] += magnitude
    return values


class TestDetection:
    def test_single_upward_step_found(self):
        values = step_series(100, 50, 40.0)
        shifts = detect_level_shifts(values, min_shift=20.0, window=8)
        assert len(shifts) == 1
        assert shifts[0].upward
        assert abs(shifts[0].index - 50) <= 3
        assert shifts[0].magnitude == pytest.approx(40.0, abs=5.0)

    def test_downward_step_found(self):
        values = step_series(100, 60, -30.0)
        shifts = detect_level_shifts(values, min_shift=15.0, window=8)
        assert len(shifts) == 1
        assert not shifts[0].upward

    def test_two_separated_steps(self):
        values = step_series(200, 60, 50.0)
        values[140:] += 50.0
        shifts = detect_level_shifts(values, min_shift=25.0, window=10)
        assert len(shifts) == 2
        assert [abs(s.index - i) <= 4 for s, i in zip(shifts, (60, 140))]

    def test_no_false_positives_on_noise(self):
        rng = np.random.default_rng(9)
        values = rng.normal(100.0, 3.0, size=300)
        shifts = detect_level_shifts(values, min_shift=30.0, window=10)
        assert shifts == []

    def test_slow_ramp_not_flagged(self):
        # A gentle linear ramp has no step larger than the threshold.
        values = np.linspace(0.0, 30.0, 300)
        shifts = detect_level_shifts(values, min_shift=25.0, window=10)
        assert shifts == []

    def test_uses_timeseries_time_axis(self):
        values = step_series(100, 50, 40.0)
        series = TimeSeries(
            "ram", times=(np.arange(100) * 2.0).tolist(),
            values=values.tolist(),
        )
        shifts = detect_level_shifts(series, min_shift=20.0, window=8)
        assert shifts[0].time_s == pytest.approx(shifts[0].index * 2.0)


class TestHelpers:
    def test_count_upward_jumps(self):
        values = step_series(200, 60, 50.0)
        values[140:] -= 50.0  # one up, one down
        assert count_upward_jumps(values, min_shift=25.0, window=10) == 1

    def test_first_jump_time(self):
        values = step_series(200, 60, 50.0)
        series = TimeSeries(
            "ram", times=(np.arange(200) * 2.0).tolist(),
            values=values.tolist(),
        )
        t = first_jump_time(series, min_shift=25.0, window=10)
        assert t == pytest.approx(120.0, abs=10.0)

    def test_first_jump_time_inf_when_none(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100)
        assert first_jump_time(values, min_shift=50.0) == float("inf")


class TestValidation:
    def test_window_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_level_shifts([1.0] * 50, min_shift=1.0, window=1)

    def test_non_positive_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_level_shifts([1.0] * 50, min_shift=0.0)

    def test_series_too_short_rejected(self):
        with pytest.raises(InsufficientDataError):
            detect_level_shifts([1.0] * 10, min_shift=1.0, window=10)


class TestDetectionProperties:
    @given(
        step_at=st.integers(min_value=25, max_value=75),
        magnitude=st.floats(min_value=30.0, max_value=500.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_clear_steps_always_found(self, step_at, magnitude, seed):
        values = step_series(100, step_at, magnitude, noise=1.0, seed=seed)
        shifts = detect_level_shifts(values, min_shift=magnitude / 2,
                                     window=8)
        upward = [s for s in shifts if s.upward]
        assert len(upward) >= 1
        assert any(abs(s.index - step_at) <= 8 for s in upward)
