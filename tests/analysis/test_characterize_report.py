"""Tests for the one-call characterizer and the text reports.

These run against a real (short) virtualized experiment shared by the
session fixtures.
"""

import pytest

from repro.analysis.characterize import characterize_trace_set
from repro.analysis.report import (
    render_characterization_report,
    render_ratio_table,
)
from repro.analysis.ratios import RatioReport, ResourceVector
from repro.experiments.paper_values import PAPER_R1


@pytest.fixture(scope="module")
def characterization(virt_browse_result):
    return characterize_trace_set(virt_browse_result.traces)


class TestCharacterize:
    def test_all_series_characterized(self, characterization,
                                      virt_browse_result):
        assert set(characterization.series) == set(
            virt_browse_result.traces.keys()
        )

    def test_series_stats_populated(self, characterization):
        item = characterization.series_for("web", "cpu_cycles")
        assert item.stats.mean > 0
        assert item.stats.count > 50

    def test_distribution_fits_where_possible(self, characterization):
        item = characterization.series_for("web", "cpu_cycles")
        assert item.fit is not None
        assert item.fit.family in (
            "normal", "lognormal", "gamma", "weibull", "exponential"
        )

    def test_ram_jumps_found_for_browse_web(self, characterization):
        assert len(characterization.upward_ram_jumps("web")) >= 1

    def test_lag_estimate_present(self, characterization):
        assert characterization.web_db_lag is not None
        assert characterization.web_db_lag.lag_samples >= 0

    def test_ratios_present_for_virtualized(self, characterization):
        assert characterization.tier_ratio is not None
        assert characterization.vm_dom0_ratio is not None
        assert characterization.tier_ratio.cpu_cycles == pytest.approx(
            6.11, rel=0.15
        )

    def test_unknown_series_rejected(self, characterization):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            characterization.series_for("web", "gpu_util")


class TestReports:
    def test_characterization_report_mentions_sections(
        self, characterization
    ):
        text = render_characterization_report(characterization)
        assert "Per-series summary" in text
        assert "RAM step jumps" in text
        assert "Inter-tier lag" in text
        assert "R1" in text and "R2" in text

    def test_ratio_table_renders_rows(self):
        report = RatioReport(
            name="R1 test",
            measured=ResourceVector(6.0, 3.0, 5.0, 50.0),
            paper=PAPER_R1,
        )
        text = render_ratio_table(report)
        assert "R1 test" in text
        assert "CPU cycles" in text
        assert "55.56" in text
