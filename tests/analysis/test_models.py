"""Unit tests for the formal workload models."""

import numpy as np
import pytest

from repro.analysis.models import ARModel, HistogramWorkloadModel, RegimeModel
from repro.errors import AnalysisError, InsufficientDataError


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def ar2_series(rng, n=3000, phi1=0.5, phi2=0.2, mean=100.0):
    x = np.zeros(n)
    for t in range(2, n):
        x[t] = phi1 * x[t - 1] + phi2 * x[t - 2] + rng.normal()
    return x + mean


class TestARModel:
    def test_recovers_ar2_coefficients(self, rng):
        series = ar2_series(rng)
        model = ARModel(order=2).fit(series)
        assert model.coefficients[0] == pytest.approx(0.5, abs=0.06)
        assert model.coefficients[1] == pytest.approx(0.2, abs=0.06)
        assert model.mean == pytest.approx(100.0, abs=1.0)

    def test_fitted_model_is_stationary(self, rng):
        model = ARModel(order=2).fit(ar2_series(rng))
        assert model.is_stationary()

    def test_one_step_rmse_close_to_noise_std(self, rng):
        series = ar2_series(rng)
        model = ARModel(order=2).fit(series)
        assert model.one_step_rmse(series) == pytest.approx(1.0, abs=0.1)

    def test_predict_one_step(self, rng):
        series = ar2_series(rng)
        model = ARModel(order=2).fit(series)
        prediction = model.predict_one_step(series[:-1])
        assert abs(prediction - series[-1]) < 5.0

    def test_simulation_preserves_mean(self, rng):
        model = ARModel(order=2).fit(ar2_series(rng))
        synthetic = model.simulate(5000, rng)
        assert synthetic.mean() == pytest.approx(model.mean, abs=1.0)

    def test_simulation_preserves_autocorrelation(self, rng):
        series = ar2_series(rng)
        model = ARModel(order=2).fit(series)
        synthetic = model.simulate(5000, rng)
        original_acf = np.corrcoef(series[:-1], series[1:])[0, 1]
        synthetic_acf = np.corrcoef(synthetic[:-1], synthetic[1:])[0, 1]
        assert synthetic_acf == pytest.approx(original_acf, abs=0.08)

    def test_unfitted_use_rejected(self):
        with pytest.raises(AnalysisError):
            ARModel(order=1).predict_one_step([1.0, 2.0])

    def test_constant_series_rejected(self):
        with pytest.raises(AnalysisError):
            ARModel(order=1).fit([3.0] * 100)

    def test_short_series_rejected(self):
        with pytest.raises(InsufficientDataError):
            ARModel(order=4).fit([1.0, 2.0, 3.0])


class TestHistogramModel:
    def test_samples_within_observed_range(self, rng):
        data = rng.uniform(10.0, 20.0, size=500)
        model = HistogramWorkloadModel(bins=10).fit(data)
        samples = model.sample(1000, rng)
        assert samples.min() >= 10.0 - 1e-9
        assert samples.max() <= 20.0 + 1e-9

    def test_mean_preserved(self, rng):
        data = rng.normal(50.0, 5.0, size=2000)
        model = HistogramWorkloadModel(bins=30).fit(data)
        assert model.mean() == pytest.approx(50.0, abs=1.0)

    def test_rmse_equals_marginal_std(self, rng):
        data = rng.normal(0.0, 2.0, size=5000)
        model = HistogramWorkloadModel(bins=40).fit(data)
        assert model.one_step_rmse(data) == pytest.approx(2.0, abs=0.15)

    def test_unfitted_sampling_rejected(self, rng):
        with pytest.raises(AnalysisError):
            HistogramWorkloadModel().sample(10, rng)

    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientDataError):
            HistogramWorkloadModel(bins=20).fit([1.0, 2.0])


class TestRegimeModel:
    def regime_series(self, rng, n=2000):
        # Two levels with sticky transitions — like the RAM jumps.
        values = []
        state = 0
        for _ in range(n):
            if rng.uniform() < 0.02:
                state = 1 - state
            values.append(rng.normal(100.0 if state == 0 else 200.0, 5.0))
        return np.array(values)

    def test_recovers_two_levels(self, rng):
        model = RegimeModel().fit(self.regime_series(rng))
        low, high = sorted(model.means)
        assert low == pytest.approx(100.0, abs=15.0)
        assert high == pytest.approx(200.0, abs=15.0)

    def test_transition_matrix_rows_sum_to_one(self, rng):
        model = RegimeModel().fit(self.regime_series(rng))
        assert np.allclose(model.transition.sum(axis=1), 1.0)

    def test_sticky_regimes_have_high_self_transition(self, rng):
        model = RegimeModel().fit(self.regime_series(rng))
        assert model.transition[0, 0] > 0.8

    def test_simulation_spans_both_regimes(self, rng):
        model = RegimeModel().fit(self.regime_series(rng))
        synthetic = model.simulate(3000, rng)
        assert synthetic.min() < 150.0 < synthetic.max()

    def test_rmse_better_than_marginal_for_regime_data(self, rng):
        data = self.regime_series(rng)
        regime = RegimeModel().fit(data)
        histogram = HistogramWorkloadModel(bins=30).fit(data)
        assert regime.one_step_rmse(data) < histogram.one_step_rmse(data)

    def test_short_series_rejected(self):
        with pytest.raises(InsufficientDataError):
            RegimeModel().fit([1.0] * 10)
