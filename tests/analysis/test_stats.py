"""Unit tests for summary statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    coefficient_of_variation_ratio,
    summarize,
    variance_ratio,
)
from repro.errors import InsufficientDataError
from repro.monitoring.timeseries import TimeSeries


class TestSummarize:
    def test_known_moments(self):
        stats = summarize([2.0, 4.0, 6.0])
        assert stats.mean == 4.0
        assert stats.std == pytest.approx(2.0)
        assert stats.cv == pytest.approx(0.5)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.median == 4.0
        assert stats.count == 3

    def test_quantiles(self):
        stats = summarize(list(range(101)))
        assert stats.p25 == pytest.approx(25.0)
        assert stats.p75 == pytest.approx(75.0)
        assert stats.p95 == pytest.approx(95.0)
        assert stats.iqr == pytest.approx(50.0)

    def test_skewness_of_symmetric_data_near_zero(self):
        rng = np.random.default_rng(0)
        stats = summarize(rng.normal(size=5000))
        assert abs(stats.skewness) < 0.15

    def test_skewness_of_lognormal_positive(self):
        rng = np.random.default_rng(0)
        stats = summarize(rng.lognormal(0.0, 1.0, size=5000))
        assert stats.skewness > 1.0

    def test_accepts_timeseries(self):
        series = TimeSeries("s", times=[0, 2, 4], values=[1.0, 2.0, 3.0])
        assert summarize(series).mean == 2.0

    def test_too_short_rejected(self):
        with pytest.raises(InsufficientDataError):
            summarize([1.0])

    def test_zero_mean_cv_infinite(self):
        assert summarize([-1.0, 1.0]).cv == float("inf")

    def test_describe_is_readable(self):
        assert "mean=" in summarize([1.0, 2.0]).describe()


class TestVarianceRatio:
    def test_known_ratio(self):
        a = [0.0, 4.0, 0.0, 4.0]
        b = [0.0, 2.0, 0.0, 2.0]
        assert variance_ratio(a, b) == pytest.approx(4.0)

    def test_zero_denominator_rejected(self):
        with pytest.raises(InsufficientDataError):
            variance_ratio([1.0, 2.0], [3.0, 3.0])

    def test_cv_ratio_scale_free(self):
        a = [10.0, 20.0, 30.0]
        scaled = [100.0, 200.0, 300.0]
        assert coefficient_of_variation_ratio(a, scaled) == pytest.approx(1.0)
