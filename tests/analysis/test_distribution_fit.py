"""Unit tests for distribution fitting and model selection."""

import numpy as np
import pytest

from repro.analysis.distribution_fit import best_fit, fit_candidates
from repro.errors import AnalysisError, InsufficientDataError


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFitting:
    def test_recovers_normal(self, rng):
        data = rng.normal(loc=50.0, scale=5.0, size=2000)
        fit = best_fit(data)
        assert fit.family == "normal"
        assert fit.params[-2] == pytest.approx(50.0, rel=0.05)

    def test_recovers_lognormal(self, rng):
        data = rng.lognormal(mean=1.0, sigma=0.9, size=2000)
        fit = best_fit(data)
        assert fit.family in ("lognormal", "gamma")  # close cousins
        # But lognormal should beat normal decisively.
        fits = {f.family: f for f in fit_candidates(data)}
        assert fits["lognormal"].aic < fits["normal"].aic

    def test_recovers_exponential_shape(self, rng):
        data = rng.exponential(scale=3.0, size=2000)
        fits = {f.family: f for f in fit_candidates(data)}
        assert fits["exponential"].aic < fits["normal"].aic

    def test_fits_sorted_by_aic(self, rng):
        data = rng.gamma(shape=2.0, scale=1.0, size=500)
        fits = fit_candidates(data)
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)

    def test_positive_only_families_skipped_for_negative_data(self, rng):
        data = rng.normal(loc=0.0, scale=1.0, size=500)
        families = {f.family for f in fit_candidates(data)}
        assert families == {"normal"}

    def test_ks_pvalue_reasonable_for_true_family(self, rng):
        data = rng.normal(loc=10.0, scale=2.0, size=500)
        fits = {f.family: f for f in fit_candidates(data)}
        assert fits["normal"].ks_pvalue > 0.01

    def test_frozen_distribution_samples(self, rng):
        data = rng.normal(loc=10.0, scale=2.0, size=500)
        frozen = best_fit(data).frozen()
        samples = frozen.rvs(size=10, random_state=rng)
        assert len(samples) == 10


class TestValidation:
    def test_too_few_samples_rejected(self):
        with pytest.raises(InsufficientDataError):
            fit_candidates([1.0, 2.0, 3.0])

    def test_constant_series_rejected(self):
        with pytest.raises(AnalysisError):
            fit_candidates([5.0] * 100)

    def test_unknown_family_rejected(self, rng):
        data = rng.normal(size=100)
        with pytest.raises(AnalysisError):
            fit_candidates(data, families=["zipf"])

    def test_non_finite_rejected(self):
        with pytest.raises(AnalysisError):
            fit_candidates([1.0, float("nan")] * 50)
