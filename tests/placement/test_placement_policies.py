"""Unit tests for the placement policies."""

import pytest

from repro.errors import ConfigurationError
from repro.placement.policies import (
    PlacementError,
    ServerLoad,
    choose_server,
    plan_placement,
)
from repro.placement.spec import VmRequest
from repro.units import GB


def loads(n=3, cores=8, memory_gb=32):
    return [
        ServerLoad(
            name=f"cloud-{i + 1}",
            order=i,
            cores=cores,
            memory_bytes=memory_gb * GB,
            reserved_memory_bytes=4 * GB,  # dom0
        )
        for i in range(n)
    ]


class TestFeasibility:
    def test_memory_is_a_hard_constraint(self):
        state = loads(1)
        request = VmRequest("big", vcpus=1, memory_bytes=29 * GB)
        with pytest.raises(PlacementError):
            choose_server("firstfit", request, state)

    def test_vcpus_overcommit_up_to_ratio(self):
        state = loads(1)
        assert state[0].fits(VmRequest("a", vcpus=16, memory_bytes=GB), 2.0)
        assert not state[0].fits(
            VmRequest("a", vcpus=17, memory_bytes=GB), 2.0
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            choose_server("roundrobin", VmRequest("a"), loads())


class TestPolicies:
    def test_firstfit_packs_in_server_order(self):
        state = loads(3)
        for expected in ("cloud-1", "cloud-1", "cloud-1"):
            request = VmRequest(f"vm{expected}", vcpus=2, memory_bytes=GB)
            chosen = choose_server("firstfit", request, state)
            assert chosen.name == expected
            chosen.commit(request)

    def test_firstfit_spills_when_full(self):
        state = loads(2)
        first = VmRequest("a", vcpus=1, memory_bytes=26 * GB)
        choose_server("firstfit", first, state).commit(first)
        spill = VmRequest("b", vcpus=1, memory_bytes=8 * GB)
        assert choose_server("firstfit", spill, state).name == "cloud-2"

    def test_balance_spreads(self):
        state = loads(3)
        seen = []
        for i in range(3):
            request = VmRequest(f"vm{i}", vcpus=2, memory_bytes=GB)
            chosen = choose_server("balance", request, state)
            chosen.commit(request)
            seen.append(chosen.name)
        assert seen == ["cloud-1", "cloud-2", "cloud-3"]

    def test_bestfit_prefers_the_tightest_server(self):
        state = loads(3)
        # Pre-load server 2 so it has the least slack but still fits.
        preload = VmRequest("pre", vcpus=4, memory_bytes=16 * GB)
        state[1].commit(preload)
        request = VmRequest("vm", vcpus=2, memory_bytes=2 * GB)
        assert choose_server("bestfit", request, state).name == "cloud-2"

    def test_bestfit_ranks_post_placement_slack_on_heterogeneous_fleet(self):
        # Big half-committed server vs. a small server the request
        # nearly fills: current slack ranks the small server looser,
        # but *after* placement the small server is the tightest fit.
        big = ServerLoad(
            name="big", order=0, cores=8, memory_bytes=32 * GB,
            reserved_memory_bytes=16 * GB, committed_vcpus=8,
        )
        small = ServerLoad(
            name="small", order=1, cores=2, memory_bytes=4 * GB,
            reserved_memory_bytes=1.9 * GB, committed_vcpus=2,
        )
        assert small.slack(2.0) > big.slack(2.0)
        request = VmRequest("vm", vcpus=2, memory_bytes=2 * GB)
        assert choose_server("bestfit", request, [big, small]).name == "small"

    def test_priority_separates_classes(self):
        state = loads(2)
        web = VmRequest("web", vcpus=4, memory_bytes=4 * GB, priority=1)
        choose_server("priority", web, state).commit(web)
        batch = VmRequest("batch", vcpus=8, memory_bytes=4 * GB)
        chosen = choose_server("priority", batch, state)
        # The batch VM avoids the server hosting priority demand.
        assert chosen.name == "cloud-2"
        chosen.commit(batch)
        web2 = VmRequest("web2", vcpus=2, memory_bytes=2 * GB, priority=1)
        # The next web VM lands on the least-committed server: cloud-1
        # has 4 committed vcpus, cloud-2 has 8.
        assert choose_server("priority", web2, state).name == "cloud-1"

    def test_deterministic_tiebreak_is_server_order(self):
        state = loads(3)
        request = VmRequest("vm", vcpus=2, memory_bytes=GB)
        for policy in ("firstfit", "bestfit", "balance", "priority"):
            assert choose_server(policy, request, state).name == "cloud-1"


class TestPlanPlacement:
    def test_groups_are_placed_as_one_unit(self):
        state = loads(2)
        requests = [
            VmRequest("web", vcpus=2, memory_bytes=2 * GB, group="web"),
            VmRequest("db", vcpus=2, memory_bytes=2 * GB, group="web"),
            VmRequest("batch", vcpus=8, memory_bytes=4 * GB),
        ]
        assignment = plan_placement("balance", requests, state)
        assert assignment["web"] == assignment["db"]
        # Balance puts the batch VM on the other server.
        assert assignment["batch"] != assignment["web"]

    def test_commitments_are_recorded(self):
        state = loads(1)
        plan_placement(
            "firstfit",
            [VmRequest("vm", vcpus=2, memory_bytes=2 * GB)],
            state,
        )
        assert state[0].committed_vcpus == 2
        assert state[0].reserved_memory_bytes == 4 * GB + 2 * GB

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_placement(
                "firstfit",
                [VmRequest("vm"), VmRequest("vm")],
                loads(),
            )

    def test_release_undoes_commit(self):
        state = loads(1)[0]
        request = VmRequest("vm", vcpus=2, memory_bytes=GB, priority=1)
        base_mem = state.reserved_memory_bytes
        state.commit(request)
        state.release(request)
        assert state.committed_vcpus == 0
        assert state.priority_vcpus == 0
        assert state.reserved_memory_bytes == base_mem
