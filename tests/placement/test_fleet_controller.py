"""Tests for the fleet controller (scenario-level, via the testbed)."""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    fleet_consolidation_scenario,
    migration_rebalance_scenario,
)
from repro.placement.spec import FleetSpec


class TestFleetSpec:
    def test_defaults_valid(self):
        spec = FleetSpec()
        assert spec.active
        assert spec.to_dict()["cooldown_s"] == spec.cooldown_s

    def test_roundtrip(self):
        spec = FleetSpec(active=False, p95_high_ms=80.0)
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(Exception):
            FleetSpec.from_dict({"warp_speed": 9})

    def test_invalid_values_rejected(self):
        for kwargs in (
            {"hot_windows": 0},
            {"dirty_fraction_per_s": 1.5},
            {"migration_bandwidth_bps": 0},
            {"max_migrations": 0},
        ):
            with pytest.raises(Exception):
                FleetSpec(**kwargs)


class TestMigrationRebalanceScenario:
    def test_controller_triggers_exactly_when_active(self):
        active = run_scenario(
            migration_rebalance_scenario(duration_s=90.0, clients=400)
        )
        watcher = run_scenario(
            migration_rebalance_scenario(
                duration_s=90.0, clients=400, fleet=False
            )
        )
        assert active.control_reports["fleet"]["num_actions"] >= 1
        assert watcher.control_reports["fleet"]["num_actions"] == 0
        move = active.control_reports["fleet"]["migrations"][0]
        assert move["domain"] == "batch-vm"
        assert move["source"] == "cloud-1"
        assert move["dest"] == "cloud-2"
        assert move["downtime_s"] > 0
        assert active.control_reports["fleet"]["placement"] == {
            "cloud-1": ["web-vm", "db-vm"], "cloud-2": ["batch-vm"],
        }

    def test_fleet_series_merged_into_traces(self):
        result = run_scenario(
            migration_rebalance_scenario(duration_s=60.0, clients=200)
        )
        entities = result.traces.entities()
        assert "fleet" in entities
        assert "dom0.cloud-2" in entities
        migrations = result.traces.get("fleet", "migrations_done")
        assert migrations.values.max() == len(
            result.control_reports["fleet"]["migrations"]
        )

    def test_billing_covers_every_vm(self):
        result = run_scenario(
            migration_rebalance_scenario(duration_s=60.0, clients=200)
        )
        billed = result.control_reports["billing"]["domains"]
        assert set(billed) == {"web-vm", "db-vm", "batch-vm"}
        for bill in billed.values():
            assert bill["capacity_core_s"] > 0
            assert bill["memory_gb_s"] > 0

    def test_interference_report_has_per_server_breakdown(self):
        result = run_scenario(
            migration_rebalance_scenario(duration_s=60.0, clients=200)
        )
        assert set(result.interference["per_server"]) == {
            "cloud-1", "cloud-2",
        }


class TestControllerBearingTenantsArePinned:
    def test_fleet_never_migrates_a_tenant_with_its_own_controller(self):
        from dataclasses import replace

        from repro.control.spec import ControllerSpec
        from repro.workloads.base import TenantSpec

        base = migration_rebalance_scenario(duration_s=90.0, clients=400)
        throttled = TenantSpec(
            controller=ControllerSpec(kind="threshold", invert=True)
        )
        spec = replace(base, tenants=(throttled,))
        # The run completes (no stranded SignalTap on the source
        # hypervisor) and the throttled tenant stays put.
        result = run_scenario(spec)
        assert result.control_reports["fleet"]["migrations"] == []
        assert result.control_reports["fleet"]["placement"][
            "cloud-1"
        ] == ["web-vm", "db-vm", "batch-vm"]
        # Its elastic controller did observe/actuate throughout.
        assert "control.batch" in result.control_reports


class TestServersAxisSharesSeeds:
    def test_fleet_size_cells_run_the_same_seed(self):
        from repro.experiments.suite import suite_grid
        from repro.workloads.base import TenantSpec

        runs = suite_grid(
            tenant_mixes=((TenantSpec(),),),
            servers=(1, 2),
            placement="priority",
            duration_s=40.0,
        )
        assert len(runs) == 2
        seeds = {run.run_id: run.config.seed for run in runs}
        assert len(set(seeds.values())) == 1, (
            "cells differing only in fleet size must share a seed "
            f"(got {seeds})"
        )


class TestFleetConsolidationScenario:
    def test_priority_placement_separates_classes(self):
        result = run_scenario(
            fleet_consolidation_scenario(duration_s=60.0, clients=200)
        )
        # No fleet controller here, but multi-server runs always carry
        # the capacity bill; both batch tenants show up in it.
        billed = result.control_reports["billing"]["domains"]
        assert {"web-vm", "db-vm", "batch-vm", "batch2-vm"} == set(billed)
        per_server = result.interference["per_server"]
        assert set(per_server) == {"cloud-1", "cloud-2"}
        for report in result.tenant_reports.values():
            assert report["tasks_completed"] > 0
