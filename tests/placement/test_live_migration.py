"""Unit tests for the live-migration actuator."""

import pytest

from repro.apps.tier import VirtualizedContext
from repro.errors import SimulationError
from repro.monitoring.probes import ContextProbe
from repro.placement.engine import PlacementEngine
from repro.placement.migration import LiveMigration, PAUSE_CAP_CORES
from repro.placement.spec import FleetSpec, VmRequest
from repro.sim.engine import Simulator
from repro.units import GB, MB
from repro.virt.io_backend import DOM0_OWNER


def fleet_pair():
    sim = Simulator()
    engine = PlacementEngine(sim, 2)
    engine.place([VmRequest("batch-vm", vcpus=4, memory_bytes=4 * GB)])
    source = engine.hypervisors["cloud-1"]
    dest = engine.hypervisors["cloud-2"]
    domain = source.create_domain(
        "batch-vm", vcpu_count=4, memory_bytes=4 * GB
    )
    context = VirtualizedContext(source, domain)
    return sim, source, dest, domain, context


def migrate(sim, source, dest, context, spec=None, horizon_s=400.0):
    done = []
    migration = LiveMigration(
        sim,
        source,
        dest,
        context.domain.name,
        spec=spec or FleetSpec(),
        rebind=context.rebind,
        on_complete=done.append,
    )
    sim.run_until(1.0)
    migration.start()
    sim.run_until(horizon_s)
    assert done, "migration did not complete within the horizon"
    return done[0]


class TestPreCopyModel:
    def test_rounds_shrink_and_converge(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(2 * GB)
        report = migrate(sim, source, dest, context)
        assert report.rounds >= 2
        # Total traffic exceeds one memory pass (dirty pages re-ship)
        # but converges well below the non-converging bound.
        assert report.bytes_total > 2 * GB
        assert report.bytes_total < 8 * GB
        assert 0 < report.downtime_s < 1.0
        assert report.ended_s > report.started_s

    def test_dirty_rate_scales_with_working_set(self):
        small = fleet_pair()
        small[4].set_memory(512 * MB)
        small_report = migrate(small[0], small[1], small[2], small[4])
        large = fleet_pair()
        large[4].set_memory(3 * GB)
        large_report = migrate(large[0], large[1], large[2], large[4])
        assert large_report.bytes_total > small_report.bytes_total
        assert large_report.duration_s > small_report.duration_s

    def test_migration_traffic_lands_on_both_dom0_nics(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        report = migrate(sim, source, dest, context)
        tx = source.server.nic.bytes_transmitted(DOM0_OWNER)
        rx = dest.server.nic.bytes_received(DOM0_OWNER)
        assert tx == pytest.approx(report.bytes_total)
        assert rx == pytest.approx(report.bytes_total)
        # Both dom0s burned CPU moving the image.
        assert source.server.cpu.ledger.total(DOM0_OWNER) > 0
        assert dest.server.cpu.ledger.total(DOM0_OWNER) > 0


class TestSwitchOver:
    def test_domain_moves_with_counters(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        context.charge_cpu(7e9)
        probe = ContextProbe("batch", context)
        before = probe.snapshot()
        migrate(sim, source, dest, context)
        assert not source.has_domain("batch-vm")
        assert dest.has_domain("batch-vm")
        assert context.hypervisor is dest
        after = probe.snapshot()
        # Monotonic counters survive the move (the sampler would raise
        # on a decrease).
        after.delta(before).validate_monotonic()
        assert after.cpu_cycles >= 7e9
        assert dest.vm_memory_used(domain) == pytest.approx(GB)
        assert source.server.memory.usage(domain.owner) == 0.0

    def test_pause_cap_is_restored(self):
        sim, source, dest, domain, context = fleet_pair()
        domain.cap_cores = 1.5
        context.set_memory(GB)
        migrate(sim, source, dest, context)
        assert domain.cap_cores == 1.5

    def test_uncapped_domain_stays_uncapped(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        migrate(sim, source, dest, context)
        assert domain.cap_cores == 0.0
        assert domain.cap_cores != PAUSE_CAP_CORES

    def test_migration_events_emitted(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        events = []
        source.add_control_hook(events.append)
        dest.add_control_hook(events.append)
        migrate(sim, source, dest, context)
        kinds = [event["kind"] for event in events]
        assert "migrate_pre_copy" in kinds
        assert "migrate_downtime" in kinds
        assert "migrate_in" in kinds
        # The pause/restore caps are ordinary control actions.
        assert kinds.count("set_cap") == 2

    def test_same_hypervisor_rejected(self):
        sim, source, dest, domain, context = fleet_pair()
        with pytest.raises(SimulationError):
            LiveMigration(sim, source, source, "batch-vm")

    def test_double_start_rejected(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        migration = LiveMigration(sim, source, dest, "batch-vm")
        sim.run_until(1.0)
        migration.start()
        with pytest.raises(SimulationError):
            migration.start()


class TestInFlightRescale:
    def test_pause_stretches_then_lift_shrinks(self):
        sim, source, dest, domain, context = fleet_pair()
        domain.cap_cores = 1.5
        context.set_memory(GB)
        factors = []
        done = []
        migration = LiveMigration(
            sim, source, dest, "batch-vm",
            rebind=context.rebind,
            on_complete=done.append,
            rescale=factors.append,
        )
        sim.run_until(1.0)
        migration.start()
        sim.run_until(400.0)
        assert done
        # Exactly one stretch entering the pause and one inverse
        # shrink when the PAUSE_CAP lifts at switch-over.
        assert len(factors) == 2
        assert factors[0] == pytest.approx(1.5 / PAUSE_CAP_CORES)
        assert factors[0] * factors[1] == pytest.approx(1.0)

    def test_uncapped_domain_scales_by_vcpus(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        factors = []
        migration = LiveMigration(
            sim, source, dest, "batch-vm",
            rebind=context.rebind,
            rescale=factors.append,
        )
        sim.run_until(1.0)
        migration.start()
        sim.run_until(400.0)
        assert factors[0] == pytest.approx(
            domain.online_vcpus / PAUSE_CAP_CORES
        )

    def test_forced_flag_lands_in_the_report(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        done = []
        migration = LiveMigration(
            sim, source, dest, "batch-vm",
            rebind=context.rebind,
            on_complete=done.append,
            forced=True,
        )
        sim.run_until(1.0)
        migration.start()
        sim.run_until(400.0)
        assert done[0].forced
        assert done[0].to_dict()["forced"] is True

    def test_default_migration_is_voluntary(self):
        sim, source, dest, domain, context = fleet_pair()
        context.set_memory(GB)
        report = migrate(sim, source, dest, context)
        assert report.forced is False
