"""Unit tests for the placement engine."""

import pytest

from repro.errors import ConfigurationError
from repro.placement.engine import PlacementEngine
from repro.placement.spec import VmRequest
from repro.sim.engine import Simulator
from repro.units import GB


def engine(servers=2, policy="firstfit"):
    return PlacementEngine(Simulator(), servers, policy=policy)


WEB_PAIR = [
    VmRequest("web-vm", vcpus=2, memory_bytes=2 * GB, priority=1,
              group="web", movable=False),
    VmRequest("db-vm", vcpus=2, memory_bytes=2 * GB, priority=1,
              group="web", movable=False),
]


class TestEngineConstruction:
    def test_one_hypervisor_per_server(self):
        built = engine(3)
        assert len(built.cluster) == 3
        assert set(built.hypervisors) == {"cloud-1", "cloud-2", "cloud-3"}
        for name, hypervisor in built.hypervisors.items():
            assert hypervisor.server.name == name
            assert hypervisor.dom0.name == "Domain-0"

    def test_shared_fabric(self):
        built = engine(2)
        first, second = built.cluster.servers()
        assert built.cluster.fabric is not None
        assert first.name != second.name

    def test_dom0_memory_reserved_in_loads(self):
        built = engine(1)
        load = built.server_loads()[0]
        assert load.reserved_memory_bytes == built.hypervisors[
            "cloud-1"
        ].dom0.memory_bytes

    def test_invalid_server_count(self):
        with pytest.raises(ConfigurationError):
            engine(0)


class TestPlacement:
    def test_firstfit_colocates_until_full(self):
        built = engine(2)
        batch = VmRequest("batch-vm", vcpus=8, memory_bytes=4 * GB)
        assignment = built.place(WEB_PAIR + [batch])
        assert assignment == {
            "web-vm": "cloud-1", "db-vm": "cloud-1", "batch-vm": "cloud-1",
        }

    def test_priority_separates_web_from_batch(self):
        built = engine(2, policy="priority")
        batch = VmRequest("batch-vm", vcpus=8, memory_bytes=4 * GB)
        assignment = built.place(WEB_PAIR + [batch])
        assert assignment["web-vm"] == assignment["db-vm"]
        assert assignment["batch-vm"] != assignment["web-vm"]

    def test_lookups_and_report(self):
        built = engine(2)
        built.place(WEB_PAIR)
        assert built.server_of("web-vm") == "cloud-1"
        assert built.hypervisor_for("web-vm") is built.hypervisors["cloud-1"]
        assert built.placement_report() == {
            "cloud-1": ["web-vm", "db-vm"], "cloud-2": [],
        }

    def test_failed_place_leaves_no_phantom_reservations(self):
        from repro.placement.policies import PlacementError

        built = engine(1)
        before = built.server_loads()[0].reserved_memory_bytes
        with pytest.raises(PlacementError):
            built.place([
                VmRequest("ok-vm", vcpus=2, memory_bytes=2 * GB),
                VmRequest("huge-vm", vcpus=2, memory_bytes=64 * GB),
            ])
        load = built.server_loads()[0]
        assert load.reserved_memory_bytes == before
        assert load.committed_vcpus == 0
        with pytest.raises(ConfigurationError):
            built.server_of("ok-vm")
        # The atomically-failed request can be placed again.
        built.place([VmRequest("ok-vm", vcpus=2, memory_bytes=2 * GB)])
        assert built.server_of("ok-vm") == "cloud-1"

    def test_double_place_rejected(self):
        built = engine(2)
        built.place(WEB_PAIR)
        with pytest.raises(ConfigurationError):
            built.place([WEB_PAIR[0]])

    def test_unplaced_vm_rejected(self):
        with pytest.raises(ConfigurationError):
            engine().server_of("ghost")


class TestMigrationBookkeeping:
    def test_movable_vms_excludes_pinned(self):
        built = engine(2)
        built.place(WEB_PAIR + [VmRequest("batch-vm", vcpus=8,
                                          memory_bytes=4 * GB)])
        assert built.movable_vms_on("cloud-1") == ["batch-vm"]
        assert built.movable_vms_on("cloud-2") == []

    def test_choose_destination_prefers_least_loaded(self):
        built = engine(3)
        built.place(WEB_PAIR + [VmRequest("batch-vm", vcpus=8,
                                          memory_bytes=4 * GB)])
        # Pre-load cloud-2 (cloud-1 is vcpu-full) so cloud-3 is freer.
        built.place([VmRequest("other-vm", vcpus=8, memory_bytes=20 * GB)])
        assert built.server_of("other-vm") == "cloud-2"
        assert built.choose_destination("batch-vm") == "cloud-3"

    def test_choose_destination_none_when_fleet_full(self):
        built = engine(1)
        built.place([VmRequest("batch-vm", vcpus=8, memory_bytes=4 * GB)])
        assert built.choose_destination("batch-vm") is None

    def test_record_migration_moves_booking(self):
        built = engine(2)
        built.place(WEB_PAIR + [VmRequest("batch-vm", vcpus=8,
                                          memory_bytes=4 * GB)])
        before = {load.name: load.committed_vcpus
                  for load in built.server_loads()}
        built.record_migration("batch-vm", "cloud-2")
        after = {load.name: load.committed_vcpus
                 for load in built.server_loads()}
        assert built.server_of("batch-vm") == "cloud-2"
        assert after["cloud-1"] == before["cloud-1"] - 8
        assert after["cloud-2"] == before["cloud-2"] + 8
