"""Unit tests for the fleet optimizer's decision levers.

The optimizer is a pure function of the (sorted) window signals, so
every lever is testable with synthetic signal dicts — no simulator.
The signal shape mirrors :meth:`repro.shard.pod.Pod.signals`.
"""

import pytest

from repro.config import ExperimentConfig
from repro.placement.spec import FleetSpec
from repro.planning.budget import BudgetSpec
from repro.shard.optimizer import FleetOptimizer
from repro.shard.spec import FleetScenario, OptimizerSpec, PodSpec
from repro.units import GB


def _fleet(optimizer: OptimizerSpec, fleet_spec=None) -> FleetScenario:
    config = ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        servers=2,
        fleet=fleet_spec,
    )
    return FleetScenario(
        name="t",
        pods=(PodSpec("east", config), PodSpec("west", config)),
        duration_s=60.0,
        window_s=10.0,
        optimizer=optimizer,
    )


def _signal(**overrides) -> dict:
    signal = {
        "pod": "x",
        "time_s": 10.0,
        "requests_total": 100,
        "requests_delta": 100,
        "p95_ms": 5.0,
        "billing": {"kind": "billing", "domains": {}},
        "migration_busy": False,
        "failed_servers": [],
        "stranded": [],
        "free_memory": {},
        "vms": [],
    }
    signal.update(overrides)
    return signal


def _image(name="heavy-vm", memory_gb=26.0, shippable=True) -> dict:
    return {
        "name": name,
        "shippable": shippable,
        "vcpus": 8,
        "memory_bytes": memory_gb * GB,
        "weight": 256.0,
        "cap_cores": 0.0,
        "priority": 0,
        "mem_used": 2.0 * GB,
    }


class TestEvacuationLever:
    def test_routes_to_peer_with_most_free_memory(self):
        optimizer = FleetOptimizer(_fleet(OptimizerSpec()))
        signals = {
            "east": _signal(
                stranded=[_image()],
                free_memory={"cloud-1": 2.0 * GB},
            ),
            "west": _signal(
                free_memory={"cloud-1": 4.0 * GB, "cloud-2": 28.0 * GB},
            ),
        }
        commands = optimizer.decide(10.0, signals)
        assert commands["east"] == [
            {"op": "evacuate", "vm": "heavy-vm", "dest_pod": "west"}
        ]
        assert commands["west"][0]["op"] == "import"
        assert commands["west"][0]["image"]["name"] == "heavy-vm"
        assert commands["west"][0]["src_pod"] == "east"
        assert optimizer.decisions[0]["kind"] == "evacuate"

    def test_never_routes_back_to_the_source_pod(self):
        optimizer = FleetOptimizer(_fleet(OptimizerSpec()))
        signals = {
            "east": _signal(
                stranded=[_image()],
                # Plenty of *local* room reported — stranded means the
                # local controller already proved it can't place there.
                free_memory={"cloud-1": 30.0 * GB},
            ),
            "west": _signal(free_memory={"cloud-1": 1.0 * GB}),
        }
        commands = optimizer.decide(10.0, signals)
        assert commands["east"] == []
        assert optimizer.decisions[0]["kind"] == "evacuate-stranded"

    def test_window_imports_consume_destination_room(self):
        optimizer = FleetOptimizer(_fleet(OptimizerSpec()))
        signals = {
            "east": _signal(
                stranded=[
                    _image("ball1-vm", memory_gb=20.0),
                    _image("ball2-vm", memory_gb=20.0),
                ],
            ),
            "west": _signal(free_memory={"cloud-2": 28.0 * GB}),
        }
        commands = optimizer.decide(10.0, signals)
        # Only the first image fits; the second window's room is gone.
        evacuated = [c for c in commands["east"] if c["op"] == "evacuate"]
        assert [c["vm"] for c in evacuated] == ["ball1-vm"]
        kinds = [d["kind"] for d in optimizer.decisions]
        assert kinds == ["evacuate", "evacuate-stranded"]

    def test_non_ballast_guests_are_skipped(self):
        optimizer = FleetOptimizer(_fleet(OptimizerSpec()))
        signals = {
            "east": _signal(stranded=[_image(shippable=False)]),
            "west": _signal(free_memory={"cloud-2": 28.0 * GB}),
        }
        commands = optimizer.decide(10.0, signals)
        assert commands["east"] == [] and commands["west"] == []
        assert optimizer.decisions[0]["kind"] == "evacuate-skipped"


class TestBudgetLever:
    def _signals(self, core_s: float) -> dict:
        bill = {
            "kind": "billing",
            "domains": {
                "idle1-vm": {"capacity_core_s": core_s, "memory_gb_s": 0.0}
            },
        }
        return {
            "east": _signal(
                billing=bill,
                vms=[{
                    "name": "idle1-vm", "server": "cloud-1",
                    "movable": True, "vcpus": 8, "cap_cores": 0.0,
                    "mem_used": 1.0 * GB,
                }],
            ),
            "west": _signal(),
        }

    def test_acts_only_after_the_hysteresis_streak(self):
        spec = OptimizerSpec(
            budget=BudgetSpec(
                usd_per_kilorequest=0.001,
                min_cap_cores=1.0,
                over_windows=2,
            ),
        )
        optimizer = FleetOptimizer(_fleet(spec))
        # Window 1: hugely over budget, but streak < over_windows.
        commands = optimizer.decide(10.0, self._signals(36_000.0))
        assert all(not batch for batch in commands.values())
        # Window 2: second overrun in a row -> throttle to the floor.
        commands = optimizer.decide(20.0, self._signals(72_000.0))
        assert commands["east"] == [
            {"op": "throttle", "vm": "idle1-vm", "cap_cores": 1.0}
        ]
        decision = optimizer.decisions[0]
        assert decision["kind"] == "budget-throttle"
        assert decision["usd_per_kilorequest"] > 0.001

    def test_within_budget_never_acts(self):
        spec = OptimizerSpec(
            budget=BudgetSpec(usd_per_kilorequest=100.0, over_windows=1),
        )
        optimizer = FleetOptimizer(_fleet(spec))
        commands = optimizer.decide(10.0, self._signals(100.0))
        assert all(not batch for batch in commands.values())
        assert optimizer.decisions == []

    def test_exhausted_when_everything_is_at_the_floor(self):
        spec = OptimizerSpec(
            budget=BudgetSpec(
                usd_per_kilorequest=0.001, min_cap_cores=1.0,
                over_windows=1,
            ),
        )
        optimizer = FleetOptimizer(_fleet(spec))
        signals = self._signals(36_000.0)
        signals["east"]["vms"][0]["cap_cores"] = 1.0  # already capped
        optimizer.decide(10.0, signals)
        assert optimizer.decisions[0]["kind"] == "budget-exhausted"


class TestHotPodLever:
    def _hot_signals(self, mem_used: float, **overrides) -> dict:
        east = _signal(
            p95_ms=80.0,
            vms=[{
                "name": "batch-vm", "server": "cloud-1", "movable": True,
                "vcpus": 4, "cap_cores": 0.0, "mem_used": mem_used,
            }],
        )
        east.update(overrides)
        return {"east": east, "west": _signal()}

    def test_admitted_migration_is_commanded(self):
        optimizer = FleetOptimizer(
            _fleet(OptimizerSpec(slo_p95_ms=40.0), fleet_spec=FleetSpec())
        )
        commands = optimizer.decide(
            10.0, self._hot_signals(mem_used=0.25 * GB)
        )
        assert commands["east"] == [{"op": "migrate", "vm": "batch-vm"}]
        decision = optimizer.decisions[0]
        assert decision["kind"] == "migrate"
        assert decision["admission"]["admitted"] is True

    def test_denied_migration_falls_back_to_throttle(self):
        # A 26 GB working set diverges in pre-copy: admission denies
        # the move, so the optimizer resizes the antagonist instead.
        optimizer = FleetOptimizer(
            _fleet(OptimizerSpec(slo_p95_ms=40.0), fleet_spec=FleetSpec())
        )
        commands = optimizer.decide(
            10.0, self._hot_signals(mem_used=26.0 * GB)
        )
        assert commands["east"] == [
            {"op": "throttle", "vm": "batch-vm", "cap_cores": 1.0}
        ]
        assert optimizer.decisions[0]["kind"] == "slo-throttle"

    def test_migration_budget_exhaustion_falls_back_to_throttle(self):
        optimizer = FleetOptimizer(
            _fleet(
                OptimizerSpec(slo_p95_ms=40.0, max_migrations=0),
                fleet_spec=FleetSpec(),
            )
        )
        commands = optimizer.decide(
            10.0, self._hot_signals(mem_used=0.25 * GB)
        )
        assert commands["east"][0]["op"] == "throttle"

    def test_failed_or_busy_pods_are_left_alone(self):
        optimizer = FleetOptimizer(
            _fleet(OptimizerSpec(slo_p95_ms=40.0), fleet_spec=FleetSpec())
        )
        commands = optimizer.decide(
            10.0,
            self._hot_signals(0.25 * GB, failed_servers=["cloud-2"]),
        )
        assert all(not batch for batch in commands.values())
        commands = optimizer.decide(
            20.0, self._hot_signals(0.25 * GB, migration_busy=True),
        )
        assert all(not batch for batch in commands.values())

    def test_healthy_pods_are_left_alone(self):
        optimizer = FleetOptimizer(
            _fleet(OptimizerSpec(slo_p95_ms=40.0), fleet_spec=FleetSpec())
        )
        signals = self._hot_signals(0.25 * GB)
        signals["east"]["p95_ms"] = 5.0
        commands = optimizer.decide(10.0, signals)
        assert all(not batch for batch in commands.values())


class TestReport:
    def test_report_is_plain_data(self):
        optimizer = FleetOptimizer(
            _fleet(OptimizerSpec(budget=BudgetSpec()))
        )
        optimizer.decide(10.0, {"east": _signal(), "west": _signal()})
        report = optimizer.report()
        assert report["kind"] == "fleet-optimizer"
        assert report["decisions"] == []
        assert report["migrations_commanded"] == 0
        assert report["budget"]["windows"] == 1

    def test_requires_an_optimizer_spec(self):
        config = ExperimentConfig(
            environment="virtualized", composition="browsing",
        )
        fleet = FleetScenario(
            name="t", pods=(PodSpec("a", config),), duration_s=60.0,
        )
        with pytest.raises(ValueError):
            FleetOptimizer(fleet)
