"""Unit tests for the sharded-fleet declarative layer.

The spec layer carries the determinism contract: pod seeds derive
from the fleet seed and the pod *name* (never the shard), scenarios
round-trip through plain dicts (workers receive JSON-able payloads),
and the lockstep geometry (windows dividing the horizon, boundaries
on sampling ticks) is validated at construction time.
"""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.suite import derive_run_seed
from repro.planning.budget import BudgetSpec
from repro.shard.fabric import shard_partition
from repro.shard.spec import FleetScenario, OptimizerSpec, PodSpec


def _config(seed: int = 7) -> ExperimentConfig:
    return ExperimentConfig(
        environment="virtualized", composition="browsing", seed=seed,
    )


def _fleet(**overrides) -> FleetScenario:
    kwargs = dict(
        name="f",
        pods=(PodSpec("a", _config()), PodSpec("b", _config())),
        duration_s=60.0,
        window_s=10.0,
        seed=42,
    )
    kwargs.update(overrides)
    return FleetScenario(**kwargs)


class TestPodSpec:
    def test_name_must_not_structure_tokens(self):
        for bad in ("", "a/b", "a@b"):
            with pytest.raises(ConfigurationError):
                PodSpec(bad, _config())

    def test_config_coerced_from_dict(self):
        pod = PodSpec("a", _config().to_dict())
        assert isinstance(pod.config, ExperimentConfig)


class TestFleetScenario:
    def test_pod_seed_depends_on_name_not_position(self):
        fleet = _fleet()
        reordered = _fleet(
            pods=(PodSpec("b", _config()), PodSpec("a", _config()))
        )
        assert fleet.pod_seed("a") == reordered.pod_seed("a")
        assert fleet.pod_seed("a") == derive_run_seed(42, "f/a")
        assert fleet.pod_seed("a") != fleet.pod_seed("b")

    def test_boundaries_cover_the_horizon(self):
        assert _fleet().boundaries == (10.0, 20.0, 30.0, 40.0, 50.0, 60.0)

    def test_duration_must_be_whole_windows(self):
        with pytest.raises(ConfigurationError, match="whole number"):
            _fleet(duration_s=55.0)

    def test_window_must_align_with_sampling(self):
        with pytest.raises(ConfigurationError, match="sampling period"):
            _fleet(duration_s=60.0, window_s=5.0)

    def test_duplicate_pod_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            _fleet(pods=(PodSpec("a", _config()), PodSpec("a", _config())))

    def test_roundtrips_through_plain_dicts(self):
        fleet = _fleet(
            optimizer=OptimizerSpec(
                slo_p95_ms=30.0,
                budget=BudgetSpec(usd_per_kilorequest=0.01),
            ),
        )
        rebuilt = FleetScenario.from_dict(fleet.to_dict())
        assert rebuilt.pod_names() == fleet.pod_names()
        assert rebuilt.optimizer == fleet.optimizer
        assert rebuilt.pod_seed("a") == fleet.pod_seed("a")
        assert rebuilt.pods[0].config.seed == fleet.pods[0].config.seed

    def test_from_dict_rejects_unknown_keys(self):
        data = _fleet().to_dict()
        data["sharding"] = 4
        with pytest.raises(ConfigurationError, match="unknown"):
            FleetScenario.from_dict(data)

    def test_counts(self):
        fleet = _fleet()
        assert fleet.server_count() == 2
        assert fleet.vm_count() == 4  # the web pair per pod


class TestOptimizerSpec:
    def test_budget_coerced_from_dict(self):
        spec = OptimizerSpec(budget={"usd_per_kilorequest": 0.01})
        assert isinstance(spec.budget, BudgetSpec)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OptimizerSpec(slo_p95_ms=0.0)
        with pytest.raises(ConfigurationError):
            OptimizerSpec(max_migrations=-1)
        with pytest.raises(ConfigurationError, match="unknown"):
            OptimizerSpec.from_dict({"slo": 10.0})


class TestShardPartition:
    def test_round_robin(self):
        names = ["p1", "p2", "p3", "p4", "p5"]
        assert shard_partition(names, 1) == [names]
        assert shard_partition(names, 2) == [
            ["p1", "p3", "p5"], ["p2", "p4"],
        ]
        assert shard_partition(names, 5) == [[n] for n in names]

    def test_partition_is_a_function_of_the_fleet_only(self):
        names = [f"pod-{i:02d}" for i in range(1, 26)]
        assert shard_partition(names, 4) == shard_partition(names, 4)
        flattened = [
            name for group in shard_partition(names, 4) for name in group
        ]
        assert sorted(flattened) == sorted(names)

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            shard_partition(["a"], 0)
        with pytest.raises(ConfigurationError, match="exceed"):
            shard_partition(["a", "b"], 3)
