"""Tests for the workload abstraction and tenant specs."""

import pytest

from repro.errors import ConfigurationError
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.workload import sort_like_job
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.units import MB
from repro.workloads import (
    MapReduceWorkload,
    TenantSpec,
    build_tenant_workload,
)


class TestTenantSpec:
    def test_default_spec_is_valid(self):
        spec = TenantSpec()
        assert spec.name == "batch"
        assert spec.workload == "mapreduce"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(name="")
        with pytest.raises(ConfigurationError):
            TenantSpec(name="web")  # reserved probe entity
        with pytest.raises(ConfigurationError):
            TenantSpec(workload="quake-server")
        with pytest.raises(ConfigurationError):
            TenantSpec(vcpus=0)
        with pytest.raises(ConfigurationError):
            TenantSpec(job="wordcount")
        with pytest.raises(ConfigurationError):
            TenantSpec(arrival_rate_per_s=0.0)

    def test_hashable_for_cache_keys(self):
        assert hash(TenantSpec()) == hash(TenantSpec())
        assert TenantSpec() != TenantSpec(vcpus=4)

    def test_from_dict_round_trip(self):
        spec = TenantSpec(name="etl", input_mb=128.0, tasks=4)
        clone = TenantSpec.from_dict(
            {f: getattr(spec, f) for f in TenantSpec.__dataclass_fields__}
        )
        assert clone == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            TenantSpec.from_dict({"name": "x", "gpus": 8})

    def test_stream_prefix_is_namespaced(self):
        assert TenantSpec(name="etl").stream_prefix == "tenant.etl"


class TestExternalContexts:
    """MapReduceCluster over caller-provided execution contexts."""

    def _context_cluster(self):
        sim = Simulator()
        streams = RandomStreams(3)
        owned = MapReduceCluster(sim, streams, nodes=2)
        contexts = [node.context for node in owned.nodes]
        attached = MapReduceCluster(
            sim, streams, contexts=contexts, stream="mr.attached"
        )
        return sim, owned, attached

    def test_external_contexts_execute_jobs(self):
        sim, _, attached = self._context_cluster()
        job = MapReduceJob(
            sort_like_job(input_mb=32.0, tasks=4)
        )
        done = []
        attached.submit(job, done.append)
        sim.run_until(3600.0)
        assert done == [job]
        assert attached.tasks_completed == 4 + job.spec.reduce_tasks

    def test_external_cluster_does_not_own_contexts(self):
        _, _, attached = self._context_cluster()
        assert attached.cluster is None
        attached.shutdown()  # must not stop contexts it does not own

    def test_empty_contexts_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            MapReduceCluster(sim, RandomStreams(1), contexts=[])


class TestBuildTenantWorkload:
    def _build(self, spec=None):
        from repro.hardware.cluster import Cluster
        from repro.apps.tier import VirtualizedContext
        from repro.virt.hypervisor import Hypervisor

        sim = Simulator()
        streams = RandomStreams(11)
        cluster = Cluster()
        server = cluster.add_server("host")
        hypervisor = Hypervisor(sim, server)
        spec = spec or TenantSpec(
            input_mb=32.0, tasks=4, arrival_rate_per_s=0.2
        )
        domain = hypervisor.create_domain(
            f"{spec.name}-vm", vcpu_count=spec.vcpus
        )
        context = VirtualizedContext(hypervisor, domain)
        workload = build_tenant_workload(
            sim, streams, spec, [context], horizon_s=120.0
        )
        return sim, hypervisor, domain, workload

    def test_builds_mapreduce_workload(self):
        _, _, _, workload = self._build()
        assert isinstance(workload, MapReduceWorkload)
        assert workload.name == "batch"

    def test_probe_entity_is_tenant_namespace(self):
        _, _, _, workload = self._build()
        probes = workload.probes()
        assert [p.entity for p in probes] == ["batch"]

    def test_jobs_run_inside_the_domain(self):
        sim, hypervisor, domain, workload = self._build()
        workload.start()
        sim.run_until(120.0)
        summary = workload.summary()
        assert summary["jobs_submitted"] > 0
        assert summary["tasks_completed"] > 0
        # Task cycles land on the domain's ledger, not a private server.
        assert hypervisor.server.cpu.ledger.total(domain.owner) > 0
        # The warmed working set is visible to the memory probe.
        assert hypervisor.vm_memory_used(domain) > 0

    def test_tasks_raise_the_domain_worker_gauge(self):
        sim, hypervisor, domain, workload = self._build()
        workload.start()
        observed = []
        for t in range(1, 120):
            sim.run_until(float(t))
            observed.append(domain.active_workers)
        assert max(observed) > 0  # the scheduler saw batch CPU demand

    def test_double_start_rejected(self):
        _, _, _, workload = self._build()
        workload.start()
        with pytest.raises(ConfigurationError):
            workload.start()
