"""Ground-truth attribution tests: precision@1 per fault kind.

Each test injects one fault of a known kind into a scenario where its
contention channel is load-bearing, lets the observer collect the
annotation stream, and asserts the attribution engine ranks that
fault's own ``fault.inject`` annotation as the top cause of the
resulting SLO incident — graded by :func:`repro.obs.grade_attribution`
against the resolved schedule, exactly how the chaos sweep grades
policies.
"""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    detect_and_evacuate_scenario,
    noisy_neighbor_theft_scenario,
)
from repro.experiments.suite import run_suite, suite_grid
from repro.obs import diagnose, grade_attribution

#: One ground-truth run per fault kind.  CPU-side faults (crash,
#: cap_theft, dom0_saturate, bot_flood) need the credit scheduler's
#: vCPU contention switched on (a controller attaches it); the I/O
#: degradations hurt through the device models directly.
GROUND_TRUTH = {
    "crash": dict(
        clients=400, controller="threshold", faults="crash@60"
    ),
    "degrade_disk": dict(
        clients=400, controller="threshold",
        faults="degrade_disk@60:60:64",
    ),
    "degrade_nic": dict(clients=400, faults="degrade_nic@60:60:16"),
    "dom0_saturate": dict(
        clients=400, controller="threshold",
        faults="dom0_saturate@60:60:32",
    ),
    "bot_flood": dict(
        traffic="poisson", rate_rps=300.0, controller="threshold",
        faults="bot_flood@60:60:1500",
    ),
}

_cache = {}


def _ground_truth_run(kind):
    if kind not in _cache:
        if kind == "cap_theft":
            scenario = noisy_neighbor_theft_scenario(
                duration_s=120.0, clients=600, controller="static"
            )
        else:
            kwargs = dict(
                environment="virtualized",
                composition="browsing",
                duration_s=180.0,
                seed=42,
            )
            kwargs.update(GROUND_TRUTH[kind])
            scenario = ExperimentConfig(**kwargs).to_scenario()
        _cache[kind] = run_scenario(scenario, observe=True)
    return _cache[kind]


ALL_KINDS = sorted(GROUND_TRUTH) + ["cap_theft"]


class TestPrecisionAtOne:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_fault_kind_attributed_to_its_injection(self, kind):
        result = _ground_truth_run(kind)
        diagnoses = diagnose(result, slo_ms=100.0)
        assert diagnoses, f"{kind}: the fault raised no SLO incident"
        grade = grade_attribution(result, diagnoses)
        assert grade["faults"] == 1
        assert grade["correct"] == 1, grade["matches"]
        assert grade["precision_at_1"] == 1.0
        assert grade["per_kind"][kind] == {"faults": 1, "correct": 1}

    def test_top_cause_carries_channel_and_evidence(self):
        result = _ground_truth_run("crash")
        diagnoses = diagnose(result, slo_ms=100.0)
        top = diagnoses[0].top
        assert top.annotation.kind == "fault.inject"
        assert top.annotation.channel == "server"
        assert top.annotation.payload["fault"] == "crash"
        assert top.score > 0
        assert top.evidence  # human-readable "why"

    def test_fault_free_run_has_no_fault_candidates(self):
        scenario = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=60.0,
            seed=42,
            clients=100,
        ).to_scenario()
        result = run_scenario(scenario, observe=True)
        assert result.annotations.counts_by_source()["fault"] == 0

    def test_diagnose_requires_an_observed_run(self):
        scenario = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=40.0,
            seed=42,
            clients=80,
        ).to_scenario()
        result = run_scenario(scenario)  # not observed
        with pytest.raises(ConfigurationError):
            diagnose(result, slo_ms=100.0)


class TestDiagnosisDeterminism:
    def test_diagnosis_identical_across_worker_counts(self):
        runs = suite_grid(
            controllers=("threshold",),
            faults=(None, "crash@60"),
            duration_s=120.0,
            seed=7,
            clients=300,
        )
        serial = run_suite(runs, workers=1, diagnose=True)
        pooled = run_suite(runs, workers=2, diagnose=True)
        assert serial.merged_sha256() == pooled.merged_sha256()
        for run_id in serial.summaries:
            assert (
                serial.summaries[run_id].diagnosis
                == pooled.summaries[run_id].diagnosis
            ), run_id

    def test_only_faulted_cells_are_diagnosed(self):
        runs = suite_grid(
            controllers=("threshold",),
            faults=(None, "crash@60"),
            duration_s=120.0,
            seed=7,
            clients=300,
        )
        suite = run_suite(runs, workers=1, diagnose=True)
        faulted = [r for r in suite.summaries if "!" in r]
        clean = [r for r in suite.summaries if "!" not in r]
        assert faulted and clean
        for run_id in faulted:
            assert suite.summaries[run_id].diagnosis is not None
        for run_id in clean:
            assert suite.summaries[run_id].diagnosis is None

    def test_repeat_diagnosis_is_bit_stable(self):
        result = _ground_truth_run("crash")
        first = [d.to_dict() for d in diagnose(result, slo_ms=100.0)]
        second = [d.to_dict() for d in diagnose(result, slo_ms=100.0)]
        assert first == second
