"""Observability on the batched engine: the diagnosis loop end to end.

The obs subsystem was built against the classic engine; this harness
pins the contract that the array-native engine is a drop-in under it —
an observed, faulted, traced batched run yields the same artifact
chain: annotation stream -> incident windows -> ranked causes with the
fault's own injection on top -> exemplar span trees as evidence -> a
manifest recording the engine and the tracing coverage.
"""

from dataclasses import replace

import pytest

from repro.config import ExperimentConfig
from repro.experiments.runner import run_scenario
from repro.obs import (
    build_manifest,
    diagnose,
    grade_attribution,
    incidents_for_result,
    render_manifest,
)


@pytest.fixture(scope="module")
def batched_faulted_result():
    config = ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        duration_s=180.0,
        seed=42,
        clients=400,
        faults="degrade_nic@60:60:16",
        engine="batched",
    )
    spec = replace(config.to_scenario(), trace_sample=0.05)
    return run_scenario(spec, observe=True)


@pytest.fixture(scope="module")
def diagnoses(batched_faulted_result):
    return diagnose(batched_faulted_result, slo_ms=100.0)


class TestAnnotations:
    def test_stream_records_the_fault_lifecycle(
        self, batched_faulted_result
    ):
        annotations = batched_faulted_result.annotations
        kinds = [a.kind for a in annotations]
        assert "fault.inject" in kinds
        assert "fault.clear" in kinds

    def test_fault_annotation_carries_channel(
        self, batched_faulted_result
    ):
        inject = next(
            a
            for a in batched_faulted_result.annotations
            if a.kind == "fault.inject"
        )
        assert inject.channel == "nic"
        assert inject.payload["fault"] == "degrade_nic"
        assert inject.time_s == pytest.approx(60.0)


class TestIncidents:
    def test_nic_degrade_raises_an_incident(
        self, batched_faulted_result
    ):
        per_entity = incidents_for_result(
            batched_faulted_result, slo_ms=100.0
        )
        assert "obs" in per_entity
        first = per_entity["obs"][0]
        # the incident starts during the fault window
        assert 60.0 <= first.start_s <= 120.0


class TestDiagnosis:
    def test_top_cause_is_the_injection(self, diagnoses):
        assert diagnoses
        top = diagnoses[0].top
        assert top.annotation.kind == "fault.inject"
        assert top.annotation.channel == "nic"

    def test_precision_at_one(self, batched_faulted_result, diagnoses):
        grade = grade_attribution(batched_faulted_result, diagnoses)
        assert grade["faults"] == 1
        assert grade["precision_at_1"] == 1.0

    def test_exemplar_traces_cited_as_evidence(self, diagnoses):
        exemplars = diagnoses[0].exemplars
        assert exemplars
        incident = diagnoses[0].incident
        for trace in exemplars:
            assert trace.engine == "batched"
            assert incident.start_s <= trace.end_s <= incident.end_s
        # slowest-first ordering
        totals = [t.total_s for t in exemplars]
        assert totals == sorted(totals, reverse=True)
        payload = diagnoses[0].to_dict()
        assert len(payload["exemplars"]) == len(exemplars)
        assert payload["exemplars"][0]["spans"]

    def test_untraced_run_diagnoses_without_exemplars(self):
        config = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=180.0,
            seed=42,
            clients=400,
            faults="degrade_nic@60:60:16",
            engine="batched",
        )
        result = run_scenario(config.to_scenario(), observe=True)
        entries = diagnose(result, slo_ms=100.0)
        assert entries
        assert entries[0].exemplars == []
        assert entries[0].to_dict()["exemplars"] == []


class TestManifest:
    def test_manifest_records_engine_and_tracing(
        self, batched_faulted_result
    ):
        manifest = build_manifest(batched_faulted_result)
        assert manifest["engine"] == "batched"
        tracing = manifest["tracing"]
        assert tracing["sample_rate"] == pytest.approx(0.05)
        assert tracing["requests_traced"] == len(
            batched_faulted_result.request_traces
        )
        assert tracing["spans"] > tracing["requests_traced"]
        text = render_manifest(manifest)
        assert "batched engine" in text
        assert "request traces" in text

    def test_untraced_manifest_has_no_tracing_block(self):
        config = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=60.0,
            seed=42,
            engine="batched",
        )
        result = run_scenario(config.to_scenario(), observe=True)
        manifest = build_manifest(result)
        assert manifest["engine"] == "batched"
        assert manifest["tracing"] is None
        assert "request traces" not in render_manifest(manifest)
