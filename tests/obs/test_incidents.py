"""Tests for SLO incident detection and violation windows."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults.scoring import score_recovery, violation_windows
from repro.obs.incidents import detect_incidents

WINDOW_S = 2.0


def _series(values, start=0.0):
    times = start + WINDOW_S * (1 + np.arange(len(values)))
    return times, np.asarray(values, dtype=float)


class TestViolationWindows:
    def test_single_episode(self):
        times, values = _series([50, 150, 150, 60, 60])
        window, = violation_windows(times, values, 100.0)
        assert window.start_s == 4.0
        assert window.end_s == 6.0
        assert window.breached_samples == 2
        assert window.width_s == 2 * WINDOW_S

    def test_sustain_windows_bridges_short_dips(self):
        # One compliant sample inside the breach does not split the
        # episode when the close rule needs 3 consecutive OK samples.
        times, values = _series([150, 60, 150, 60, 60, 60, 60])
        windows = violation_windows(times, values, 100.0, sustain_windows=3)
        assert len(windows) == 1
        assert windows[0].start_s == 2.0
        assert windows[0].end_s == 6.0
        assert windows[0].breached_samples == 2

    def test_sustain_one_splits_episodes(self):
        times, values = _series([150, 60, 150, 60])
        windows = violation_windows(times, values, 100.0, sustain_windows=1)
        assert [w.start_s for w in windows] == [2.0, 6.0]

    def test_clean_series_has_no_windows(self):
        times, values = _series([50, 50, 50])
        assert violation_windows(times, values, 100.0) == []

    def test_empty_series(self):
        assert violation_windows([], [], 100.0) == []

    def test_invalid_slo_rejected(self):
        times, values = _series([50])
        with pytest.raises(ConfigurationError):
            violation_windows(times, values, 0.0)

    def test_score_recovery_carries_its_windows(self):
        times, values = _series([50, 150, 150, 60, 60, 60, 150, 60])
        score = score_recovery(times, values, 0.0, 100.0, sustain_windows=3)
        assert len(score.windows) == 2
        assert score.windows[0].start_s == 4.0
        assert score.windows[1].start_s == 14.0
        total = sum(w.width_s for w in score.windows)
        assert total == pytest.approx(score.slo_violation_s)
        assert score.to_dict()["windows"][0]["start_s"] == 4.0


class TestDetectIncidents:
    def test_incident_carries_entity_and_peak(self):
        times, values = _series([50, 150, 400, 150, 60, 60, 60])
        incident, = detect_incidents(
            times, values, 100.0, entity="obs"
        )
        assert incident.entity == "obs"
        assert incident.resource == "p95_ms"
        assert incident.peak_ms == 400.0
        assert incident.samples == 3
        assert incident.slo_ms == 100.0

    def test_min_samples_drops_blips(self):
        times, values = _series([50, 150, 60, 60, 60, 60])
        assert (
            detect_incidents(times, values, 100.0, min_samples=2) == []
        )
        assert (
            len(detect_incidents(times, values, 100.0, min_samples=1)) == 1
        )

    def test_to_dict_is_plain_data(self):
        times, values = _series([150, 150, 60, 60, 60])
        incident, = detect_incidents(times, values, 100.0, entity="fleet")
        record = incident.to_dict()
        assert record["entity"] == "fleet"
        assert record["start_s"] == 2.0
        assert record["width_s"] == 2 * WINDOW_S
