"""Tests for the unified annotation stream (ordering, classification)."""

import pytest

from repro.obs.annotations import (
    FAULT_CHANNELS,
    SOURCE_PRIORITY,
    Annotation,
    AnnotationStream,
    classify_hook_event,
)


class TestClassification:
    @pytest.mark.parametrize(
        "fault,channel",
        sorted(FAULT_CHANNELS.items()),
    )
    def test_fault_events_map_to_their_channel(self, fault, channel):
        source, got, priority = classify_hook_event(
            {"kind": "fault.inject", "fault": fault, "time_s": 10.0}
        )
        assert source == "fault"
        assert got == channel
        assert priority == SOURCE_PRIORITY["fault"]

    def test_server_failed_is_fleet_source(self):
        source, channel, _ = classify_hook_event(
            {"kind": "server_failed", "time_s": 5.0}
        )
        assert (source, channel) == ("fleet", "server")

    @pytest.mark.parametrize(
        "kind", ["migrate_pre_copy", "migrate_downtime", "migrate_in"]
    )
    def test_migration_events(self, kind):
        source, channel, _ = classify_hook_event(
            {"kind": kind, "time_s": 5.0}
        )
        assert (source, channel) == ("migration", "migration")

    def test_control_actions_are_the_fallback(self):
        source, channel, priority = classify_hook_event(
            {"kind": "set_cap", "domain": "web-vm", "time_s": 5.0}
        )
        assert (source, channel) == ("control", "control")
        assert priority == SOURCE_PRIORITY["control"]


class TestOrdering:
    def test_same_timestamp_orders_by_source_priority_then_seq(self):
        stream = AnnotationStream()
        # Insert in the "wrong" order on purpose: at one timestamp the
        # fault transition must sort before fleet, migration, control.
        stream.observe("s1", {"kind": "set_cap", "time_s": 10.0})
        stream.observe("s1", {"kind": "migrate_in", "time_s": 10.0})
        stream.observe(
            "s1", {"kind": "fault.inject", "fault": "crash", "time_s": 10.0}
        )
        stream.observe("s1", {"kind": "server_failed", "time_s": 10.0})
        kinds = [a.kind for a in stream.sorted()]
        assert kinds == [
            "fault.inject", "server_failed", "migrate_in", "set_cap",
        ]

    def test_equal_priority_ties_break_by_insertion_seq(self):
        stream = AnnotationStream()
        stream.observe("s1", {"kind": "set_weight", "time_s": 4.0})
        stream.observe("s1", {"kind": "set_cap", "time_s": 4.0})
        first, second = stream.sorted()
        assert (first.kind, second.kind) == ("set_weight", "set_cap")
        assert first.seq < second.seq

    def test_time_dominates_priority(self):
        stream = AnnotationStream()
        stream.observe(
            "s1", {"kind": "fault.inject", "fault": "crash", "time_s": 9.0}
        )
        stream.observe("s1", {"kind": "set_cap", "time_s": 3.0})
        assert [a.time_s for a in stream.sorted()] == [3.0, 9.0]


class TestStreamQueries:
    def _stream(self):
        stream = AnnotationStream()
        stream.observe(
            "s1", {"kind": "fault.inject", "fault": "crash", "time_s": 5.0}
        )
        stream.observe("s2", {"kind": "set_cap", "time_s": 8.0})
        stream.observe("s1", {"kind": "migrate_in", "time_s": 12.0})
        return stream

    def test_between_is_inclusive(self):
        stream = self._stream()
        assert [a.time_s for a in stream.between(5.0, 8.0)] == [5.0, 8.0]

    def test_counts_are_zero_initialized_per_source(self):
        counts = AnnotationStream().counts_by_source()
        assert counts == {
            "fault": 0, "fleet": 0, "migration": 0, "control": 0,
        }

    def test_counts_by_channel(self):
        assert self._stream().counts_by_channel() == {
            "server": 1, "control": 1, "migration": 1,
        }

    def test_to_dicts_round_trips_the_sort_order(self):
        records = self._stream().to_dicts()
        assert [r["time_s"] for r in records] == [5.0, 8.0, 12.0]
        assert records[0]["server"] == "s1"
        assert records[0]["payload"]["fault"] == "crash"


class TestAnnotationValue:
    def test_sort_key_shape(self):
        annotation = Annotation(
            time_s=2.0, source="fault", kind="fault.inject",
            channel="server", priority=0, seq=7,
        )
        assert annotation.sort_key == (2.0, 0, 7)

    def test_to_dict_is_plain_data(self):
        annotation = Annotation(
            time_s=2.0, source="control", kind="set_cap",
            channel="control", server="s1", domain="web-vm",
            priority=3, seq=0, payload={"old": 1.0, "new": 2.0},
        )
        record = annotation.to_dict()
        assert record["domain"] == "web-vm"
        assert record["payload"] == {"old": 1.0, "new": 2.0}
