"""Request-tracing tests: sampler, span trees, anatomy, bit-identity.

The tracing contract has three legs:

* **sampling is deterministic and RNG-free** — the splitmix64 decision
  is a pure function of ``(seed, session, seq)``, with the vectorized
  form bit-equal to the scalar form (so both engines sample the same
  request set);
* **span trees are physical** — per-hop queue / pure-service /
  virtualization-ready components are non-negative, time-ordered and
  sum (with the network hops) to the request's response time;
* **tracing never perturbs the physics** — a run's fingerprint is
  identical with sampling off and on, on either engine.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.baseline import result_fingerprint
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.monitoring.export import (
    request_traces_to_chrome_json,
    request_traces_to_jsonl,
)
from repro.obs.tracing import (
    RequestTracer,
    TraceSampler,
    critical_path,
    latency_anatomy,
    render_anatomy,
    render_tail_attribution,
    render_trace,
    slowest_traces,
    tail_attribution,
    traces_in_window,
)

from dataclasses import replace


def _traced_run(engine, rate=0.05, duration_s=60.0, seed=7, clients=None):
    spec = scenario(
        "virtualized", "browsing", duration_s=duration_s, seed=seed,
        clients=clients,
    )
    spec = replace(spec, engine=engine, trace_sample=rate)
    return run_scenario(spec)


@pytest.fixture(scope="module")
def classic_result():
    return _traced_run("classic")


@pytest.fixture(scope="module")
def batched_result():
    return _traced_run("batched")


class TestSampler:
    def test_scalar_and_array_bit_equal(self):
        sampler = TraceSampler(seed=42, rate=0.1)
        sids = np.arange(0, 4000, dtype=np.int64)
        seqs = (sids * 7 + 3) % 211
        vector = sampler.sample_array(sids, seqs)
        scalar = np.array(
            [sampler.sample(int(s), int(q)) for s, q in zip(sids, seqs)]
        )
        assert np.array_equal(vector, scalar)

    def test_rate_hits_expected_fraction(self):
        sampler = TraceSampler(seed=3, rate=0.05)
        sids = np.arange(0, 50_000)
        picked = sampler.sample_array(sids, np.ones_like(sids))
        assert 0.04 < picked.mean() < 0.06

    def test_deterministic_across_instances(self):
        a = TraceSampler(seed=9, rate=0.2)
        b = TraceSampler(seed=9, rate=0.2)
        assert [a.sample(i, 1) for i in range(100)] == [
            b.sample(i, 1) for i in range(100)
        ]
        c = TraceSampler(seed=10, rate=0.2)
        assert [a.sample(i, 1) for i in range(200)] != [
            c.sample(i, 1) for i in range(200)
        ]

    def test_edge_rates(self):
        assert TraceSampler(1, 0.0).sample(5, 5) is False
        assert TraceSampler(1, 1.0).sample(5, 5) is True
        assert TraceSampler(1, 1.0).sample_array(
            np.arange(4), np.arange(4)
        ).all()
        with pytest.raises(ConfigurationError):
            TraceSampler(1, 1.5)


def _assert_physical(trace, engine):
    assert trace.engine == engine
    assert trace.spans, "trace without spans"
    assert trace.end_s > trace.start_s
    previous_start = trace.start_s
    for span in trace.spans:
        assert span.queue_s >= 0.0
        assert span.service_s >= 0.0
        assert span.ready_s >= 0.0
        assert span.start_s >= previous_start - 1e-9
        previous_start = span.start_s
        assert span.device in ("cpu", "disk", "net")
    # hop durations tile the request: summed components equal the
    # response time (hops are sequential in both engines).
    total = sum(s.queue_s + s.service_s + s.ready_s for s in trace.spans)
    assert total == pytest.approx(trace.total_s, rel=1e-9, abs=1e-12)


class TestClassicEngineSpans:
    def test_sampled_requests_have_physical_span_trees(
        self, classic_result
    ):
        traces = classic_result.request_traces
        assert len(traces) > 50
        for trace in traces:
            _assert_physical(trace, "classic")

    def test_sampled_set_matches_sampler_decision(self, classic_result):
        sampler = TraceSampler(seed=7, rate=0.05)
        for trace in classic_result.request_traces:
            assert sampler.sample(trace.session_id, trace.seq)

    def test_contended_run_accrues_ready_time(self):
        # Ready time needs CPU contention: consolidate with a
        # CPU-bound tenant and arm the scheduler's contention
        # refinement (a controller-bearing testbed does).
        from repro.config import ExperimentConfig
        from repro.workloads.base import TenantSpec

        config = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=60.0,
            seed=7,
            clients=40,
            controller="static",
            tenants=(
                TenantSpec(
                    job="grep",
                    input_mb=24.0,
                    tasks=32,
                    arrival_rate_per_s=0.3,
                ),
            ),
        )
        spec = replace(config.to_scenario(), trace_sample=0.3)
        result = run_scenario(spec)
        ready = sum(
            s.ready_s
            for t in result.request_traces
            for s in t.spans
        )
        assert ready > 0.0

    def test_web_and_db_hops_present(self, classic_result):
        names = {
            s.name
            for t in classic_result.request_traces
            for s in t.spans
        }
        assert "cpu.web" in names
        assert "cpu.db" in names
        assert "net.request" in names


class TestBatchedEngineSpans:
    def test_sampled_requests_have_physical_span_trees(
        self, batched_result
    ):
        traces = batched_result.request_traces
        assert len(traces) > 50
        for trace in traces:
            _assert_physical(trace, "batched")

    def test_sampled_set_matches_sampler_decision(self, batched_result):
        sampler = TraceSampler(seed=7, rate=0.05)
        for trace in batched_result.request_traces:
            assert sampler.sample(trace.session_id, trace.seq)

    def test_trace_volume_comparable_across_engines(
        self, classic_result, batched_result
    ):
        classic = len(classic_result.request_traces)
        batched = len(batched_result.request_traces)
        assert batched == pytest.approx(classic, rel=0.25)


class TestPhysicsUnperturbed:
    """Fingerprints are identical with sampling off and on."""

    @pytest.mark.parametrize("engine", ["classic", "batched"])
    def test_traced_run_bit_identical_to_untraced(self, engine):
        base = scenario(
            "virtualized", "browsing", duration_s=40.0, seed=11
        )
        untraced = run_scenario(replace(base, engine=engine))
        traced = run_scenario(
            replace(base, engine=engine, trace_sample=0.1)
        )
        assert traced.request_traces
        assert result_fingerprint(traced) == result_fingerprint(untraced)

    def test_zero_rate_collects_nothing(self):
        base = scenario(
            "virtualized", "browsing", duration_s=20.0, seed=11
        )
        result = run_scenario(base)
        assert result.request_traces is None


class TestAnatomyAndAttribution:
    def test_latency_anatomy_decomposes_each_percentile(
        self, classic_result
    ):
        anatomy = latency_anatomy(
            classic_result.request_traces, percentiles=(50.0, 95.0, 99.0)
        )
        assert anatomy.percentiles == (50.0, 95.0, 99.0)
        assert anatomy.totals[99.0] >= anatomy.totals[50.0]
        for p in anatomy.percentiles:
            decomposed = sum(row[p] for row in anatomy.rows.values())
            assert decomposed == pytest.approx(
                anatomy.totals[p], rel=1e-6
            )
        assert "p99" in render_anatomy(anatomy)

    def test_tail_attribution_names_a_channel(self, classic_result):
        attribution = tail_attribution(
            classic_result.request_traces, tail_percentile=99.0
        )
        assert attribution.gap_s > 0
        assert attribution.contributions[0][:2] == attribution.channel
        # per-channel deltas account for the whole gap
        assert sum(
            delta for _, _, delta in attribution.contributions
        ) == pytest.approx(attribution.gap_s, rel=1e-6)
        name, component = attribution.channel
        assert component in ("queue", "service", "ready")
        assert name in render_tail_attribution(attribution)

    def test_critical_path_covers_total(self, classic_result):
        trace = slowest_traces(classic_result.request_traces, count=1)[0]
        path = critical_path(trace)
        assert sum(seconds for _, seconds in path) == pytest.approx(
            trace.total_s, rel=1e-6
        )
        assert "| path" in render_trace(trace)

    def test_window_and_slowest_helpers(self, classic_result):
        traces = classic_result.request_traces
        window = traces_in_window(traces, 10.0, 40.0)
        assert all(10.0 <= t.end_s <= 40.0 for t in window)
        slowest = slowest_traces(traces, count=5)
        assert len(slowest) == 5
        assert slowest[0].total_s >= slowest[-1].total_s


class TestExports:
    def test_jsonl_round_trips(self, batched_result):
        text = request_traces_to_jsonl(batched_result.request_traces)
        lines = [json.loads(line) for line in text.splitlines()]
        assert len(lines) == len(batched_result.request_traces)
        first = lines[0]
        assert first["engine"] == "batched"
        assert first["spans"][0]["device"] in ("cpu", "disk", "net")

    def test_chrome_trace_is_loadable(self, classic_result):
        document = json.loads(
            request_traces_to_chrome_json(classic_result.request_traces)
        )
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        complete = [e for e in events if e["ph"] == "X"]
        # one envelope event per trace plus one per span
        expected = len(classic_result.request_traces) + sum(
            len(t.spans) for t in classic_result.request_traces
        )
        assert len(complete) == expected
        for event in complete:
            assert event["dur"] >= 0.0


class TestTracerBookkeeping:
    def test_tracer_counts_decisions(self):
        tracer = RequestTracer(seed=5, rate=0.5, engine="classic")
        assert tracer.sampler.rate == 0.5
        assert tracer.traces == []
