"""Tests for the observation recorder (physics-neutrality, series)."""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    detect_and_evacuate_scenario,
    scenario,
)
from repro.monitoring.export import annotations_to_jsonl
from repro.obs.recorder import OBS_PRIORITY


@pytest.fixture(scope="module")
def paired_runs():
    """The same faulted fleet drill, unobserved and observed."""
    spec = detect_and_evacuate_scenario(
        duration_s=150.0, seed=11, clients=120
    )
    return run_scenario(spec), run_scenario(spec, observe=True)


class TestPhysicsNeutrality:
    def test_every_preexisting_series_is_bit_identical(self, paired_runs):
        plain, observed = paired_runs
        for entity, resource in plain.traces.keys():
            a = plain.traces.get(entity, resource)
            b = observed.traces.get(entity, resource)
            assert np.array_equal(a.times, b.times), (entity, resource)
            assert np.array_equal(a.values, b.values), (entity, resource)

    def test_client_outcomes_unchanged(self, paired_runs):
        plain, observed = paired_runs
        assert observed.requests_completed == plain.requests_completed
        assert (
            observed.mean_response_time_s == plain.mean_response_time_s
        )

    def test_observation_only_adds_obs_series(self, paired_runs):
        plain, observed = paired_runs
        added = set(observed.traces.keys()) - set(plain.traces.keys())
        assert added and all(entity == "obs" for entity, _ in added)

    def test_priority_slot_is_unique(self):
        from repro.faults.controller import FAULT_PRIORITY

        # Recorder tick 30, elastic tick 40, fleet tick 45 (literals
        # at their _arm call sites), fault transitions 50.
        taken = {30, 40, 45, FAULT_PRIORITY}
        assert OBS_PRIORITY not in taken
        assert 45 < OBS_PRIORITY < FAULT_PRIORITY


class TestObsSeries:
    def test_obs_p95_matches_the_fleet_controllers(self, paired_runs):
        _, observed = paired_runs
        obs = observed.traces.get("obs", "p95_ms")
        fleet = observed.traces.get("fleet", "p95_ms")
        assert np.array_equal(obs.times, fleet.times)
        assert np.array_equal(obs.values, fleet.values)

    def test_event_counts_are_cumulative_per_source(self, paired_runs):
        _, observed = paired_runs
        total = observed.traces.get("obs", "events").values
        assert (np.diff(total) >= 0).all()
        assert total[-1] == len(observed.annotations)
        by_source = observed.annotations.counts_by_source()
        for source, count in by_source.items():
            series = observed.traces.get("obs", f"{source}_events")
            assert series.values[-1] == count

    def test_report_lands_in_control_reports(self, paired_runs):
        _, observed = paired_runs
        report = observed.control_reports["obs"]
        assert report["kind"] == "obs"
        assert report["events"] == len(observed.annotations)
        assert report["servers"] == ["cloud-1", "cloud-2"]
        assert sum(report["by_source"].values()) == report["events"]

    def test_unobserved_run_has_no_annotations(self, paired_runs):
        plain, _ = paired_runs
        assert plain.annotations is None
        assert "obs" not in (plain.control_reports or {})


class TestRunnerMetadata:
    def test_phases_and_event_counts(self, paired_runs):
        _, observed = paired_runs
        assert observed.events_fired > 0
        assert set(observed.phases_s) == {"build", "simulate", "collect"}
        assert all(v >= 0 for v in observed.phases_s.values())


class TestBareMetalObservation:
    def test_observe_works_without_a_hypervisor(self):
        result = run_scenario(
            scenario("bare-metal", "browsing", duration_s=40.0),
            observe=True,
        )
        # No hooks to tap, but the SLO probe still samples.
        assert len(result.annotations) == 0
        assert len(result.traces.get("obs", "p95_ms")) > 0


class TestJsonlExport:
    def test_round_trip_is_ordered_and_parseable(self, paired_runs):
        import json

        _, observed = paired_runs
        text = annotations_to_jsonl(observed.annotations)
        records = [json.loads(line) for line in text.splitlines()]
        assert len(records) == len(observed.annotations)
        keys = [
            (r["time_s"], r["priority"], r["seq"]) for r in records
        ]
        assert keys == sorted(keys)

    def test_accepts_plain_dicts(self):
        text = annotations_to_jsonl([{"time_s": 1.0}, {"time_s": 2.0}])
        assert text.count("\n") == 2

    def test_empty_stream_exports_empty(self):
        assert annotations_to_jsonl([]) == ""
