"""Tests for chaos-sweep ranking and the run manifest."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.suite import run_suite, suite_grid
from repro.obs import build_manifest, render_manifest
from repro.obs.ranking import (
    policy_ranking_data,
    render_policy_ranking_table,
    write_ranking_figures,
)


@pytest.fixture(scope="module")
def chaos_suite():
    """A 2-policy x faulted chaos sweep (watch-only vs threshold)."""
    runs = suite_grid(
        controllers=(None, "threshold"),
        faults=("crash@60",),
        duration_s=120.0,
        seed=7,
        clients=300,
    )
    return run_suite(runs, workers=1, diagnose=True)


class TestPolicyRanking:
    def test_one_row_per_diagnosed_cell(self, chaos_suite):
        rows = policy_ranking_data(chaos_suite)
        assert len(rows) == 2
        assert {row["run_id"] for row in rows} == set(
            chaos_suite.summaries
        )
        for row in rows:
            assert row["incidents"] >= 0
            assert row["usd_per_kilorequest"] > 0
            assert row["precision_at_1"] is not None

    def test_rows_rank_recovered_before_unrecovered(self, chaos_suite):
        rows = policy_ranking_data(chaos_suite)
        recovered_flags = [row["recovered"] for row in rows]
        assert recovered_flags == sorted(recovered_flags, reverse=True)

    def test_table_renders_every_run(self, chaos_suite):
        table = render_policy_ranking_table(chaos_suite)
        for run_id in chaos_suite.summaries:
            assert run_id[:40] in table
        assert "$/kRq" in table and "p@1" in table

    def test_undiagnosed_suite_is_rejected(self):
        runs = suite_grid(duration_s=30.0, seed=3, clients=60)
        suite = run_suite(runs, workers=1)
        with pytest.raises(ConfigurationError):
            policy_ranking_data(suite)

    def test_figures_written_per_metric(self, chaos_suite, tmp_path):
        paths = write_ranking_figures(chaos_suite, str(tmp_path))
        assert len(paths) == 4
        names = {path.rsplit("/", 1)[-1].split(".")[0] for path in paths}
        assert names == {
            "ranking_slo_violation_s",
            "ranking_recovery_s",
            "ranking_usd_per_kilorequest",
            "ranking_precision_at_1",
        }
        for path in paths:
            with open(path, "rb") as handle:
                assert handle.read(16)


class TestManifest:
    @pytest.fixture(scope="class")
    def observed_result(self):
        from repro.config import ExperimentConfig

        spec = ExperimentConfig(
            environment="virtualized",
            composition="browsing",
            duration_s=60.0,
            seed=5,
            clients=100,
            controller="threshold",
            faults="crash@30",
        ).to_scenario()
        return run_scenario(spec, observe=True)

    def test_manifest_fields(self, observed_result):
        manifest = build_manifest(observed_result)
        assert len(manifest["config_fingerprint"]) == 64
        assert len(manifest["trace_sha256"]) == 64
        assert manifest["events_fired"] > 0
        assert set(manifest["phases_s"]) == {
            "build", "simulate", "collect",
        }
        assert manifest["series"]["by_entity"]["obs"] == 6
        assert manifest["annotations"]["total"] == len(
            observed_result.annotations
        )
        assert manifest["subsystems"]["faults"]["injected"] == 1
        assert "billing" not in manifest["subsystems"]

    def test_fingerprint_tracks_the_cache_key(self, observed_result):
        from repro.obs.manifest import config_fingerprint

        scenario = observed_result.scenario
        assert config_fingerprint(scenario) == config_fingerprint(
            scenario
        )

    def test_render_mentions_the_headline_numbers(self, observed_result):
        manifest = build_manifest(observed_result)
        text = render_manifest(manifest)
        assert manifest["config_fingerprint"][:16] in text
        assert manifest["trace_sha256"][:16] in text
        assert "annotations" in text
        assert "[faults]" in text
