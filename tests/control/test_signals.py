"""SignalTap windowing semantics."""

import pytest

from repro.control.signals import SignalTap
from repro.hardware.cluster import Cluster
from repro.rubis.client import SessionStats
from repro.virt.hypervisor import Hypervisor


class _Response:
    """Minimal stand-in for a completed Request."""

    def __init__(self, response_time):
        self.response_time = response_time


def record(stats, response_time, count=1):
    for _ in range(count):
        stats.record_response(_Response(response_time))


@pytest.fixture
def tap_setup(sim):
    server = Cluster().add_server("cloud-1")
    hypervisor = Hypervisor(sim, server)
    hypervisor.create_domain("web-vm", vcpu_count=2)
    stats = SessionStats()
    tap = SignalTap(sim, stats, hypervisor, ("web-vm",), window_s=2.0)
    return sim, stats, hypervisor, tap


class TestWindows:
    def test_p95_covers_only_new_samples(self, tap_setup):
        _, stats, _, tap = tap_setup
        record(stats, 0.010, count=99)
        record(stats, 0.100)
        first = tap.sample()
        assert first.completed == 100
        assert first.p95_s == pytest.approx(0.010, rel=0.2)
        record(stats, 0.500, count=10)
        second = tap.sample()
        assert second.completed == 10
        assert second.p95_s == pytest.approx(0.500)

    def test_empty_window_carries_previous_p95(self, tap_setup):
        _, stats, _, tap = tap_setup
        record(stats, 0.200, count=20)
        tap.sample()
        wedged = tap.sample()  # nothing completed: overload, not health
        assert wedged.completed == 0
        assert wedged.p95_s == pytest.approx(0.200)

    def test_window_survives_the_reservoir_cap(self, tap_setup):
        # SessionStats.response_times_s stops growing at MAX_SAMPLES;
        # the tap's live sink must keep seeing completions anyway
        # (long-horizon runs would otherwise blind the controller).
        _, stats, _, tap = tap_setup
        stats.response_times_s = [0.001] * SessionStats.MAX_SAMPLES
        record(stats, 0.300, count=5)
        assert len(stats.response_times_s) == SessionStats.MAX_SAMPLES
        sample = tap.sample()
        assert sample.completed == 5
        assert sample.p95_s == pytest.approx(0.300)

    def test_two_taps_each_see_every_response(self, tap_setup):
        sim, stats, hypervisor, tap = tap_setup
        other = SignalTap(
            sim, stats, hypervisor, ("web-vm",), window_s=2.0
        )
        record(stats, 0.050, count=7)
        assert tap.sample().completed == 7
        assert other.sample().completed == 7

    def test_domain_signals_follow_actuation(self, tap_setup):
        _, _, hypervisor, tap = tap_setup
        domain = hypervisor.domain("web-vm")
        before = tap.sample().domains["web-vm"]
        assert before.cap_cores == 0.0
        assert before.online_vcpus == 2
        hypervisor.set_cap_cores(domain, 1.0)
        hypervisor.set_vcpus(domain, 1)
        after = tap.sample().domains["web-vm"]
        assert after.cap_cores == 1.0
        assert after.online_vcpus == 1

    def test_closed_loop_has_no_shed_signal(self, tap_setup):
        _, _, _, tap = tap_setup
        sample = tap.sample()
        assert sample.offered == 0
        assert sample.shed_fraction == 0.0
        assert sample.session_budget is None

    def test_sampling_draws_no_events(self, tap_setup):
        sim, stats, _, tap = tap_setup
        record(stats, 0.010, count=3)
        pending = sim.pending_events
        tap.sample()
        assert sim.pending_events == pending
