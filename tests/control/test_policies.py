"""Policy behaviour: hysteresis, target tracking, predictive lead."""

import pytest

from repro.control.policies import (
    PidPolicy,
    PredictivePolicy,
    StaticPolicy,
    ThresholdPolicy,
    build_policy,
)
from repro.control.signals import ControlSignals
from repro.control.spec import ControllerSpec


def signals(
    p95_ms=0.0, offered=0, shed=0, time_s=0.0, window_s=2.0
) -> ControlSignals:
    return ControlSignals(
        time_s=time_s,
        window_s=window_s,
        completed=10,
        p95_s=p95_ms / 1000.0,
        mean_s=p95_ms / 2000.0,
        offered=offered,
        shed=shed,
        shed_fraction=(shed / offered) if offered else 0.0,
        in_flight=0,
        session_budget=None,
        domains={},
    )


SPEC = ControllerSpec(
    p95_high_ms=100.0,
    p95_low_ms=25.0,
    shed_high=0.02,
    up_step=0.34,
    down_step=0.2,
    calm_windows=3,
)


class TestStatic:
    def test_always_zero(self):
        policy = StaticPolicy()
        assert policy.update(signals(p95_ms=10_000.0, shed=99,
                                     offered=100)) == 0.0


class TestThreshold:
    def test_scales_up_on_hot_p95(self):
        policy = ThresholdPolicy(SPEC)
        level = policy.update(signals(p95_ms=200.0))
        assert level == pytest.approx(0.34)
        assert policy.update(signals(p95_ms=200.0)) > level

    def test_scales_up_on_shedding(self):
        policy = ThresholdPolicy(SPEC)
        assert policy.update(signals(offered=100, shed=10)) > 0.0

    def test_saturates_at_one(self):
        policy = ThresholdPolicy(SPEC)
        for _ in range(10):
            level = policy.update(signals(p95_ms=500.0))
        assert level == 1.0

    def test_scale_down_needs_consecutive_calm_windows(self):
        policy = ThresholdPolicy(SPEC)
        for _ in range(3):
            policy.update(signals(p95_ms=500.0))
        assert policy.level == pytest.approx(1.0, abs=0.03)
        # Two calm windows then a neutral one: no scale-down yet.
        policy.update(signals(p95_ms=5.0))
        policy.update(signals(p95_ms=5.0))
        before = policy.level
        policy.update(signals(p95_ms=50.0))  # neutral resets the streak
        assert policy.level == before
        for _ in range(3):
            policy.update(signals(p95_ms=5.0))
        assert policy.level < before


class TestPid:
    def test_tracks_error_upward(self):
        policy = PidPolicy(SPEC)
        level = 0.0
        for _ in range(5):
            level = policy.update(signals(p95_ms=300.0))  # 5x target
        assert level > 0.3

    def test_decays_below_target(self):
        policy = PidPolicy(SPEC)
        for _ in range(8):
            policy.update(signals(p95_ms=600.0))
        high = policy.level
        for _ in range(20):
            policy.update(signals(p95_ms=1.0))
        assert policy.level < high

    def test_shed_error_dominates_when_latency_is_calm(self):
        policy = PidPolicy(SPEC)
        level = policy.update(signals(p95_ms=1.0, offered=100, shed=50))
        assert level > 0.0

    def test_level_clamped(self):
        policy = PidPolicy(SPEC)
        for _ in range(50):
            level = policy.update(signals(p95_ms=10_000.0))
        assert level == 1.0


class TestPredictive:
    def test_leads_a_ramp_before_thresholds_trip(self):
        spec = ControllerSpec(kind="predictive", surge_ref_ratio=10.0)
        policy = PredictivePolicy(spec)
        # Calm history, then a steep offered-rate ramp with p95 still
        # healthy: the AR forecast must raise the level before the
        # reactive thresholds see anything wrong.
        level = 0.0
        for i in range(20):
            level = policy.update(
                signals(p95_ms=5.0, offered=20, time_s=2.0 * i)
            )
        assert level == 0.0
        for i, offered in enumerate((40, 80, 160, 320, 640)):
            level = policy.update(
                signals(p95_ms=5.0, offered=offered, time_s=40.0 + 2.0 * i)
            )
        assert policy.predicted_level > 0.0
        assert level > 0.0

    def test_constant_history_falls_back_to_reactive(self):
        spec = ControllerSpec(kind="predictive")
        policy = PredictivePolicy(spec)
        for _ in range(30):
            level = policy.update(signals(p95_ms=5.0, offered=50))
        assert level == 0.0  # AR fit degenerate, reactive calm

    def test_never_below_reactive_demand(self):
        spec = ControllerSpec(kind="predictive")
        policy = PredictivePolicy(spec)
        for _ in range(20):
            policy.update(signals(p95_ms=5.0, offered=50))
        level = policy.update(
            signals(p95_ms=1000.0, offered=50)
        )
        assert level >= spec.up_step - 1e-12


class TestFactory:
    def test_builds_every_kind(self):
        assert isinstance(
            build_policy(ControllerSpec(kind="static")), StaticPolicy
        )
        assert isinstance(
            build_policy(ControllerSpec(kind="threshold")), ThresholdPolicy
        )
        assert isinstance(build_policy(ControllerSpec(kind="pid")), PidPolicy)
        assert isinstance(
            build_policy(ControllerSpec(kind="predictive")),
            PredictivePolicy,
        )
