"""ElasticController end-to-end behaviour inside real runs."""

import numpy as np
import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    autoscaled_consolidated_scenario,
    autoscaled_flash_crowd_scenario,
)
from repro.monitoring.export import (
    read_columnar_npz,
    trace_set_to_csv,
    write_columnar_npz,
)

DURATION_S = 60.0
CLIENTS = 200


@pytest.fixture(scope="module")
def threshold_result():
    return run_scenario(
        autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="threshold"
        )
    )


@pytest.fixture(scope="module")
def static_result():
    return run_scenario(
        autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="static"
        )
    )


class TestControlSeries:
    def test_control_series_join_the_trace_set(self, threshold_result):
        traces = threshold_result.traces
        assert "control" in traces.entities()
        for resource in (
            "level",
            "p95_ms",
            "actions",
            "offered_rps",
            "shed_fraction",
            "session_budget",
            "web-vm.cap_cores",
            "web-vm.vcpus",
            "web-vm.memory_mb",
            "db-vm.cap_cores",
        ):
            assert traces.has("control", resource), resource

    def test_control_series_align_with_sampler_grid(self, threshold_result):
        traces = threshold_result.traces
        web = traces.get("web", "cpu_cycles")
        level = traces.get("control", "level")
        assert len(level) == len(web)
        assert np.array_equal(level.times, web.times)

    def test_wide_csv_export_includes_control_columns(
        self, threshold_result
    ):
        text = trace_set_to_csv(threshold_result.traces)
        header = text.splitlines()[0]
        assert "control:level" in header
        assert "control:web-vm.cap_cores" in header

    def test_capacity_stays_inside_the_band(self, threshold_result):
        spec = threshold_result.scenario.controller
        for domain in ("web-vm", "db-vm"):
            caps = threshold_result.traces.get(
                "control", f"{domain}.cap_cores"
            ).values
            assert caps.min() >= spec.min_cap_cores - 1e-9
            assert caps.max() <= spec.max_cap_cores + 1e-9
            vcpus = threshold_result.traces.get(
                "control", f"{domain}.vcpus"
            ).values
            assert vcpus.min() >= spec.min_vcpus
            assert vcpus.max() <= spec.max_vcpus
            memory = threshold_result.traces.get(
                "control", f"{domain}.memory_mb"
            ).values
            assert memory.min() >= spec.balloon_min_mb - 1e-9
            assert memory.max() <= spec.balloon_max_mb + 1e-9

    def test_surge_actually_scales_capacity(self, threshold_result):
        caps = threshold_result.traces.get(
            "control", "web-vm.cap_cores"
        ).values
        spec = threshold_result.scenario.controller
        assert caps.max() > spec.min_cap_cores
        report = threshold_result.control_reports["control"]
        assert report["num_actions"] > 0
        assert set(report["actions_by_kind"]) >= {"set_cap", "balloon"}

    def test_session_budget_follows_ballooned_memory(
        self, threshold_result
    ):
        spec = threshold_result.scenario.controller
        budget = threshold_result.traces.get(
            "control", "session_budget"
        ).values
        memory = threshold_result.traces.get(
            "control", "web-vm.memory_mb"
        ).values
        expected = np.maximum(
            1, np.round(spec.sessions_per_gb * memory / 1024.0)
        )
        assert np.array_equal(budget, expected)

    def test_static_controller_never_acts_after_initial(
        self, static_result
    ):
        report = static_result.control_reports["control"]
        level = static_result.traces.get("control", "level").values
        actions = static_result.traces.get("control", "actions").values
        assert np.all(level == 0.0)
        assert np.all(actions == 0.0)
        # Only the initial provisioning (level-0 sizing) acted.
        caps = static_result.traces.get(
            "control", "web-vm.cap_cores"
        ).values
        spec = static_result.scenario.controller
        assert np.all(caps == spec.min_cap_cores)
        assert report["num_actions"] == 6  # 2 domains x cap/vcpus/balloon


class TestColumnarMerge:
    def test_columnar_gains_control_columns_and_round_trips(self, tmp_path):
        spec = autoscaled_flash_crowd_scenario(
            duration_s=30.0, clients=100, controller="threshold"
        )
        result = run_scenario(
            spec, collect_full_registry=True, columnar_rows=True
        )
        columns = [
            name for name in result.columnar.columns
            if name.startswith("control|")
        ]
        assert "control|level" in columns
        assert "control|web-vm.cap_cores" in columns
        path = tmp_path / "controlled.npz"
        write_columnar_npz(result.columnar, str(path))
        loaded = read_columnar_npz(str(path))
        assert loaded.columns == result.columnar.columns
        assert np.array_equal(
            loaded.column("control|level"),
            result.columnar.column("control|level"),
        )


class TestTenantController:
    def test_inverted_tenant_controller_throttles_under_load(self):
        from dataclasses import replace

        from repro.control.spec import ControllerSpec
        from repro.experiments.scenarios import consolidated_scenario
        from repro.workloads.base import TenantSpec

        throttle = ControllerSpec(
            kind="threshold",
            invert=True,
            min_cap_cores=1.0,
            max_cap_cores=8.0,
            step_cores=1.0,
            min_vcpus=1,
            max_vcpus=8,
            p95_high_ms=50.0,
            p95_low_ms=10.0,
            up_step=1.0,
            calm_windows=15,
        )
        base = consolidated_scenario(
            duration_s=60.0,
            clients=300,
            tenants=(TenantSpec(controller=throttle),),
            name="throttled_batch",
        )
        result = run_scenario(base)
        caps = result.traces.get(
            "control.batch", "batch-vm.cap_cores"
        ).values
        # Inverted mapping: level 0 = full capacity; under web-SLO
        # violations the batch VM is capped down.
        assert caps[0] == throttle.max_cap_cores
        assert caps.min() < throttle.max_cap_cores
        report = result.control_reports["control.batch"]
        assert report["num_actions"] > 0
