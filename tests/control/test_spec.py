"""ControllerSpec validation, serialization and scenario integration."""

import pytest

from repro.config import ExperimentConfig
from repro.control.spec import CONTROLLER_KINDS, ControllerSpec
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    autoscaled_consolidated_scenario,
    autoscaled_flash_crowd_scenario,
    scenario,
)
from repro.workloads.base import TenantSpec

from dataclasses import replace


class TestValidation:
    def test_default_spec_valid(self):
        spec = ControllerSpec()
        assert spec.kind == "threshold"
        assert spec.active

    def test_static_is_inactive(self):
        assert not ControllerSpec(kind="static").active

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(kind="magic")

    def test_empty_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(domains=())

    def test_duplicate_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(domains=("web-vm", "web-vm"))

    def test_cap_band_ordering(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(min_cap_cores=2.0, max_cap_cores=1.0)
        with pytest.raises(ConfigurationError):
            ControllerSpec(min_cap_cores=0.0)

    def test_vcpu_band_ordering(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(min_vcpus=4, max_vcpus=2)

    def test_balloon_band_must_be_paired(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(balloon_min_mb=512.0)
        with pytest.raises(ConfigurationError):
            ControllerSpec(balloon_min_mb=2048.0, balloon_max_mb=1024.0)

    def test_sessions_per_gb_needs_balloon_band(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(sessions_per_gb=100.0)
        ControllerSpec(
            sessions_per_gb=100.0,
            balloon_min_mb=1024.0,
            balloon_max_mb=2048.0,
        )

    def test_threshold_ordering(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(p95_low_ms=100.0, p95_high_ms=50.0)

    def test_history_must_cover_ar_fit(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec(ar_order=8, history_windows=10)

    def test_history_must_cover_predictive_activation(self):
        # The predictive policy activates at max(12, 4*order + lead)
        # windows; a spec below that would silently never predict.
        with pytest.raises(ConfigurationError):
            ControllerSpec(ar_order=2, history_windows=10)
        ControllerSpec(ar_order=2, lead_windows=2, history_windows=12)

    def test_every_kind_constructs(self):
        for kind in CONTROLLER_KINDS:
            assert ControllerSpec(kind=kind).kind == kind


class TestSerialization:
    def test_dict_round_trip(self):
        spec = ControllerSpec(
            kind="pid",
            domains=("web-vm",),
            balloon_min_mb=1024.0,
            balloon_max_mb=2048.0,
            sessions_per_gb=300.0,
        )
        assert ControllerSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            ControllerSpec.from_dict({"kind": "pid", "warp": 9})

    def test_from_dict_coerces_domain_lists(self):
        spec = ControllerSpec.from_dict({"domains": ["web-vm"]})
        assert spec.domains == ("web-vm",)

    def test_spec_is_hashable(self):
        assert hash(ControllerSpec()) == hash(ControllerSpec())

    def test_for_domain_retargets(self):
        spec = ControllerSpec().for_domain("batch-vm")
        assert spec.domains == ("batch-vm",)


class TestScenarioIntegration:
    def test_controller_requires_virtualized(self):
        base = scenario("bare-metal", "browsing", duration_s=40.0)
        with pytest.raises(ConfigurationError):
            replace(base, controller=ControllerSpec())

    def test_cache_key_distinguishes_controllers(self):
        base = scenario("virtualized", "browsing", duration_s=40.0)
        static = replace(base, controller=ControllerSpec(kind="static"))
        threshold = replace(base, controller=ControllerSpec())
        keys = {base.cache_key, static.cache_key, threshold.cache_key}
        assert len(keys) == 3

    def test_autoscaled_factories_build(self):
        flash = autoscaled_flash_crowd_scenario(duration_s=60.0, clients=200)
        assert flash.controller.kind == "threshold"
        assert flash.traffic.retry_max == 2
        # Capacity bands scale with the client population.
        assert flash.controller.min_cap_cores == pytest.approx(0.05)
        assert flash.controller.max_cap_cores == pytest.approx(0.4)
        static = autoscaled_flash_crowd_scenario(
            duration_s=60.0, clients=200, controller="static"
        )
        assert static.name.endswith("_static")
        cons = autoscaled_consolidated_scenario(duration_s=60.0)
        assert cons.controller.weight_boost > 0

    def test_controlled_property(self):
        base = scenario("virtualized", "browsing", duration_s=40.0)
        assert not base.controlled
        assert replace(base, controller=ControllerSpec()).controlled
        tenant = TenantSpec(controller=ControllerSpec(kind="static"))
        assert replace(base, tenants=(tenant,)).controlled


class TestTenantSpecController:
    def test_tenant_controller_round_trips_through_dict(self):
        tenant = TenantSpec(
            controller=ControllerSpec(kind="threshold", invert=True)
        )
        config = ExperimentConfig(tenants=(tenant,))
        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert rebuilt.tenants[0].controller == tenant.controller
        assert rebuilt == config

    def test_tenant_controller_coerced_from_dict(self):
        tenant = TenantSpec.from_dict(
            {"controller": {"kind": "static", "domains": ["web-vm"]}}
        )
        assert isinstance(tenant.controller, ControllerSpec)


class TestExperimentConfig:
    def test_controller_token_round_trip(self):
        config = ExperimentConfig(controller="threshold")
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt.controller == "threshold"
        spec = rebuilt.to_scenario()
        assert spec.controller.kind == "threshold"
        assert spec.name.endswith("@threshold")

    def test_controller_token_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(controller="magic")

    def test_controller_rejected_on_bare_metal(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                environment="bare-metal", controller="threshold"
            )

    def test_none_token_means_no_controller(self):
        assert ExperimentConfig(controller="none").to_scenario().controller \
            is None
