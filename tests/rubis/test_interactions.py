"""Unit tests for the RUBiS interaction catalogue."""

import pytest

from repro.errors import ConfigurationError
from repro.rubis.interactions import (
    BIDDING_INTERACTIONS,
    BROWSING_INTERACTIONS,
    INTERACTIONS,
    get_interaction,
)


class TestCatalogue:
    def test_has_26_interactions(self):
        assert len(INTERACTIONS) == 26

    def test_bidding_set_is_everything(self):
        assert set(BIDDING_INTERACTIONS) == set(INTERACTIONS)

    def test_browsing_set_is_read_only(self):
        for name in BROWSING_INTERACTIONS:
            assert not INTERACTIONS[name].writes

    def test_write_interactions_present(self):
        writers = {n for n, ix in INTERACTIONS.items() if ix.writes}
        assert writers == {
            "RegisterUser",
            "StoreBuyNow",
            "StoreBid",
            "StoreComment",
            "RegisterItem",
        }

    def test_search_pages_are_the_expensive_reads(self):
        search = INTERACTIONS["SearchItemsInCategory"]
        home = INTERACTIONS["Home"]
        assert search.web_work > home.web_work
        assert search.db_work > home.db_work
        assert search.rows_touched > 50

    def test_static_pages_have_no_queries(self):
        for name in ("Home", "Browse", "PutBidAuth", "SellItemForm"):
            assert INTERACTIONS[name].db_queries == 0

    def test_writers_write_rows(self):
        for name, ix in INTERACTIONS.items():
            if ix.writes:
                assert ix.rows_written > 0

    def test_response_sizes_positive(self):
        for ix in INTERACTIONS.values():
            assert ix.response_kb > 0

    def test_lookup_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_interaction("BuyDogecoin")

    def test_lookup_known(self):
        assert get_interaction("ViewItem").name == "ViewItem"
