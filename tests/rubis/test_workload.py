"""Unit tests for workload mixes and burst schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rubis.workload import (
    PAPER_COMPOSITIONS,
    BurstSchedule,
    SessionType,
    WorkloadMix,
    bidding_mix,
    blended_mix,
    browsing_mix,
)


class TestWorkloadMix:
    def test_paper_has_five_compositions(self):
        assert len(PAPER_COMPOSITIONS) == 5
        fractions = {
            mix.browse_fraction for mix in PAPER_COMPOSITIONS.values()
        }
        assert fractions == {1.0, 0.0, 0.30, 0.50, 0.70}

    def test_paper_defaults(self):
        mix = PAPER_COMPOSITIONS["browsing"]
        assert mix.clients == 1000
        assert mix.think_time_s == 7.0

    def test_session_type_extremes(self):
        rng = np.random.default_rng(0)
        assert browsing_mix().session_type(rng) is SessionType.BROWSE
        assert bidding_mix().session_type(rng) is SessionType.BID

    def test_session_type_fraction_respected(self):
        rng = np.random.default_rng(1)
        mix = blended_mix(0.30)
        draws = [mix.session_type(rng) for _ in range(5000)]
        browse_share = sum(
            1 for d in draws if d is SessionType.BROWSE
        ) / len(draws)
        assert browse_share == pytest.approx(0.30, abs=0.03)

    def test_blend_name_matches_paper_phrasing(self):
        assert blended_mix(0.30).name == "30% browsing / 70% bidding"

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix("bad", browse_fraction=1.5)

    def test_invalid_think_time_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix("bad", 0.5, think_time_s=0.0)

    def test_with_bursts_preserves_identity(self):
        mix = browsing_mix()
        schedule = BurstSchedule(count=1, window_s=(10.0, 20.0))
        updated = mix.with_bursts({SessionType.BROWSE: schedule})
        assert updated.name == mix.name
        assert updated.burst_schedule(SessionType.BROWSE) is schedule
        # Original untouched.
        assert mix.burst_schedule(SessionType.BROWSE).count == 0


class TestBurstSchedule:
    def test_empty_schedule_samples_nothing(self):
        schedule = BurstSchedule()
        assert schedule.sample_times(np.random.default_rng(0)) == ()

    def test_times_within_window_and_sorted(self):
        schedule = BurstSchedule(count=5, window_s=(10.0, 30.0))
        times = schedule.sample_times(np.random.default_rng(2))
        assert len(times) == 5
        assert list(times) == sorted(times)
        assert all(10.0 <= t <= 30.0 for t in times)

    def test_invalid_window_rejected(self):
        schedule = BurstSchedule(count=1, window_s=(30.0, 10.0))
        with pytest.raises(ConfigurationError):
            schedule.sample_times(np.random.default_rng(0))
