"""Unit tests for the tier memory dynamics."""

import numpy as np
import pytest

from repro.apps.queueing import QueueingStation
from repro.apps.tier import BareMetalContext, OsActivityModel
from repro.errors import ConfigurationError
from repro.hardware.server import PhysicalServer
from repro.rubis.memorymodel import MemoryProfile, TierMemoryModel
from repro.sim.engine import Simulator
from repro.units import MB


def make_model(sim, profile, active_sessions=0):
    server = PhysicalServer("s")
    context = BareMetalContext(
        sim, server, "pm:web", OsActivityModel(log_bytes_per_s=0.0)
    )
    station = QueueingStation(sim, "st", workers=4)
    model = TierMemoryModel(
        sim,
        context,
        profile,
        station,
        np.random.default_rng(3),
        active_sessions_fn=lambda: active_sessions,
    )
    return model, context, station, server


class TestLevelProcess:
    def test_base_level_applied_at_start(self):
        sim = Simulator()
        profile = MemoryProfile(base_mb=200.0, noise_mb=0.0,
                                cache_growth_mb=0.0, per_session_kb=0.0)
        model, context, _, _ = make_model(sim, profile)
        assert context.memory_used() == pytest.approx(200.0 * MB)

    def test_cache_ramp_grows_toward_asymptote(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            per_session_kb=0.0,
            cache_growth_mb=100.0,
            cache_ramp_s=50.0,
        )
        model, context, _, _ = make_model(sim, profile)
        sim.run_until(200.0)
        level_mb = context.memory_used() / MB
        assert 190.0 < level_mb <= 201.0

    def test_sessions_contribute(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0, noise_mb=0.0, cache_growth_mb=0.0,
            per_session_kb=1024.0,
        )
        model, context, _, _ = make_model(sim, profile, active_sessions=50)
        sim.run_until(2.0)
        assert context.memory_used() / MB == pytest.approx(150.0)

    def test_noise_varies_levels(self):
        sim = Simulator()
        profile = MemoryProfile(base_mb=100.0, noise_mb=5.0,
                                cache_growth_mb=0.0, per_session_kb=0.0)
        model, context, _, _ = make_model(sim, profile)
        levels = []
        for t in range(1, 20):
            sim.run_until(float(t))
            levels.append(context.memory_used())
        assert len(set(levels)) > 5


class TestBacklogJumps:
    def _saturate(self, station, jobs):
        for i in range(jobs):
            station.submit(i, lambda j: 100.0, lambda j: None)

    def test_jump_on_backlog(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=50.0,
            backlog_threshold=10,
            max_jumps=2,
        )
        model, context, station, _ = make_model(sim, profile)
        self._saturate(station, 20)
        sim.run_until(2.0)
        assert model.jumps_committed == 1
        assert context.memory_used() / MB == pytest.approx(150.0)

    def test_jump_triggers_disk_burst(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=50.0,
            backlog_threshold=5,
            jump_disk_burst_kb=100.0,
            max_jumps=1,
        )
        model, context, station, server = make_model(sim, profile)
        self._saturate(station, 10)
        sim.run_until(2.0)
        assert server.disk.total_bytes("pm:web") > 0

    def test_cooldown_limits_jump_rate(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=50.0,
            backlog_threshold=5,
            jump_cooldown_s=1000.0,
            max_jumps=5,
        )
        model, _, station, _ = make_model(sim, profile)
        self._saturate(station, 50)
        sim.run_until(20.0)
        assert model.jumps_committed == 1

    def test_max_jumps_cap(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=10.0,
            backlog_threshold=5,
            jump_cooldown_s=1.0,
            max_jumps=2,
        )
        model, _, station, _ = make_model(sim, profile)
        self._saturate(station, 50)
        sim.run_until(30.0)
        assert model.jumps_committed == 2

    def test_no_jump_without_backlog(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=50.0,
            backlog_threshold=5,
            max_jumps=3,
        )
        model, _, _, _ = make_model(sim, profile)
        sim.run_until(30.0)
        assert model.jumps_committed == 0

    def test_jump_times_recorded(self):
        sim = Simulator()
        profile = MemoryProfile(
            base_mb=100.0,
            noise_mb=0.0,
            cache_growth_mb=0.0,
            per_session_kb=0.0,
            jump_mb=50.0,
            backlog_threshold=5,
            max_jumps=1,
        )
        model, _, station, _ = make_model(sim, profile)
        self._saturate(station, 10)
        sim.run_until(5.0)
        assert len(model.jump_times) == 1


class TestValidation:
    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryProfile(base_mb=-1.0)
        with pytest.raises(ConfigurationError):
            MemoryProfile(base_mb=1.0, cache_ramp_s=0.0)
        with pytest.raises(ConfigurationError):
            MemoryProfile(base_mb=1.0, max_jumps=-1)

    def test_stop_freezes_level(self):
        sim = Simulator()
        profile = MemoryProfile(base_mb=100.0, noise_mb=0.0,
                                cache_growth_mb=50.0, per_session_kb=0.0,
                                cache_ramp_s=10.0)
        model, context, _, _ = make_model(sim, profile)
        sim.run_until(5.0)
        model.stop()
        level = context.memory_used()
        sim.run_until(50.0)
        assert context.memory_used() == level
