"""Unit tests for demand scaling and sampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rubis.database import BufferPool, RubisDatabase
from repro.rubis.demand import DemandSampler, DemandScaling
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.units import MB


@pytest.fixture
def sampler():
    database = RubisDatabase()
    pool = BufferPool(
        capacity_bytes=384 * MB,
        database=database,
        hot_fraction=0.05,
        hot_access_probability=0.99,
    )
    return DemandSampler(DemandScaling(), pool, np.random.default_rng(5))


class TestDemandScaling:
    def test_negative_field_rejected(self):
        with pytest.raises(ConfigurationError):
            DemandScaling(web_cycles_per_unit=-1.0)

    def test_rescaled_returns_modified_copy(self):
        scaling = DemandScaling()
        updated = scaling.rescaled(response_scale=2.0)
        assert updated.response_scale == 2.0
        assert scaling.response_scale == 1.0


class TestSampling:
    def test_static_page_has_no_db_demand(self, sampler):
        demand = sampler.sample("Home")
        assert demand.db_queries == 0
        assert demand.db_cycles == 0.0
        assert demand.query_bytes == 0.0
        assert demand.result_bytes == 0.0
        assert demand.commit is False

    def test_search_page_touches_db(self, sampler):
        demand = sampler.sample("SearchItemsInCategory")
        assert demand.db_queries == 2
        assert demand.db_cycles > 0
        assert demand.query_bytes > 0

    def test_write_interaction_commits(self, sampler):
        demand = sampler.sample("StoreBid")
        assert demand.commit is True
        assert demand.db_disk_write_bytes > 0

    def test_demands_always_non_negative(self, sampler):
        for name in ("Home", "ViewItem", "StoreBid", "AboutMe"):
            for _ in range(50):
                demand = sampler.sample(name)
                assert demand.web_cycles >= 0
                assert demand.db_disk_read_bytes >= 0
                assert demand.response_bytes >= 0

    def test_noise_produces_variation(self, sampler):
        cycles = {sampler.sample("ViewItem").web_cycles for _ in range(20)}
        assert len(cycles) > 1

    def test_spill_applies_above_threshold(self, sampler):
        # SearchItemsInCategory touches 120 rows > default threshold 50.
        scaling = sampler.scaling
        demand = sampler.sample("SearchItemsInCategory")
        expected_spill = 120 * scaling.spill_bytes_per_row
        assert demand.db_disk_write_bytes >= expected_spill * 0.5


class TestExpectedDemand:
    def test_expectation_matches_sampling_mean(self, sampler):
        matrix = browsing_matrix()
        expected = sampler.expected_demand(matrix)
        # Monte-Carlo over the stationary chain.
        rng = np.random.default_rng(17)
        state = matrix.initial_state
        totals = np.zeros(3)
        n = 6000
        for _ in range(n):
            state = matrix.next_state(rng, state)
            demand = sampler.sample(state)
            totals += (
                demand.web_cycles,
                demand.response_bytes,
                demand.web_disk_write_bytes,
            )
        means = totals / n
        assert means[0] == pytest.approx(expected.web_cycles, rel=0.05)
        assert means[1] == pytest.approx(expected.response_bytes, rel=0.05)
        assert means[2] == pytest.approx(
            expected.web_disk_write_bytes, rel=0.05
        )

    def test_expectation_linear_in_cycle_scale(self, sampler):
        matrix = browsing_matrix()
        base = sampler.expected_demand(matrix)
        doubled_sampler = DemandSampler(
            sampler.scaling.rescaled(
                web_cycles_per_unit=2 * sampler.scaling.web_cycles_per_unit
            ),
            sampler.buffer_pool,
            np.random.default_rng(0),
        )
        doubled = doubled_sampler.expected_demand(matrix)
        assert doubled.web_cycles == pytest.approx(2 * base.web_cycles)

    def test_bid_mix_has_write_bytes(self, sampler):
        expected = sampler.expected_demand(bidding_matrix())
        browse_expected = sampler.expected_demand(browsing_matrix())
        # rows_written flow exists only in the bidding mix; both mixes
        # spill on searches, so compare the written component.
        assert expected.db_disk_write_bytes > 0
        assert browse_expected.web_cycles > expected.web_cycles
