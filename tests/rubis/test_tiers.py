"""Unit tests for the PHP and MySQL tier servers."""

import pytest

from repro.apps.requests import Request, ResourceDemand
from repro.apps.tier import BareMetalContext, OsActivityModel
from repro.errors import ConfigurationError
from repro.hardware.server import PhysicalServer
from repro.rubis.mysqltier import MysqlTier, MysqlTierConfig
from repro.rubis.phptier import PhpTier, PhpTierConfig
from repro.sim.engine import Simulator


@pytest.fixture
def bare_setup():
    sim = Simulator()
    server = PhysicalServer("s")
    context = BareMetalContext(
        sim,
        server,
        "pm:web",
        OsActivityModel(log_bytes_per_s=0.0, base_cycles_per_s=0.0,
                        disk_accounting_factor=1.0,
                        net_accounting_factor=1.0),
    )
    return sim, server, context


def make_request(**demand_kwargs):
    return Request(
        session_id=1,
        interaction="ViewItem",
        demand=ResourceDemand(**demand_kwargs),
        created_at=0.0,
    )


class TestPhpTier:
    def test_service_burns_web_cycles(self, bare_setup):
        sim, server, context = bare_setup
        tier = PhpTier(sim, context)
        request = make_request(web_cycles=2.8e9)
        done = []
        tier.handle(request, done.append)
        sim.run_until(10.0)
        assert done == [request]
        assert server.cpu.ledger.total("pm:web") == pytest.approx(
            2.8e9 + context.os_model.syscall_cycles_per_request
        )

    def test_service_duration_from_cycles(self, bare_setup):
        sim, server, context = bare_setup
        tier = PhpTier(sim, context)
        request = make_request(web_cycles=2.8e9)  # one core-second
        completions = []
        tier.handle(request, lambda r: completions.append(sim.now))
        sim.run_until(10.0)
        assert completions[0] == pytest.approx(1.0)

    def test_log_written_after_service(self, bare_setup):
        sim, server, context = bare_setup
        tier = PhpTier(sim, context)
        request = make_request(web_cycles=1e6, web_disk_write_bytes=1500.0)
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        assert server.disk.bytes_written("pm:web") == pytest.approx(1500.0)

    def test_web_started_timestamp_set(self, bare_setup):
        sim, _, context = bare_setup
        tier = PhpTier(sim, context)
        request = make_request(web_cycles=1e6)
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        assert request.web_started_at is not None

    def test_requests_handled_counter(self, bare_setup):
        sim, _, context = bare_setup
        tier = PhpTier(sim, context)
        for _ in range(3):
            tier.handle(make_request(web_cycles=1e5), lambda r: None)
        sim.run_until(1.0)
        assert tier.requests_handled == 3

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            PhpTierConfig(workers=0)


class TestMysqlTier:
    def test_service_burns_db_cycles(self, bare_setup):
        sim, server, context = bare_setup
        tier = MysqlTier(sim, context)
        request = make_request(db_cycles=1e6, db_queries=2)
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        assert server.cpu.ledger.total("pm:web") >= 1e6
        assert tier.queries_executed == 2

    def test_sync_read_extends_service(self, bare_setup):
        sim, server, context = bare_setup
        tier = MysqlTier(sim, context)
        fast = make_request(db_cycles=1e6)
        slow = make_request(db_cycles=1e6, db_disk_read_bytes=50e6)
        times = {}
        tier.handle(fast, lambda r: times.__setitem__("fast", sim.now))
        sim.run_until(100.0)
        tier.handle(slow, lambda r: times.__setitem__("slow", sim.now))
        sim.run_until(1000.0)
        assert times["slow"] - 100.0 > times["fast"]

    def test_write_back_recorded_async(self, bare_setup):
        sim, server, context = bare_setup
        tier = MysqlTier(sim, context)
        request = make_request(db_cycles=1e5, db_disk_write_bytes=4096.0)
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        assert server.disk.bytes_written("pm:web") == pytest.approx(4096.0)

    def test_commit_accounted(self, bare_setup):
        sim, server, context = bare_setup
        tier = MysqlTier(sim, context)
        request = make_request(db_cycles=1e5, commit=True,
                               db_disk_write_bytes=100.0)
        before = server.cpu.ledger.total("pm:web")
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        delta = server.cpu.ledger.total("pm:web") - before
        assert delta >= context.os_model.commit_cycles
        assert tier.commits == 1

    def test_no_commit_for_read_only(self, bare_setup):
        sim, _, context = bare_setup
        tier = MysqlTier(sim, context)
        tier.handle(make_request(db_cycles=1e5), lambda r: None)
        sim.run_until(1.0)
        assert tier.commits == 0

    def test_db_started_timestamp_set(self, bare_setup):
        sim, _, context = bare_setup
        tier = MysqlTier(sim, context)
        request = make_request(db_cycles=1e5)
        tier.handle(request, lambda r: None)
        sim.run_until(1.0)
        assert request.db_started_at is not None

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            MysqlTierConfig(workers=0)
