"""Unit tests for the deployment request path."""

import pytest

from repro.rubis.deployment import (
    BareMetalDeployment,
    DeploymentConfig,
    VirtualizedDeployment,
)
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


class FakeSession:
    session_id = 7


@pytest.fixture
def virt():
    sim = Simulator()
    deployment = VirtualizedDeployment(sim, RandomStreams(1))
    return sim, deployment


@pytest.fixture
def bare():
    sim = Simulator()
    deployment = BareMetalDeployment(sim, RandomStreams(1))
    return sim, deployment


class TestVirtualizedDeployment:
    def test_environment_label(self, virt):
        _, deployment = virt
        assert deployment.environment == "virtualized"

    def test_two_guests_plus_dom0(self, virt):
        _, deployment = virt
        names = {d.name for d in deployment.hypervisor.domains()}
        assert names == {"Domain-0", "web-vm", "db-vm"}

    def test_tiers_colocated_on_one_server(self, virt):
        _, deployment = virt
        fabric = deployment.cluster.fabric
        assert fabric.server_of("web") == fabric.server_of("db")

    def test_request_roundtrip_touches_both_tiers(self, virt):
        sim, deployment = virt
        responses = []
        deployment.send(FakeSession(), "ViewItem", responses.append)
        sim.run_until(5.0)
        assert len(responses) == 1
        request = responses[0]
        assert request.web_started_at is not None
        assert request.db_started_at is not None
        assert request.web_started_at <= request.db_started_at

    def test_static_page_skips_database(self, virt):
        sim, deployment = virt
        responses = []
        deployment.send(FakeSession(), "Home", responses.append)
        sim.run_until(5.0)
        assert len(responses) == 1
        assert responses[0].db_started_at is None
        assert deployment.mysql_tier.station.stats.arrivals == 0

    def test_stage_ordering_web_before_db(self, virt):
        sim, deployment = virt
        responses = []
        deployment.send(FakeSession(), "ViewBidHistory", responses.append)
        sim.run_until(5.0)
        request = responses[0]
        assert request.created_at < request.web_started_at
        assert request.web_started_at < request.db_started_at
        assert deployment.php_tier.requests_handled == 1

    def test_network_counters_populated(self, virt):
        sim, deployment = virt
        deployment.send(FakeSession(), "ViewItem", lambda r: None)
        sim.run_until(5.0)
        assert deployment.web_context.net_bytes_total() > 0
        assert deployment.db_context.net_bytes_total() > 0

    def test_shutdown_stops_activity(self, virt):
        sim, deployment = virt
        deployment.shutdown()
        cycles = deployment.hypervisor.server.cpu.ledger.grand_total()
        sim.run_until(20.0)
        assert (
            deployment.hypervisor.server.cpu.ledger.grand_total() == cycles
        )


class TestBareMetalDeployment:
    def test_environment_label(self, bare):
        _, deployment = bare
        assert deployment.environment == "bare-metal"

    def test_tiers_on_separate_servers(self, bare):
        _, deployment = bare
        fabric = deployment.cluster.fabric
        assert fabric.server_of("web") != fabric.server_of("db")

    def test_request_roundtrip(self, bare):
        sim, deployment = bare
        responses = []
        deployment.send(FakeSession(), "SearchItemsInCategory",
                        responses.append)
        sim.run_until(5.0)
        assert len(responses) == 1

    def test_inter_tier_latency_larger_than_virtualized(self):
        sim_v = Simulator()
        virt = VirtualizedDeployment(sim_v, RandomStreams(1))
        sim_b = Simulator()
        bare = BareMetalDeployment(sim_b, RandomStreams(1))
        lat_virt = virt.cluster.fabric.latency("web", "db")
        lat_bare = bare.cluster.fabric.latency("web", "db")
        # The paper's "longer communication delay in the non-virtualized
        # system": separate hosts vs a software bridge.
        assert lat_bare > lat_virt

    def test_cpu_charged_to_pm_owners(self, bare):
        sim, deployment = bare
        deployment.send(FakeSession(), "ViewItem", lambda r: None)
        sim.run_until(5.0)
        assert deployment.web_server.cpu.ledger.total("pm:web") > 0
        assert deployment.db_server.cpu.ledger.total("pm:db") > 0
