"""Unit tests for client sessions and the population."""

import numpy as np
import pytest

from repro.apps.requests import Request, ResourceDemand
from repro.rubis.client import ClientPopulation, ClientSession, SessionStats
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import (
    BurstSchedule,
    SessionType,
    WorkloadMix,
    browsing_mix,
)
from repro.sim.engine import Simulator


class EchoDeployment:
    """Answers every request after a fixed delay."""

    def __init__(self, sim, delay=0.05):
        self.sim = sim
        self.delay = delay
        self.sent = []

    def send(self, session, interaction, on_response):
        self.sent.append((session.session_id, interaction))
        request = Request(
            session_id=session.session_id,
            interaction=interaction,
            demand=ResourceDemand(),
            created_at=self.sim.now,
        )
        self.sim.schedule(self.delay, on_response, request)


def make_session(sim, deployment, think=1.0, session_type=SessionType.BROWSE):
    stats = SessionStats()
    return ClientSession(
        sim,
        session_id=1,
        session_type=session_type,
        matrix=browsing_matrix(),
        think_time_s=think,
        rng=np.random.default_rng(4),
        send_fn=deployment.send,
        stats=stats,
    )


class TestClientSession:
    def test_closed_loop_alternates_think_and_request(self):
        sim = Simulator()
        deployment = EchoDeployment(sim)
        session = make_session(sim, deployment, think=1.0)
        session.start(0.0)
        sim.run_until(30.0)
        # With think ~Exp(1.0)+0.05s response, expect on the order of
        # 30 requests; definitely more than 5 and fewer than 200.
        assert 5 < session.requests_sent < 200

    def test_states_follow_matrix(self):
        sim = Simulator()
        deployment = EchoDeployment(sim)
        session = make_session(sim, deployment)
        session.start(0.0)
        sim.run_until(30.0)
        matrix = browsing_matrix()
        for _, interaction in deployment.sent:
            assert interaction in matrix.states

    def test_stats_record_roundtrips(self):
        sim = Simulator()
        deployment = EchoDeployment(sim, delay=0.1)
        session = make_session(sim, deployment, think=0.5)
        session.start(0.0)
        sim.run_until(20.0)
        assert session.stats.requests_sent >= session.stats.responses_received
        assert session.stats.mean_response_time_s == pytest.approx(0.1)

    def test_trigger_now_fires_thinking_session(self):
        sim = Simulator()
        deployment = EchoDeployment(sim)
        session = make_session(sim, deployment, think=1000.0)
        session.start(500.0)
        sim.run_until(1.0)
        assert session.requests_sent == 0
        session.trigger_now()
        sim.run_until(1.5)
        assert session.requests_sent == 1

    def test_trigger_noop_when_waiting_on_response(self):
        sim = Simulator()
        deployment = EchoDeployment(sim, delay=100.0)
        session = make_session(sim, deployment, think=0.001)
        session.start(0.0)
        sim.run_until(1.0)  # request in flight, not thinking
        sent_before = session.requests_sent
        session.trigger_now()
        sim.run_until(2.0)
        assert session.requests_sent == sent_before


class TestClientPopulation:
    def _population(self, sim, mix, ramp=2.0):
        deployment = EchoDeployment(sim)
        population = ClientPopulation(
            sim,
            mix,
            deployment.send,
            np.random.default_rng(8),
            {
                SessionType.BROWSE: browsing_matrix(),
                SessionType.BID: bidding_matrix(),
            },
            ramp_s=ramp,
        )
        return population, deployment

    def test_population_size(self):
        sim = Simulator()
        mix = browsing_mix(clients=50, think_time_s=5.0)
        population, _ = self._population(sim, mix)
        assert len(population.sessions) == 50

    def test_all_sessions_start_within_ramp(self):
        sim = Simulator()
        mix = browsing_mix(clients=30, think_time_s=100.0)
        population, deployment = self._population(sim, mix, ramp=2.0)
        population.start()
        sim.run_until(2.5)
        assert len(deployment.sent) == 30

    def test_session_type_assignment(self):
        sim = Simulator()
        mix = WorkloadMix("half", browse_fraction=0.5, clients=200)
        population, _ = self._population(sim, mix)
        browse = len(population.sessions_of_type(SessionType.BROWSE))
        assert 60 < browse < 140

    def test_burst_preempts_thinking_sessions(self):
        sim = Simulator()
        mix = WorkloadMix(
            "bursty",
            browse_fraction=1.0,
            clients=40,
            think_time_s=10_000.0,
            burst_schedules={
                SessionType.BROWSE: BurstSchedule(
                    count=1, window_s=(5.0, 5.0), fraction=1.0
                )
            },
        )
        population, deployment = self._population(sim, mix, ramp=1.0)
        population.start()
        sim.run_until(4.9)
        first_wave = len(deployment.sent)
        sim.run_until(6.0)
        # The burst forces every thinking client to fire again at t=5.
        assert len(deployment.sent) >= first_wave + 0.9 * 40

    def test_burst_times_recorded(self):
        sim = Simulator()
        mix = WorkloadMix(
            "bursty",
            browse_fraction=1.0,
            clients=5,
            burst_schedules={
                SessionType.BROWSE: BurstSchedule(
                    count=2, window_s=(1.0, 9.0)
                )
            },
        )
        population, _ = self._population(sim, mix)
        population.start()
        assert len(population.burst_times[SessionType.BROWSE]) == 2

    def test_throughput_estimate(self):
        sim = Simulator()
        mix = browsing_mix(clients=700, think_time_s=7.0)
        population, _ = self._population(sim, mix)
        assert population.throughput_estimate == pytest.approx(100.0)
