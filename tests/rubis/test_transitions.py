"""Unit and property tests for the client transition matrices."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.rubis.interactions import INTERACTIONS
from repro.rubis.transitions import (
    TransitionMatrix,
    bidding_matrix,
    browsing_matrix,
    matrix_for,
    reachable_states,
)


class TestConstruction:
    def test_rows_normalized(self):
        matrix = browsing_matrix()
        assert np.allclose(matrix.matrix.sum(axis=1), 1.0)

    def test_unknown_target_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionMatrix(
                "bad", {"Home": {"Narnia": 1.0}, "Narnia": {"Home": 1.0}}
            )

    def test_absorbing_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionMatrix("bad", {"Home": {}})

    def test_negative_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionMatrix(
                "bad",
                {"Home": {"Browse": -0.5, "Home": 1.5},
                 "Browse": {"Home": 1.0}},
            )

    def test_missing_initial_state_rejected(self):
        with pytest.raises(ConfigurationError):
            TransitionMatrix(
                "bad", {"Browse": {"Browse": 1.0}}, initial_state="Home"
            )

    def test_unnormalized_rows_rejected_when_strict(self):
        with pytest.raises(ConfigurationError):
            TransitionMatrix(
                "bad",
                {"Home": {"Home": 0.5}},
                normalize=False,
            )


class TestChainStructure:
    @pytest.mark.parametrize("factory", [browsing_matrix, bidding_matrix])
    def test_chain_is_irreducible(self, factory):
        matrix = factory()
        graph = nx.DiGraph()
        for i, src in enumerate(matrix.states):
            for j, dst in enumerate(matrix.states):
                if matrix.matrix[i, j] > 0:
                    graph.add_edge(src, dst)
        assert nx.is_strongly_connected(graph)

    @pytest.mark.parametrize("factory", [browsing_matrix, bidding_matrix])
    def test_all_states_reachable_from_home(self, factory):
        matrix = factory()
        assert set(reachable_states(matrix)) == set(matrix.states)

    def test_browsing_uses_only_read_only_states(self):
        matrix = browsing_matrix()
        for state in matrix.states:
            assert not INTERACTIONS[state].writes

    def test_bidding_includes_write_states(self):
        matrix = bidding_matrix()
        writers = {s for s in matrix.states if INTERACTIONS[s].writes}
        assert len(writers) == 5


class TestStationaryDistribution:
    def test_sums_to_one(self):
        pi = browsing_matrix().stationary_distribution()
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_is_fixed_point(self):
        matrix = bidding_matrix()
        pi = matrix.stationary_distribution()
        vec = np.array([pi[s] for s in matrix.states])
        assert np.allclose(vec @ matrix.matrix, vec, atol=1e-9)

    def test_bidding_write_fraction_near_rubis_default(self):
        # RUBiS's shipped bidding mix is quoted as up to 15% read-write;
        # our chain lands around 10%.
        fraction = bidding_matrix().write_fraction()
        assert 0.08 <= fraction <= 0.16

    def test_browsing_write_fraction_zero(self):
        assert browsing_matrix().write_fraction() == 0.0

    def test_bid_mean_profiles_below_browse(self):
        # The auth/store pages are cheap, so the bidding mix averages
        # slightly lighter web work and smaller responses (Figs 1 and 4).
        browse, bid = browsing_matrix(), bidding_matrix()
        assert bid.mean_profile("web_work") < browse.mean_profile("web_work")
        assert bid.mean_profile("response_kb") < browse.mean_profile(
            "response_kb"
        )


class TestSampling:
    def test_next_state_follows_matrix_support(self):
        matrix = browsing_matrix()
        rng = np.random.default_rng(7)
        state = matrix.initial_state
        for _ in range(500):
            successor = matrix.next_state(rng, state)
            assert matrix.probability(state, successor) > 0
            state = successor

    def test_unknown_state_rejected(self):
        matrix = browsing_matrix()
        with pytest.raises(ConfigurationError):
            matrix.next_state(np.random.default_rng(0), "Narnia")

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_long_run_frequencies_approach_stationary(self, seed):
        matrix = browsing_matrix()
        rng = np.random.default_rng(seed)
        pi = matrix.stationary_distribution()
        counts = {s: 0 for s in matrix.states}
        state = matrix.initial_state
        n = 4000
        for _ in range(n):
            state = matrix.next_state(rng, state)
            counts[state] += 1
        for s, probability in pi.items():
            if probability > 0.05:
                assert counts[s] / n == pytest.approx(probability, abs=0.05)


class TestMatrixFor:
    def test_known_types(self):
        assert matrix_for("browse").name == "browsing"
        assert matrix_for("bid").name == "bidding"

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            matrix_for("lurk")
