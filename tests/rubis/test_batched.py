"""Unit tests for the batched engine's array primitives and drivers."""

import heapq

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.sim.batched import DRAIN_INTERVAL_S, FcfsPool, lindley


def reference_lindley(times, services, busy_until):
    completions = []
    busy = busy_until
    for t, s in zip(times, services):
        busy = max(t, busy) + s
        completions.append(busy)
    return np.asarray(completions), busy


def reference_fcfs(workers, free, arrivals, durations):
    heap = list(free)
    heapq.heapify(heap)
    starts, completions = [], []
    for arrival, duration in zip(arrivals, durations):
        worker_free = heapq.heappop(heap)
        start = max(arrival, worker_free)
        completion = start + duration
        heapq.heappush(heap, completion)
        starts.append(start)
        completions.append(completion)
    return np.asarray(starts), np.asarray(completions), sorted(heap)


class TestLindley:
    def test_empty_batch(self):
        times = np.array([])
        completions, busy = lindley(times, times, 3.5)
        assert completions.size == 0
        assert busy == 3.5

    def test_idle_device_no_queueing(self):
        times = np.array([1.0, 5.0, 9.0])
        services = np.array([0.5, 0.5, 0.5])
        completions, busy = lindley(times, services, 0.0)
        assert np.allclose(completions, [1.5, 5.5, 9.5])
        assert busy == 9.5

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scalar_recursion(self, seed):
        rng = np.random.default_rng(seed)
        times = np.sort(rng.uniform(0, 10, 500))
        services = rng.exponential(0.05, 500)
        busy0 = rng.uniform(0, 2)
        fast, busy_fast = lindley(times, services, busy0)
        slow, busy_slow = reference_lindley(times, services, busy0)
        assert np.allclose(fast, slow)
        assert busy_fast == pytest.approx(busy_slow)


class TestFcfsPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            FcfsPool(0)

    def test_no_queue_fast_path_returns_arrivals_by_identity(self):
        pool = FcfsPool(8)
        arrivals = np.array([0.0, 0.1, 0.2])
        starts, completions, occupancy = pool.schedule(
            arrivals, np.full(3, 0.01)
        )
        assert starts is arrivals  # zero-wait detection contract
        assert np.allclose(completions, arrivals + 0.01)
        assert occupancy.max() <= 8

    @pytest.mark.parametrize("workers", [1, 2, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_heap_reference(self, workers, seed):
        rng = np.random.default_rng(seed)
        pool = FcfsPool(workers)
        free0 = sorted(rng.uniform(0, 0.5, workers))
        pool.restore(free0)
        arrivals = np.sort(rng.uniform(0, 5, 200))
        durations = rng.exponential(0.1, 200)
        starts, completions, _ = pool.schedule(arrivals, durations)
        ref_starts, ref_completions, ref_free = reference_fcfs(
            workers, free0, arrivals, durations
        )
        assert np.allclose(starts, ref_starts)
        assert np.allclose(completions, ref_completions)
        assert np.allclose(sorted(pool.snapshot()), ref_free)

    def test_carryover_across_calls(self):
        pool = FcfsPool(1)
        _, completions, _ = pool.schedule(
            np.array([0.0]), np.array([10.0])
        )
        starts, completions, _ = pool.schedule(
            np.array([1.0]), np.array([1.0])
        )
        assert starts[0] == pytest.approx(10.0)  # queued behind the first
        assert completions[0] == pytest.approx(11.0)

    def test_busy_count(self):
        pool = FcfsPool(3)
        pool.restore([1.0, 5.0, 9.0])
        assert pool.busy_count(0.0) == 3
        assert pool.busy_count(4.0) == 2
        assert pool.busy_count(10.0) == 0

    def test_snapshot_restore_round_trip(self):
        pool = FcfsPool(2)
        pool.schedule(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        saved = pool.snapshot()
        pool.schedule(np.array([5.0]), np.array([1.0]))
        pool.restore(saved)
        assert sorted(pool.snapshot()) == sorted(saved)

    def test_merge_window_keeps_c_largest(self):
        pool = FcfsPool(2)
        base = [1.0, 2.0]
        waves = [np.array([1.5, 7.0]), np.array([3.0])]
        pool.merge_window(base, waves)
        assert sorted(pool.snapshot()) == [3.0, 7.0]

    def test_rescale_remaining(self):
        pool = FcfsPool(2)
        pool.restore([5.0, 15.0])
        rescaled = pool.rescale_remaining(10.0, 2.0)
        assert rescaled == 1  # only the worker still busy past now=10
        assert sorted(pool.snapshot()) == [5.0, 20.0]
        with pytest.raises(ConfigurationError):
            pool.rescale_remaining(0.0, -1.0)


class TestBatchedDriverSmoke:
    @pytest.fixture(scope="class")
    def batched_result(self):
        from dataclasses import replace

        sc = scenario("virtualized", "browsing", duration_s=30, seed=3)
        return run_scenario(
            replace(sc, name=f"{sc.name}%batched", engine="batched")
        )

    def test_counters_populated(self, batched_result):
        assert batched_result.requests_completed > 1000
        assert 0 < batched_result.mean_response_time_s < 0.5

    def test_traces_have_all_series(self, batched_result):
        keys = set(batched_result.traces.keys())
        for entity in ("web", "db", "dom0"):
            for resource in ("cpu_cycles", "mem_used_mb", "disk_kb", "net_kb"):
                assert (entity, resource) in keys
        for key in keys:
            assert batched_result.traces.get(*key).values.min() >= 0.0

    def test_response_times_bounded_by_drain_artifacts(self, batched_result):
        # The per-hop/per-wave lane isolation keeps responses from being
        # floored to the drain tick (the signature of the frontier bug).
        times = np.asarray(batched_result.client_stats.response_times_s)
        assert np.median(times) < DRAIN_INTERVAL_S / 10

    def test_interaction_mix_matches_classic(self, batched_result):
        # Same duration, same seed: the classic engine's frequencies are
        # the yardstick (both carry the same short-run transient, so the
        # comparison is tighter than the stationary distribution).
        classic = run_scenario(
            scenario("virtualized", "browsing", duration_s=30, seed=3)
        )
        counts_b = batched_result.client_stats.per_interaction
        counts_c = classic.client_stats.per_interaction
        total_b = sum(counts_b.values())
        total_c = sum(counts_c.values())
        for state, count in counts_c.items():
            frequency = count / total_c
            if frequency > 0.08:
                observed = counts_b.get(state, 0) / total_b
                assert observed == pytest.approx(frequency, abs=0.02)
