"""Unit tests for the RUBiS data model and buffer pool."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rubis.database import BufferPool, RubisDatabase, TableSpec
from repro.units import MB


class TestTableSpec:
    def test_total_bytes_includes_indexes(self):
        spec = TableSpec("t", rows=100, row_bytes=10.0, index_overhead=0.5)
        assert spec.total_bytes() == 1500.0


class TestRubisDatabase:
    def test_default_schema_has_seven_tables(self):
        database = RubisDatabase()
        assert set(database.tables) == {
            "regions",
            "categories",
            "users",
            "items",
            "bids",
            "comments",
            "buy_now",
        }

    def test_items_include_history(self):
        database = RubisDatabase(active_items=1000, old_items=9000)
        assert database.table("items").rows == 10000

    def test_bids_scale_with_items(self):
        database = RubisDatabase(
            active_items=100, old_items=900, bids_per_item=5.0
        )
        assert database.table("bids").rows == 5000

    def test_total_bytes_positive_and_consistent(self):
        database = RubisDatabase()
        assert database.total_bytes() == pytest.approx(
            sum(s.total_bytes() for s in database.tables.values())
        )

    def test_unknown_table_rejected(self):
        with pytest.raises(ConfigurationError):
            RubisDatabase().table("wishlists")

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(ConfigurationError):
            RubisDatabase(users=0)

    def test_table_sizes_summary(self):
        sizes = RubisDatabase().table_sizes()
        assert sizes["regions"][0] == 62

    def test_mean_row_bytes(self):
        database = RubisDatabase()
        total_rows = sum(s.rows for s in database.tables.values())
        assert database.mean_row_bytes() == pytest.approx(
            database.total_bytes() / total_rows
        )


class TestBufferPool:
    def test_giant_pool_hits_everything(self):
        database = RubisDatabase()
        pool = BufferPool(
            capacity_bytes=database.total_bytes() * 2, database=database
        )
        assert pool.hit_ratio() == pytest.approx(1.0)

    def test_tiny_pool_bounded_by_hot_access(self):
        database = RubisDatabase()
        pool = BufferPool(
            capacity_bytes=1 * MB,
            database=database,
            hot_fraction=0.2,
            hot_access_probability=0.8,
        )
        assert pool.hit_ratio() < 0.05

    def test_hit_ratio_monotone_in_capacity(self):
        database = RubisDatabase()
        ratios = [
            BufferPool(capacity_bytes=c, database=database).hit_ratio()
            for c in (16 * MB, 64 * MB, 256 * MB, 1024 * MB)
        ]
        assert ratios == sorted(ratios)

    def test_access_returns_page_multiples(self):
        pool = BufferPool(capacity_bytes=1 * MB, database=RubisDatabase())
        rng = np.random.default_rng(3)
        missed = pool.access(rng, rows=1000.0, row_bytes=100.0)
        assert missed % BufferPool.PAGE_BYTES == 0

    def test_zero_rows_costs_nothing(self):
        pool = BufferPool(database=RubisDatabase())
        assert pool.access(np.random.default_rng(0), 0.0, 100.0) == 0.0

    def test_observed_hit_ratio_tracks_model(self):
        database = RubisDatabase()
        pool = BufferPool(
            capacity_bytes=database.total_bytes() * 0.5, database=database
        )
        rng = np.random.default_rng(11)
        for _ in range(3000):
            pool.access(rng, rows=20.0, row_bytes=135.0)
        assert pool.observed_hit_ratio() == pytest.approx(
            pool.hit_ratio(), abs=0.03
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BufferPool(capacity_bytes=0.0)
        with pytest.raises(ConfigurationError):
            BufferPool(hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BufferPool(hot_access_probability=1.5)
