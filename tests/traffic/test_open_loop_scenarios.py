"""Open-loop scenarios through the full experiment runner.

Includes the PR acceptance check: the flash-crowd open-loop scenario
offers >= 5x the closed-loop steady-state request rate, reports
overload shedding, and is seed-deterministic (identical arrival-trace
hash across two runs).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    flash_crowd_scenario,
    open_loop_scenario,
    scenario,
)
from repro.traffic.driver import OpenLoopDriver
from repro.traffic.spec import TrafficSpec

DURATION_S = 60.0
CLIENTS = 200


class TestOpenLoopScenario:
    def test_poisson_run_matches_closed_loop_intensity(self):
        spec = open_loop_scenario(
            "virtualized",
            "browsing",
            duration_s=DURATION_S,
            clients=CLIENTS,
        )
        result = run_scenario(spec)
        assert result.open_loop
        assert isinstance(result.population, OpenLoopDriver)
        closed_rate = spec.mix.clients / spec.mix.think_time_s
        offered_rate = result.traffic_report["offered"] / DURATION_S
        assert offered_rate == pytest.approx(closed_rate, rel=0.15)
        assert result.requests_completed > 0
        assert result.arrival_trace is not None
        # The monitoring pipeline records the same trace grid as the
        # closed loop.
        assert len(result.traces.get("web", "cpu_cycles")) == 30

    def test_bare_metal_environment_supported(self):
        spec = open_loop_scenario(
            "bare-metal",
            "bidding",
            duration_s=30.0,
            clients=CLIENTS,
            rate_rps=40.0,
        )
        result = run_scenario(spec)
        assert result.traffic_report["offered"] > 0

    def test_open_loop_exceeds_closed_loop_saturation_rate(self):
        """The structural point: offered load is rate-driven, not
        population-driven — 20x the closed-loop rate actually arrives."""
        spec = open_loop_scenario(
            "virtualized",
            "browsing",
            duration_s=30.0,
            clients=CLIENTS,
            rate_rps=20.0 * CLIENTS / 7.0,
        )
        result = run_scenario(spec)
        offered_rate = result.traffic_report["offered"] / 30.0
        assert offered_rate > 15.0 * CLIENTS / 7.0

    def test_mix_keeps_burst_schedules_out(self):
        spec = open_loop_scenario(
            "virtualized", "browsing", duration_s=DURATION_S
        )
        assert spec.mix.burst_schedules == {}

    def test_requires_open_loop_kind(self):
        with pytest.raises(ConfigurationError):
            open_loop_scenario(
                "virtualized", "browsing", kind="closed"
            )

    def test_cache_key_distinguishes_traffic(self):
        closed = scenario(
            "virtualized", "browsing", duration_s=DURATION_S
        )
        poisson = open_loop_scenario(
            "virtualized", "browsing", duration_s=DURATION_S
        )
        mmpp = open_loop_scenario(
            "virtualized", "browsing", kind="mmpp", duration_s=DURATION_S
        )
        keys = {closed.cache_key, poisson.cache_key, mmpp.cache_key}
        assert len(keys) == 3


class TestFlashCrowdAcceptance:
    @pytest.fixture(scope="class")
    def flash_spec(self):
        return flash_crowd_scenario(
            "virtualized",
            "browsing",
            duration_s=DURATION_S,
            clients=CLIENTS,
            session_budget=300,
        )

    @pytest.fixture(scope="class")
    def flash_result(self, flash_spec):
        return run_scenario(flash_spec)

    def test_offered_rate_at_least_5x_closed_loop(
        self, flash_spec, flash_result
    ):
        closed_rate = flash_spec.mix.clients / flash_spec.mix.think_time_s
        report = flash_result.traffic_report
        offered_request_rate = (
            report["offered"] * report["requests_per_session"] / DURATION_S
        )
        assert offered_request_rate >= 5.0 * closed_rate

    def test_overload_shedding_reported(self, flash_result):
        report = flash_result.traffic_report
        assert report["shed"] > 0
        assert 0.0 < report["shed_fraction"] < 1.0
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["session_budget"] == 300

    def test_seed_deterministic_trace_hash(self, flash_spec, flash_result):
        rerun = run_scenario(flash_spec)
        assert (
            rerun.arrival_trace.sha256()
            == flash_result.arrival_trace.sha256()
        )
        assert rerun.traffic_report == flash_result.traffic_report

    def test_surge_visible_in_arrival_trace(self, flash_result):
        rates = flash_result.arrival_trace.rates_rps
        baseline = rates[: len(rates) // 5].mean()
        peak = rates.max()
        assert peak > 5.0 * max(baseline, 1e-9)

    def test_in_flight_sessions_respect_budget(self, flash_result):
        assert flash_result.population.active_session_count() <= 300

    def test_offered_load_independent_of_budget(self, flash_result):
        """The open-loop invariant: admission decisions must not
        perturb the offered arrival stream (arrivals and sessions draw
        from independent RNG streams)."""
        relaxed = flash_crowd_scenario(
            "virtualized",
            "browsing",
            duration_s=DURATION_S,
            clients=CLIENTS,
            session_budget=50_000,
        )
        result = run_scenario(relaxed)
        assert result.traffic_report["shed"] == 0
        assert (
            result.arrival_trace.sha256()
            == flash_result.arrival_trace.sha256()
        )


class TestTraceScenario:
    def test_trace_kind_via_cli_token(self, tmp_path):
        from repro.traffic.trace import RateTrace

        path = str(tmp_path / "offered.csv")
        RateTrace(np.full(30, 50.0), interval_s=1.0).to_csv(path)
        spec = open_loop_scenario(
            "virtualized",
            "browsing",
            kind=f"trace:{path}",
            duration_s=30.0,
            clients=CLIENTS,
        )
        result = run_scenario(spec)
        assert result.traffic_report["offered"] == pytest.approx(
            1500, rel=0.1
        )
        # Replay exhausts with the trace: no arrivals past its end.
        assert result.arrival_trace.rates_rps[-1] <= 60.0

    def test_trace_spec_requires_path(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(kind="trace")
        with pytest.raises(ConfigurationError):
            TrafficSpec.from_cli_string("trace")

    def test_closed_loop_meter_round_trip(self, tmp_path):
        """A metered closed-loop run replays as offered load."""
        closed = scenario(
            "virtualized", "browsing", duration_s=30.0, clients=CLIENTS
        )
        source = run_scenario(closed, meter_arrivals=True)
        assert source.arrival_trace is not None
        path = str(tmp_path / "closed.npz")
        source.arrival_trace.to_npz(path)
        replay_spec = open_loop_scenario(
            "virtualized",
            "browsing",
            kind=f"trace:{path}",
            duration_s=30.0,
            clients=CLIENTS,
        )
        replayed = run_scenario(replay_spec)
        assert source.traffic_report is None  # closed loop has no report
        assert replayed.traffic_report["offered"] == pytest.approx(
            source.arrival_trace.total_expected_arrivals(), rel=0.15
        )
