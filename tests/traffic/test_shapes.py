"""Tests for the deterministic rate envelopes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traffic.shapes import (
    CompositeShape,
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    RampShape,
    StepShape,
)

ALL_SHAPES = [
    ConstantShape(1.4),
    DiurnalShape(period_s=120.0, amplitude=0.6),
    RampShape(10.0, 50.0, start_factor=0.5, end_factor=3.0),
    StepShape(times_s=(20.0, 60.0), factors=(2.0, 0.5)),
    FlashCrowdShape(peak_time_s=40.0, magnitude=6.0),
    CompositeShape(
        (DiurnalShape(period_s=60.0, amplitude=0.3),
         FlashCrowdShape(peak_time_s=30.0, magnitude=4.0))
    ),
]


class TestEnvelopeContract:
    @pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: type(s).__name__)
    def test_factor_nonnegative_and_bounded(self, shape):
        grid = np.linspace(0.0, 200.0, 4001)
        factors = np.array([shape.factor(t) for t in grid])
        assert (factors >= 0.0).all()
        assert (factors <= shape.max_factor() + 1e-12).all()

    @pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: type(s).__name__)
    def test_mean_factor_between_bounds(self, shape):
        mean = shape.mean_factor(200.0)
        assert 0.0 <= mean <= shape.max_factor()

    @pytest.mark.parametrize("shape", ALL_SHAPES, ids=lambda s: type(s).__name__)
    def test_hashable_for_scenario_cache_keys(self, shape):
        assert hash(shape) == hash(shape)


class TestIndividualShapes:
    def test_diurnal_oscillates_around_one(self):
        shape = DiurnalShape(period_s=100.0, amplitude=0.5)
        assert shape.factor(25.0) == pytest.approx(1.5)
        assert shape.factor(75.0) == pytest.approx(0.5)
        assert shape.mean_factor(100.0) == pytest.approx(1.0, abs=0.01)

    def test_ramp_endpoints_and_midpoint(self):
        shape = RampShape(10.0, 20.0, start_factor=1.0, end_factor=3.0)
        assert shape.factor(0.0) == 1.0
        assert shape.factor(15.0) == pytest.approx(2.0)
        assert shape.factor(25.0) == 3.0

    def test_step_levels(self):
        shape = StepShape(times_s=(10.0, 20.0), factors=(4.0, 0.25))
        assert shape.factor(5.0) == 1.0
        assert shape.factor(10.0) == 4.0
        assert shape.factor(19.9) == 4.0
        assert shape.factor(30.0) == 0.25

    def test_flash_crowd_profile(self):
        shape = FlashCrowdShape(
            peak_time_s=50.0, magnitude=9.0, rise_s=10.0, decay_s=20.0
        )
        assert shape.factor(30.0) == 1.0
        assert shape.factor(45.0) == pytest.approx(5.0)
        assert shape.factor(50.0) == pytest.approx(9.0)
        # One decay constant later: 1 + 8/e.
        assert shape.factor(70.0) == pytest.approx(1.0 + 8.0 / np.e)

    def test_composite_multiplies(self):
        shape = CompositeShape((ConstantShape(2.0), ConstantShape(0.5)))
        assert shape.factor(12.0) == pytest.approx(1.0)
        assert shape.max_factor() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalShape(amplitude=1.5)
        with pytest.raises(ConfigurationError):
            RampShape(20.0, 10.0)
        with pytest.raises(ConfigurationError):
            StepShape(times_s=(10.0, 5.0), factors=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            FlashCrowdShape(peak_time_s=10.0, magnitude=0.5)
        with pytest.raises(ConfigurationError):
            CompositeShape(())
