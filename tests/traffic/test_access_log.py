"""Tests for HTTP access-log (Common/Combined Log Format) ingestion."""

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.traffic.trace import (
    RateTrace,
    looks_like_access_log,
)

CLF_LINE = (
    '{host} - {user} [{ts}] "GET {path} HTTP/1.0" {status} {size}'
)
COMBINED_SUFFIX = ' "http://example.com/start.html" "Mozilla/4.08"'


def _log_lines(timestamps, combined=False):
    lines = []
    for i, ts in enumerate(timestamps):
        line = CLF_LINE.format(
            host=f"10.0.0.{i % 250}",
            user="frank" if i % 3 else "-",
            ts=ts,
            path=f"/item/{i}",
            status=200 if i % 5 else 404,
            size=2048 if i % 7 else "-",
        )
        if combined:
            line += COMBINED_SUFFIX
        lines.append(line)
    return lines


def _write(tmp_path, lines, name="access.log"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestAccessLogIngestion:
    def test_counts_bin_into_intervals(self, tmp_path):
        # 3 requests in second 0, 1 in second 2, 2 in second 5.
        stamps = (
            ["10/Oct/2000:13:55:36 -0700"] * 3
            + ["10/Oct/2000:13:55:38 -0700"]
            + ["10/Oct/2000:13:55:41 -0700"] * 2
        )
        path = _write(tmp_path, _log_lines(stamps))
        trace = RateTrace.from_access_log(path, interval_s=1.0)
        assert trace.start_time_s == 0.0
        assert list(trace.rates_rps) == [3.0, 0.0, 1.0, 0.0, 0.0, 2.0]
        assert trace.total_expected_arrivals() == pytest.approx(6.0)

    def test_combined_format_parses(self, tmp_path):
        stamps = ["01/Jan/2024:00:00:00 +0000"] * 4
        path = _write(tmp_path, _log_lines(stamps, combined=True))
        trace = RateTrace.from_access_log(path, interval_s=2.0)
        assert trace.total_expected_arrivals() == pytest.approx(4.0)

    def test_timezone_offsets_normalize(self, tmp_path):
        # The same instant written in two zones must land in one bin.
        stamps = [
            "10/Oct/2000:13:55:36 -0700",
            "10/Oct/2000:20:55:36 +0000",
        ]
        path = _write(tmp_path, _log_lines(stamps))
        trace = RateTrace.from_access_log(path, interval_s=1.0)
        assert len(trace) == 1
        assert trace.rates_rps[0] == 2.0

    def test_noisy_lines_skipped_within_tolerance(self, tmp_path):
        stamps = ["10/Oct/2000:13:55:36 -0700"] * 30
        lines = _log_lines(stamps) + ["corrupted partial li"]
        path = _write(tmp_path, lines)
        trace = RateTrace.from_access_log(path, interval_s=1.0)
        assert trace.total_expected_arrivals() == pytest.approx(30.0)

    def test_mostly_garbage_rejected(self, tmp_path):
        lines = _log_lines(["10/Oct/2000:13:55:36 -0700"]) + [
            f"noise {i}" for i in range(20)
        ]
        path = _write(tmp_path, lines)
        with pytest.raises(AnalysisError):
            RateTrace.from_access_log(path)

    def test_empty_file_rejected(self, tmp_path):
        path = _write(tmp_path, [""])
        with pytest.raises(AnalysisError):
            RateTrace.from_access_log(path)


class TestAutoDetection:
    def test_from_file_sniffs_clf(self, tmp_path):
        stamps = ["10/Oct/2000:13:55:36 -0700"] * 5
        path = _write(tmp_path, _log_lines(stamps), name="worldcup.log")
        assert looks_like_access_log(path)
        trace = RateTrace.from_file(path)
        assert trace.total_expected_arrivals() == pytest.approx(5.0)

    def test_from_file_still_rejects_unknown_formats(self, tmp_path):
        path = _write(tmp_path, ["not a log at all"], name="data.bin")
        assert not looks_like_access_log(path)
        with pytest.raises(ConfigurationError):
            RateTrace.from_file(path)

    def test_csv_extension_still_uses_csv_reader(self, tmp_path):
        trace = RateTrace([5.0, 7.0], interval_s=2.0)
        path = str(tmp_path / "offered.csv")
        trace.to_csv(path)
        assert RateTrace.from_file(path) == trace

    def test_traffic_spec_replays_an_access_log(self, tmp_path):
        """End to end: trace:<access.log> builds a replay process."""
        from repro.rubis.workload import browsing_mix
        from repro.traffic.spec import TrafficSpec, build_process
        import numpy as np

        stamps = ["10/Oct/2000:13:55:36 -0700"] * 40 + [
            "10/Oct/2000:13:55:38 -0700"
        ] * 40
        path = _write(tmp_path, _log_lines(stamps))
        spec = TrafficSpec.from_cli_string(f"trace:{path}")
        process = build_process(
            spec, browsing_mix(), np.random.default_rng(7)
        )
        arrivals = []
        t = process.next_arrival()
        while t is not None:
            arrivals.append(t)
            t = process.next_arrival()
        assert len(arrivals) > 0
        assert all(0.0 <= t <= 6.0 for t in arrivals)
