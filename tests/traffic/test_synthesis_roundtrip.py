"""The characterize -> model -> regenerate round trip.

Satellite acceptance: fit a model on a run, synthesize a rate trace
from it, replay the trace open-loop, re-fit on the replayed run — the
re-fitted parameters must sit within the tolerances documented in
:mod:`repro.traffic.synthesis`:

* replayed mean rate within 10 % of the synthesized trace's mean,
* re-fitted regime means within 25 % of the originals,
* a re-fitted AR model keeps the original's mean within 15 % and stays
  stationary.

The source run is an MMPP open-loop scenario: a genuinely
regime-switching workload, so both regimes are well-populated and the
fitted parameters are statistically meaningful at CI horizons.
"""

import pytest

from repro.analysis.models import ARModel, HistogramWorkloadModel, RegimeModel
from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import open_loop_scenario
from repro.sim.random import RandomStreams
from repro.traffic.driver import ArrivalMeter
from repro.traffic.synthesis import (
    fit_rate_models,
    regime_means_match,
    synthesize_rate_trace,
)
from repro.traffic.trace import TraceReplayProcess

SOURCE_DURATION_S = 240.0
REPLAY_INTERVALS = 240


@pytest.fixture(scope="module")
def source_run():
    spec = open_loop_scenario(
        "virtualized",
        "browsing",
        kind="mmpp",
        rate_rps=60.0,
        duration_s=SOURCE_DURATION_S,
        clients=400,
    )
    return run_scenario(spec)


@pytest.fixture(scope="module")
def source_models(source_run):
    return fit_rate_models(source_run.arrival_trace)


def _replay(trace, tmp_path, clients=400):
    path = str(tmp_path / "synthesized.npz")
    trace.to_npz(path)
    spec = open_loop_scenario(
        "virtualized",
        "browsing",
        kind=f"trace:{path}",
        duration_s=trace.duration_s,
        clients=clients,
    )
    return run_scenario(spec)


class TestModelSynthesisRoundTrip:
    def test_source_models_fit(self, source_models):
        assert isinstance(source_models["ar"], ARModel)
        assert isinstance(source_models["regime"], RegimeModel)
        assert isinstance(
            source_models["histogram"], HistogramWorkloadModel
        )

    def test_regime_round_trip(self, source_run, source_models, tmp_path):
        regime = source_models["regime"]
        rng = RandomStreams(seed=99).stream("synthesis")
        trace = synthesize_rate_trace(
            regime,
            REPLAY_INTERVALS,
            source_run.arrival_trace.interval_s,
            rng,
        )
        result = _replay(trace, tmp_path)
        replayed = result.arrival_trace
        assert replayed.mean_rate_rps() == pytest.approx(
            trace.mean_rate_rps(), rel=0.10
        )
        refit = fit_rate_models(replayed)["regime"]
        assert isinstance(refit, RegimeModel)
        assert regime_means_match(regime, refit, tolerance=0.25)

    def test_ar_round_trip(self, source_run, source_models, tmp_path):
        ar = source_models["ar"]
        rng = RandomStreams(seed=77).stream("synthesis")
        trace = synthesize_rate_trace(
            ar,
            REPLAY_INTERVALS,
            source_run.arrival_trace.interval_s,
            rng,
        )
        result = _replay(trace, tmp_path)
        refit = fit_rate_models(result.arrival_trace)["ar"]
        assert isinstance(refit, ARModel)
        assert refit.mean == pytest.approx(ar.mean, rel=0.15)
        assert ar.is_stationary()
        assert refit.is_stationary()

    def test_histogram_replay_without_deployment(self, source_models):
        """Fast pure-generator round trip: marginal mean is preserved."""
        histogram = source_models["histogram"]
        rng = RandomStreams(seed=55).stream("synthesis")
        trace = synthesize_rate_trace(histogram, 500, 2.0, rng)
        process = TraceReplayProcess(
            trace, RandomStreams(seed=55).stream("replay")
        )
        meter = ArrivalMeter(interval_s=2.0)
        while (t := process.next_arrival()) is not None:
            meter.record(t)
        replayed = meter.to_rate_trace(trace.duration_s)
        assert replayed.mean_rate_rps() == pytest.approx(
            histogram.mean(), rel=0.10
        )

    def test_synthesis_is_seed_deterministic(self, source_models):
        regime = source_models["regime"]

        def synth(seed):
            rng = RandomStreams(seed=seed).stream("synthesis")
            return synthesize_rate_trace(regime, 100, 2.0, rng)

        assert synth(1).sha256() == synth(1).sha256()
        assert synth(1).sha256() != synth(2).sha256()

    def test_rejects_unknown_model(self):
        rng = RandomStreams(seed=1).stream("synthesis")
        with pytest.raises(ConfigurationError):
            synthesize_rate_trace(object(), 10, 2.0, rng)

    def test_clips_negative_rates(self, source_models):
        ar = source_models["ar"]
        rng = RandomStreams(seed=3).stream("synthesis")
        trace = synthesize_rate_trace(ar, 500, 2.0, rng, floor_rps=0.0)
        assert (trace.rates_rps >= 0.0).all()
