"""OpenLoopDriver unit tests against a stub deployment."""

import numpy as np
import pytest

from repro.apps.requests import Request, ResourceDemand
from repro.errors import ConfigurationError
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import SessionType, browsing_mix
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.arrivals import PoissonProcess
from repro.traffic.driver import ArrivalMeter, OpenLoopDriver

MATRICES = {
    SessionType.BROWSE: browsing_matrix(),
    SessionType.BID: bidding_matrix(),
}


def _stub_send(sim: Simulator, response_time_s: float = 0.01):
    """A deployment stand-in answering every request after a delay."""

    def send(session, interaction, on_response):
        request = Request(
            session.session_id, interaction, ResourceDemand(), sim.now
        )
        sim.schedule(response_time_s, on_response, request)

    return send


def _driver(
    sim,
    rate=50.0,
    seed=7,
    response_time_s=0.01,
    **kwargs,
):
    streams = RandomStreams(seed=seed)
    rng = streams.stream("traffic")
    return OpenLoopDriver(
        sim,
        browsing_mix(clients=100),
        _stub_send(sim, response_time_s),
        rng,
        MATRICES,
        PoissonProcess(rate, rng),
        **kwargs,
    )


class TestOpenLoopDriver:
    def test_offered_arrivals_track_rate(self):
        sim = Simulator()
        driver = _driver(sim, rate=50.0)
        driver.start()
        sim.run_until(100.0)
        assert driver.arrivals_offered == pytest.approx(5000, rel=0.1)
        assert driver.stats.requests_sent == driver.arrivals_admitted
        assert driver.arrivals_shed == 0

    def test_sessions_complete_and_drain(self):
        sim = Simulator()
        driver = _driver(sim, rate=20.0)
        driver.start()
        sim.run_until(50.0)
        # Give in-flight responses time to land; no new arrivals are
        # pulled once the run loop stops pumping past the horizon.
        assert driver.active_session_count() <= 2
        assert driver.sessions_completed >= driver.arrivals_admitted - 2
        assert driver.stats.responses_received > 0

    def test_budget_sheds_and_caps_in_flight(self):
        sim = Simulator()
        # Responses take 5 s at 50 arrivals/s: unbounded in-flight would
        # reach ~250, so a budget of 20 must shed heavily.
        driver = _driver(
            sim, rate=50.0, response_time_s=5.0, session_budget=20
        )
        driver.start()
        sim.run_until(60.0)
        assert driver.arrivals_shed > 0
        assert driver.active_session_count() <= 20
        report = driver.summary()
        assert report["shed"] == driver.arrivals_shed
        assert 0.0 < report["shed_fraction"] < 1.0
        assert (
            report["offered"] == report["admitted"] + report["shed"]
        )

    def test_multi_request_sessions_think_between_steps(self):
        sim = Simulator()
        driver = _driver(sim, rate=5.0, requests_per_session=4)
        driver.start()
        sim.run_until(400.0)
        # Each admitted session eventually issues 4 requests.
        completed = driver.sessions_completed
        assert completed > 0
        assert driver.stats.requests_sent >= 4 * completed
        # Think times keep multi-request sessions alive ~3 * 7 s, so
        # concurrency sits well above the arrival count of one tick.
        assert driver.stats.responses_received > completed

    def test_deterministic_across_runs(self):
        def run():
            sim = Simulator()
            driver = _driver(sim, rate=40.0, seed=123)
            driver.start()
            sim.run_until(50.0)
            return driver

        a, b = run(), run()
        assert a.arrivals_offered == b.arrivals_offered
        assert a.stats.requests_sent == b.stats.requests_sent
        assert (
            a.meter.to_rate_trace(50.0).sha256()
            == b.meter.to_rate_trace(50.0).sha256()
        )

    def test_start_twice_rejected(self):
        sim = Simulator()
        driver = _driver(sim)
        driver.start()
        with pytest.raises(ConfigurationError):
            driver.start()

    def test_validates_configuration(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            _driver(sim, session_budget=0)
        with pytest.raises(ConfigurationError):
            _driver(sim, requests_per_session=0)


class TestArrivalMeter:
    def test_bins_and_rate_trace(self):
        meter = ArrivalMeter(interval_s=2.0)
        for t in (0.1, 0.5, 1.9, 2.0, 5.99):
            meter.record(t)
        np.testing.assert_array_equal(meter.counts, [3, 1, 1])
        trace = meter.to_rate_trace()
        np.testing.assert_allclose(trace.rates_rps, [1.5, 0.5, 0.5])

    def test_horizon_pads_with_zero_intervals(self):
        meter = ArrivalMeter(interval_s=2.0)
        meter.record(1.0)
        trace = meter.to_rate_trace(horizon_s=10.0)
        assert len(trace) == 5
        np.testing.assert_allclose(
            trace.rates_rps, [0.5, 0.0, 0.0, 0.0, 0.0]
        )

    def test_boundary_arrival_at_horizon_kept(self):
        meter = ArrivalMeter(interval_s=2.0)
        for t in (0.5, 1.5, 3.9, 10.0):  # run_until fires t==horizon
            meter.record(t)
        trace = meter.to_rate_trace(horizon_s=10.0)
        assert trace.total_expected_arrivals() == meter.total

    def test_growth_beyond_initial_capacity(self):
        meter = ArrivalMeter(interval_s=1.0)
        meter.record(500.0)
        assert meter.counts[500] == 1
        assert meter.total == 1

    def test_rejects_pre_start_arrivals(self):
        meter = ArrivalMeter(interval_s=1.0, start_time_s=10.0)
        with pytest.raises(ConfigurationError):
            meter.record(5.0)
