"""Rate-trace ingestion, serialization and fingerprinting tests.

The columnar-export round trip is the load-bearing case: a recorded
run's columnar matrix written by :mod:`repro.monitoring.export` must
come back through :meth:`RateTrace.from_file` as replayable offered
load.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError, ConfigurationError
from repro.monitoring.columnar import ColumnarRows
from repro.monitoring.export import (
    read_columnar_npz,
    write_columnar_csv,
    write_columnar_npz,
)
from repro.sim.random import RandomStreams
from repro.traffic.trace import RateTrace, TraceReplayProcess


def _trace() -> RateTrace:
    return RateTrace([12.0, 30.0, 0.0, 7.5, 90.0], interval_s=2.0)


class TestRateTraceBasics:
    def test_grid_and_aggregates(self):
        trace = _trace()
        assert len(trace) == 5
        assert trace.duration_s == 10.0
        assert trace.mean_rate_rps() == pytest.approx(27.9)
        assert trace.total_expected_arrivals() == pytest.approx(279.0)
        np.testing.assert_allclose(trace.times_s, [0, 2, 4, 6, 8])

    def test_rate_at(self):
        trace = _trace()
        assert trace.rate_at(0.0) == 12.0
        assert trace.rate_at(3.9) == 30.0
        assert trace.rate_at(4.0) == 0.0
        assert trace.rate_at(-1.0) == 0.0
        assert trace.rate_at(10.0) == 0.0

    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            RateTrace([], interval_s=1.0)
        with pytest.raises(ConfigurationError):
            RateTrace([1.0], interval_s=0.0)
        with pytest.raises(AnalysisError):
            RateTrace([1.0, -2.0], interval_s=1.0)
        with pytest.raises(AnalysisError):
            RateTrace([1.0, float("nan")], interval_s=1.0)

    def test_scaled(self):
        doubled = _trace().scaled(2.0)
        assert doubled.mean_rate_rps() == pytest.approx(55.8)

    def test_from_counts(self):
        trace = RateTrace.from_counts([10, 20, 0], interval_s=2.0)
        np.testing.assert_allclose(trace.rates_rps, [5.0, 10.0, 0.0])

    def test_does_not_freeze_caller_array(self):
        rates = np.ones(5)
        trace = RateTrace(rates, interval_s=1.0)
        rates[0] = 3.0  # caller's buffer must stay writable
        assert trace.rates_rps[0] == 1.0


class TestResample:
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=500.0),
            min_size=2,
            max_size=40,
        ),
        factor=st.sampled_from([0.25, 0.5, 2.0, 3.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_resample_conserves_volume(self, rates, factor):
        trace = RateTrace(rates, interval_s=2.0)
        resampled = trace.resample(2.0 * factor)
        assert resampled.total_expected_arrivals() == pytest.approx(
            trace.total_expected_arrivals(), rel=1e-9, abs=1e-6
        )

    def test_resample_to_sim_clock_grid(self):
        trace = RateTrace([10.0, 20.0], interval_s=3.0)
        fine = trace.resample(1.0)
        assert len(fine) == 6
        np.testing.assert_allclose(
            fine.rates_rps, [10, 10, 10, 20, 20, 20]
        )


class TestSerialization:
    def test_csv_round_trip(self, tmp_path):
        trace = _trace()
        path = str(tmp_path / "trace.csv")
        trace.to_csv(path)
        assert RateTrace.from_csv(path) == trace

    def test_npz_round_trip(self, tmp_path):
        trace = _trace()
        path = str(tmp_path / "trace.npz")
        trace.to_npz(path)
        assert RateTrace.from_npz(path) == trace

    def test_from_file_dispatches_on_extension(self, tmp_path):
        trace = _trace()
        csv_path = str(tmp_path / "trace.csv")
        npz_path = str(tmp_path / "trace.npz")
        trace.to_csv(csv_path)
        trace.to_npz(npz_path)
        assert RateTrace.from_file(csv_path) == trace
        assert RateTrace.from_file(npz_path) == trace
        with pytest.raises(ConfigurationError):
            RateTrace.from_file(str(tmp_path / "trace.parquet"))

    def test_csv_round_trip_with_non_decimal_interval(self, tmp_path):
        trace = RateTrace(np.ones(10) * 8.0, interval_s=1.0 / 3.0)
        path = str(tmp_path / "thirds.csv")
        trace.to_csv(path)
        loaded = RateTrace.from_csv(path)
        assert loaded.interval_s == pytest.approx(1.0 / 3.0, rel=1e-6)
        np.testing.assert_allclose(loaded.rates_rps, trace.rates_rps)

    def test_nonuniform_grid_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,rate_rps\n0.0,1.0\n1.0,2.0\n3.5,3.0\n"
        )
        with pytest.raises(AnalysisError):
            RateTrace.from_csv(str(path))


class TestColumnarRoundTrip:
    """monitoring.export columnar files as trace-ingestion fixtures."""

    def _table(self) -> ColumnarRows:
        table = ColumnarRows(
            ["time_s", "web|requests_rps", "db|cpu_pct"]
        )
        for i in range(8):
            table.append_row([2.0 * i, 50.0 + 5.0 * i, 30.0])
        return table

    def test_csv_column_selection(self, tmp_path):
        path = str(tmp_path / "cols.csv")
        write_columnar_csv(self._table(), path)
        trace = RateTrace.from_file(path, column="web|requests_rps")
        assert len(trace) == 8
        assert trace.interval_s == pytest.approx(2.0)
        assert trace.rates_rps[0] == pytest.approx(50.0)

    def test_npz_column_selection(self, tmp_path):
        path = str(tmp_path / "cols.npz")
        write_columnar_npz(self._table(), path)
        trace = RateTrace.from_file(path, column="web|requests_rps")
        assert len(trace) == 8
        assert trace.rates_rps[-1] == pytest.approx(85.0)

    def test_missing_column_reports_choices(self, tmp_path):
        path = str(tmp_path / "cols.csv")
        write_columnar_csv(self._table(), path)
        with pytest.raises(AnalysisError):
            RateTrace.from_file(path, column="nope")

    def test_columnar_npz_full_round_trip(self, tmp_path):
        table = self._table()
        path = str(tmp_path / "cols.npz")
        write_columnar_npz(table, path)
        loaded = read_columnar_npz(path)
        assert loaded.columns == table.columns
        np.testing.assert_allclose(loaded.matrix(), table.matrix())


class TestFingerprint:
    def test_stable_and_content_sensitive(self):
        trace = _trace()
        assert trace.sha256() == _trace().sha256()
        assert trace.sha256() != trace.scaled(1.01).sha256()
        assert (
            trace.sha256()
            != RateTrace(trace.rates_rps, interval_s=4.0).sha256()
        )


class TestReplay:
    def test_expected_count_and_exhaustion(self):
        trace = RateTrace(np.full(200, 25.0), interval_s=1.0)
        process = TraceReplayProcess(
            trace, RandomStreams(seed=8).stream("replay")
        )
        times = []
        while True:
            t = process.next_arrival()
            if t is None:
                break
            times.append(t)
        assert len(times) == pytest.approx(5000, rel=0.05)
        assert np.all(np.diff(times) >= 0)
        assert times[-1] <= trace.end_time_s

    def test_zero_rate_intervals_emit_nothing(self):
        trace = RateTrace([50.0, 0.0, 50.0], interval_s=1.0)
        process = TraceReplayProcess(
            trace, RandomStreams(seed=8).stream("replay")
        )
        times = []
        while (t := process.next_arrival()) is not None:
            times.append(t)
        gap = [t for t in times if 1.0 <= t < 2.0]
        assert gap == []

    def test_loop_mode_tiles_the_trace(self):
        trace = RateTrace([30.0], interval_s=1.0)
        process = TraceReplayProcess(
            trace, RandomStreams(seed=8).stream("replay"), loop=True
        )
        times = [process.next_arrival() for _ in range(200)]
        assert all(t is not None for t in times)
        assert times[-1] > trace.end_time_s

    def test_loop_rejects_all_zero_trace(self):
        trace = RateTrace(np.zeros(3), interval_s=1.0)
        with pytest.raises(ConfigurationError):
            TraceReplayProcess(
                trace, RandomStreams(seed=8).stream("replay"), loop=True
            )
