"""Shed-arrival retries with backoff, and the runtime budget actuator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import PAPER_COMPOSITIONS, SessionType
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.traffic.arrivals import PoissonProcess
from repro.traffic.driver import OpenLoopDriver


def _make_driver(
    sim,
    streams,
    rate_rps=50.0,
    session_budget=5,
    retry_max=0,
    retry_backoff_s=1.0,
    service_s=5.0,
):
    """Driver against a slow echo server (responses after service_s)."""

    def send_fn(session, interaction, on_response):
        class _Request:
            def __init__(self):
                self.completed_at = None
                self.response_time = None

        request = _Request()
        sim.schedule(service_s, on_response, request)

    matrices = {
        SessionType.BROWSE: browsing_matrix(),
        SessionType.BID: bidding_matrix(),
    }
    return OpenLoopDriver(
        sim,
        PAPER_COMPOSITIONS["browsing"],
        send_fn,
        streams.stream("traffic.sessions"),
        matrices,
        PoissonProcess(rate_rps, streams.stream("traffic.arrivals")),
        session_budget=session_budget,
        retry_max=retry_max,
        retry_backoff_s=retry_backoff_s,
    )


class TestRetrySemantics:
    def test_disabled_retries_abandon_immediately(self):
        sim = Simulator()
        driver = _make_driver(sim, RandomStreams(seed=9))
        driver.start()
        sim.run_until(20.0)
        assert driver.arrivals_shed > 0
        assert driver.arrivals_retried == 0
        assert driver.arrivals_abandoned == driver.arrivals_shed
        report = driver.summary()
        assert report["offered"] == report["admitted"] + report["shed"]
        assert report["abandonment_fraction"] == report["shed_fraction"]

    def test_retries_recover_some_shed_arrivals(self):
        sim = Simulator()
        driver = _make_driver(
            sim, RandomStreams(seed=9), retry_max=3, retry_backoff_s=2.0
        )
        driver.start()
        sim.run_until(60.0)
        assert driver.arrivals_retried > 0
        # Some retried visits got in: not every shed arrival is lost.
        assert driver.arrivals_abandoned < driver.arrivals_shed
        report = driver.summary()
        assert report["retried"] == driver.arrivals_retried
        assert report["abandoned"] == driver.arrivals_abandoned
        assert report["abandonment_fraction"] < report["shed_fraction"]

    def test_retries_do_not_perturb_the_offered_stream(self):
        shas = []
        totals = []
        for retry_max in (0, 3):
            sim = Simulator()
            driver = _make_driver(
                sim, RandomStreams(seed=21), retry_max=retry_max
            )
            driver.start()
            sim.run_until(30.0)
            trace = driver.meter.to_rate_trace(30.0)
            shas.append(trace.sha256())
            totals.append(driver.arrivals_offered)
        assert shas[0] == shas[1]
        assert totals[0] == totals[1]

    def test_backoff_is_exponential_and_capped(self):
        sim = Simulator()
        driver = _make_driver(
            sim,
            RandomStreams(seed=5),
            rate_rps=1e-9,  # no organic arrivals interfere
            session_budget=1,
            retry_max=2,
            retry_backoff_s=1.0,
            service_s=1e9,  # the budget never frees up
        )
        # Fill the budget, then shed one arrival by hand.
        driver._admit()
        driver.arrivals_offered += 1
        driver.arrivals_shed += 1
        driver._handle_shed(attempt=0)
        # Retry 1 at +1 s, retry 2 at +1+2 s, then abandonment.
        sim.run_until(0.9)
        assert driver.arrivals_retried == 1
        sim.run_until(1.1)
        assert driver.arrivals_retried == 2
        assert driver.arrivals_abandoned == 0
        sim.run_until(3.1)
        assert driver.arrivals_retried == 2
        assert driver.arrivals_abandoned == 1

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            _make_driver(sim, RandomStreams(seed=1), retry_max=-1)
        with pytest.raises(ConfigurationError):
            _make_driver(sim, RandomStreams(seed=1), retry_backoff_s=0.0)


class TestBudgetActuator:
    def test_raising_the_budget_admits_future_arrivals(self):
        sim = Simulator()
        driver = _make_driver(
            sim, RandomStreams(seed=9), session_budget=5, service_s=1e9
        )
        driver.start()
        sim.run_until(5.0)
        assert driver.active_session_count() == 5
        shed_before = driver.arrivals_shed
        assert shed_before > 0
        driver.set_session_budget(500)
        sim.run_until(10.0)
        assert driver.active_session_count() > 5
        assert driver.session_budget == 500

    def test_lowering_the_budget_never_evicts(self):
        sim = Simulator()
        driver = _make_driver(
            sim, RandomStreams(seed=9), session_budget=50, service_s=1e9
        )
        driver.start()
        sim.run_until(5.0)
        in_flight = driver.active_session_count()
        assert in_flight > 10
        driver.set_session_budget(1)
        assert driver.active_session_count() == in_flight

    def test_budget_validation(self):
        sim = Simulator()
        driver = _make_driver(sim, RandomStreams(seed=9))
        with pytest.raises(ConfigurationError):
            driver.set_session_budget(0)
        driver.set_session_budget(None)
        assert driver.session_budget is None


class TestSpecRoundTrip:
    def test_traffic_spec_carries_retry_knobs(self):
        from repro.traffic.spec import TrafficSpec

        spec = TrafficSpec(kind="poisson", retry_max=2, retry_backoff_s=4.0)
        assert spec.retry_max == 2
        with pytest.raises(ConfigurationError):
            TrafficSpec(kind="poisson", retry_max=-1)
        with pytest.raises(ConfigurationError):
            TrafficSpec(kind="poisson", retry_backoff_s=0.0)
