"""Property tests for the arrival processes.

Every process must satisfy the open-loop generator contract:

* empirical rate within tolerance of the nominal rate,
* identical streams for identical seeds (bit-exact),
* disjoint streams for distinct stream names (distinct spawn keys),
* nondecreasing arrival times.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams
from repro.traffic.arrivals import (
    BModelProcess,
    MMPPProcess,
    ModulatedProcess,
    PoissonProcess,
    drain_process,
)
from repro.traffic.shapes import ConstantShape, RampShape
from repro.traffic.trace import RateTrace, TraceReplayProcess

RATE = 40.0
HORIZON = 500.0


def _make(kind: str, streams: RandomStreams, name: str = "traffic"):
    rng = streams.stream(name)
    if kind == "poisson":
        return PoissonProcess(RATE, rng)
    if kind == "mmpp":
        # Time-weighted average (0.5*3 + 2.5*1) / 4 = 1.0 x RATE.
        return MMPPProcess((RATE * 0.5, RATE * 2.5), (3.0, 1.0), rng)
    if kind == "bmodel":
        return BModelProcess(RATE, rng, bias=0.72, window_s=32.0, levels=5)
    if kind == "trace":
        trace = RateTrace(
            np.full(int(HORIZON), RATE), interval_s=1.0
        )
        return TraceReplayProcess(trace, rng)
    raise AssertionError(kind)


KINDS = ("poisson", "mmpp", "bmodel", "trace")


class TestArrivalProperties:
    @pytest.mark.parametrize("kind", KINDS)
    def test_empirical_rate_near_nominal(self, kind):
        process = _make(kind, RandomStreams(seed=11))
        times = drain_process(process, HORIZON)
        empirical = len(times) / HORIZON
        # MMPP averages over regime cycles, so give it the widest band.
        tolerance = 0.15 if kind == "mmpp" else 0.10
        assert empirical == pytest.approx(RATE, rel=tolerance)

    @pytest.mark.parametrize("kind", KINDS)
    def test_nominal_rate_attribute(self, kind):
        process = _make(kind, RandomStreams(seed=11))
        assert process.rate_rps == pytest.approx(RATE, rel=1e-6)

    @pytest.mark.parametrize("kind", KINDS)
    def test_times_nondecreasing(self, kind):
        process = _make(kind, RandomStreams(seed=7))
        times = drain_process(process, 100.0)
        assert len(times) > 0
        assert np.all(np.diff(times) >= 0)

    @pytest.mark.parametrize("kind", KINDS)
    def test_identical_seeds_identical_streams(self, kind):
        a = drain_process(_make(kind, RandomStreams(seed=5)), 50.0)
        b = drain_process(_make(kind, RandomStreams(seed=5)), 50.0)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("kind", KINDS)
    def test_distinct_seeds_distinct_streams(self, kind):
        a = drain_process(_make(kind, RandomStreams(seed=5)), 50.0)
        b = drain_process(_make(kind, RandomStreams(seed=6)), 50.0)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("kind", KINDS)
    def test_distinct_stream_names_disjoint(self, kind):
        """Distinct spawn keys must decorrelate the arrival streams."""
        streams = RandomStreams(seed=5)
        a = drain_process(_make(kind, streams, name="traffic"), 50.0)
        b = drain_process(_make(kind, streams, name="traffic.alt"), 50.0)
        assert not np.array_equal(a, b)


class TestPoisson:
    def test_interarrival_mean_and_cv(self):
        process = PoissonProcess(10.0, RandomStreams(seed=3).stream("t"))
        times = drain_process(process, 2000.0)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(0.1, rel=0.05)
        # Exponential gaps: coefficient of variation 1.
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_rejects_nonpositive_rate(self):
        rng = RandomStreams(seed=1).stream("t")
        with pytest.raises(ConfigurationError):
            PoissonProcess(0.0, rng)


class TestMMPP:
    def test_burstier_than_poisson(self):
        """Index of dispersion of counts must exceed the Poisson 1.0."""
        streams = RandomStreams(seed=9)
        mmpp = MMPPProcess((10.0, 160.0), (8.0, 2.0), streams.stream("m"))
        times = drain_process(mmpp, 4000.0)
        counts = np.histogram(times, bins=np.arange(0.0, 4000.0, 2.0))[0]
        dispersion = counts.var() / counts.mean()
        assert dispersion > 2.0

    def test_stationary_rate_weights_sojourns(self):
        rng = RandomStreams(seed=1).stream("m")
        mmpp = MMPPProcess((10.0, 40.0), (3.0, 1.0), rng)
        # (10*3 + 40*1) / 4 = 17.5 for the alternating default chain.
        assert mmpp.rate_rps == pytest.approx(17.5)

    def test_stationary_rate_on_periodic_three_cycle(self):
        """Exact pi for a periodic embedded chain (not power-iterable)."""
        rng = RandomStreams(seed=1).stream("m")
        cycle = ((0.0, 1.0, 0.0), (0.0, 0.0, 1.0), (1.0, 0.0, 0.0))
        mmpp = MMPPProcess(
            (10.0, 40.0, 100.0), (4.0, 2.0, 1.0), rng, transition=cycle
        )
        # pi = 1/3 each; time-weighted: (10*4+40*2+100*1)/(4+2+1).
        assert mmpp.rate_rps == pytest.approx(220.0 / 7.0)

    def test_validates_configuration(self):
        rng = RandomStreams(seed=1).stream("m")
        with pytest.raises(ConfigurationError):
            MMPPProcess((10.0,), (1.0,), rng)
        with pytest.raises(ConfigurationError):
            MMPPProcess((10.0, 20.0), (1.0, -1.0), rng)
        with pytest.raises(ConfigurationError):
            MMPPProcess(
                (10.0, 20.0), (1.0, 1.0), rng,
                transition=((0.5, 0.4), (1.0, 0.0)),
            )


class TestBModel:
    def test_burstier_with_higher_bias(self):
        def dispersion(bias):
            rng = RandomStreams(seed=21).stream("b")
            process = BModelProcess(
                50.0, rng, bias=bias, window_s=64.0, levels=6
            )
            times = drain_process(process, 1000.0)
            counts = np.histogram(
                times, bins=np.arange(0.0, 1000.0, 1.0)
            )[0]
            return counts.var() / counts.mean()

        assert dispersion(0.85) > dispersion(0.55) > 0.5

    def test_bias_half_is_poisson_like(self):
        rng = RandomStreams(seed=2).stream("b")
        process = BModelProcess(50.0, rng, bias=0.5, window_s=32.0)
        times = drain_process(process, 1000.0)
        counts = np.histogram(times, bins=np.arange(0.0, 1000.0, 1.0))[0]
        assert counts.var() / counts.mean() == pytest.approx(1.0, abs=0.25)

    def test_validates_bias(self):
        rng = RandomStreams(seed=1).stream("b")
        with pytest.raises(ConfigurationError):
            BModelProcess(10.0, rng, bias=0.4)
        with pytest.raises(ConfigurationError):
            BModelProcess(10.0, rng, bias=1.0)


class TestModulated:
    def test_identity_shape_preserves_rate(self):
        streams = RandomStreams(seed=13)
        base = PoissonProcess(RATE, streams.stream("base"))
        process = ModulatedProcess(
            base, ConstantShape(1.0), streams.stream("thin")
        )
        times = drain_process(process, HORIZON)
        assert len(times) / HORIZON == pytest.approx(RATE, rel=0.1)

    def test_ramp_shifts_mass_to_the_end(self):
        streams = RandomStreams(seed=13)
        shape = RampShape(0.0, 200.0, start_factor=0.2, end_factor=1.0)
        base = PoissonProcess(
            RATE * shape.max_factor(), streams.stream("base")
        )
        process = ModulatedProcess(base, shape, streams.stream("thin"))
        times = drain_process(process, 200.0)
        first_half = int((times < 100.0).sum())
        second_half = len(times) - first_half
        # Mean factor 0.4 early vs 0.9 late: expect roughly 2.25x.
        assert second_half > 1.7 * first_half

    def test_exhaustion_propagates(self):
        streams = RandomStreams(seed=4)
        trace = RateTrace([20.0, 20.0], interval_s=1.0)
        base = TraceReplayProcess(trace, streams.stream("r"))
        process = ModulatedProcess(
            base, ConstantShape(1.0), streams.stream("thin")
        )
        drain_process(process, 10.0)
        assert process.next_arrival() is None
