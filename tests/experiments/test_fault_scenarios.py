"""Tests for the fault-injection recovery scenarios (scenario level)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    consolidated_scenario,
    detect_and_evacuate_scenario,
    noisy_neighbor_theft_scenario,
    scenario,
    scenario_catalog,
)
from repro.faults.scoring import score_run
from repro.faults.spec import FaultSchedule, FaultSpec


@pytest.fixture(scope="module")
def evacuation_run():
    """One detect-and-evacuate drill, shared across the assertions."""
    return run_scenario(
        detect_and_evacuate_scenario(duration_s=180.0, clients=400)
    )


class TestDetectAndEvacuate:
    def test_failed_server_is_detected(self, evacuation_run):
        fleet = evacuation_run.control_reports["fleet"]
        assert fleet["failed_servers"] == ["cloud-1"]
        assert fleet["actions_by_kind"].get("server_failed", 0) == 1

    def test_every_guest_is_evacuated_to_the_survivor(self, evacuation_run):
        fleet = evacuation_run.control_reports["fleet"]
        evacuations = fleet["evacuations"]
        assert {e["domain"] for e in evacuations} == {
            "web-vm", "db-vm", "batch-vm",
        }
        assert all(e["source"] == "cloud-1" for e in evacuations)
        assert all(e["dest"] == "cloud-2" for e in evacuations)
        assert all(e["forced"] for e in evacuations)
        # Latency-sensitive guests leave first; the batch tenant waits.
        assert evacuations[-1]["domain"] == "batch-vm"
        assert fleet["placement"]["cloud-1"] == []
        assert sorted(fleet["placement"]["cloud-2"]) == [
            "batch-vm", "db-vm", "web-vm",
        ]

    def test_forced_evacuations_do_not_consume_the_voluntary_budget(
        self, evacuation_run
    ):
        # max_migrations=1 in the drill's FleetSpec: three forced
        # evacuations completed anyway, and none were accounted as
        # voluntary migrations.
        fleet = evacuation_run.control_reports["fleet"]
        assert len(fleet["evacuations"]) == 3
        assert fleet["migrations"] == []
        assert fleet["num_actions"] == 0

    def test_recovery_is_scored_off_the_fleet_p95(self, evacuation_run):
        score, = score_run(
            evacuation_run, slo_ms=100.0, sustain_windows=10
        )
        assert score.fault_time_s == 60.0
        assert score.detection_s is not None and score.detection_s > 0
        assert score.recovered
        assert score.recovery_s > score.detection_s
        assert score.slo_violation_s > 0

    def test_fault_traces_are_merged(self, evacuation_run):
        traces = evacuation_run.traces
        assert "faults" in traces.entities()
        assert traces.get("faults", "injected").values.max() == 1.0
        assert traces.get("fleet", "failed_servers").values.max() == 1.0
        assert traces.get("fleet", "evacuations_done").values.max() == 3.0

    def test_watch_only_baseline_never_recovers(self):
        result = run_scenario(
            detect_and_evacuate_scenario(
                duration_s=180.0, clients=400, fleet=False
            )
        )
        fleet = result.control_reports["fleet"]
        assert fleet["evacuations"] == []
        assert fleet["failed_servers"] == []
        score, = score_run(result, slo_ms=100.0, sustain_windows=10)
        assert score.detected_at_s is not None
        assert not score.recovered


class TestNoisyNeighborTheft:
    def test_active_controller_heals_the_theft(self):
        healed = run_scenario(
            noisy_neighbor_theft_scenario(duration_s=120.0, clients=600)
        )
        static = run_scenario(
            noisy_neighbor_theft_scenario(
                duration_s=120.0, clients=600, controller="static"
            )
        )
        healed_score, = score_run(
            healed, slo_ms=100.0, entity="control", sustain_windows=3
        )
        static_score, = score_run(
            static, slo_ms=100.0, entity="control", sustain_windows=3
        )
        # The static baseline keeps the stolen 0.1-core cap to the
        # horizon; the threshold controller re-actuates within a tick.
        assert static.control_reports["control"]["final"][
            "web-vm"
        ]["cap_cores"] == pytest.approx(0.1)
        assert healed.control_reports["control"]["final"][
            "web-vm"
        ]["cap_cores"] > 0.1
        assert static_score.slo_violation_s > 3 * healed_score.slo_violation_s


class TestScenarioWiring:
    def test_faults_require_virtualized(self):
        from dataclasses import replace

        base = scenario("bare-metal", "browsing", duration_s=30.0)
        with pytest.raises(ConfigurationError):
            replace(
                base,
                faults=FaultSchedule((FaultSpec(kind="crash", at_s=10.0),)),
            )

    def test_flash_crowd_requires_open_loop(self):
        from dataclasses import replace

        base = consolidated_scenario("browsing", duration_s=30.0)
        with pytest.raises(ConfigurationError):
            replace(
                base,
                faults=FaultSchedule(
                    (FaultSpec(kind="flash_crowd", at_s=10.0),)
                ),
            )

    def test_faults_change_the_cache_key(self):
        base = consolidated_scenario("browsing", duration_s=30.0)
        from dataclasses import replace

        faulted = replace(
            base,
            faults=FaultSchedule((FaultSpec(kind="crash", at_s=10.0),)),
        )
        assert base.cache_key != faulted.cache_key
        assert faulted.faulted and not base.faulted

    def test_catalogue_carries_the_recovery_scenarios(self):
        catalog = scenario_catalog(duration_s=60.0)
        for name in (
            "detect_and_evacuate",
            "detect_and_evacuate_watch",
            "noisy_neighbor_theft",
            "noisy_neighbor_theft_static",
        ):
            assert name in catalog
            assert catalog[name].faulted
