"""Tests for the testbed builder (single- and multi-tenant assembly)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    Scenario,
    consolidated_scenario,
    consolidated_web_batch_scenario,
    scenario,
    scenario_catalog,
)
from repro.experiments.testbed import build_testbed
from repro.monitoring.export import trace_set_sha256
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.workloads import TenantSpec


def _build(spec):
    sim = Simulator()
    streams = RandomStreams(seed=spec.seed)
    return sim, build_testbed(sim, streams, spec)


class TestSingleTenant:
    def test_probe_order_matches_legacy_runner(self):
        _, testbed = _build(
            scenario("virtualized", "browsing", duration_s=30.0)
        )
        assert [p.entity for p in testbed.probes()] == ["web", "db", "dom0"]
        assert testbed.tenants == []
        assert testbed.tenant_reports() is None

    def test_bare_metal_has_no_hypervisor(self):
        _, testbed = _build(
            scenario("bare-metal", "browsing", duration_s=30.0)
        )
        assert testbed.hypervisor is None
        assert [p.entity for p in testbed.probes()] == ["web", "db"]
        assert testbed.interference_report() is None

    def test_refactor_preserves_traces_exactly(self):
        """The workload/testbed layering must not change a single draw."""
        spec = scenario("virtualized", "browsing", duration_s=40.0, seed=21)
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert trace_set_sha256(a.traces) == trace_set_sha256(b.traces)
        assert a.requests_completed == b.requests_completed


class TestMultiTenant:
    def test_tenants_share_one_hypervisor(self):
        spec = consolidated_web_batch_scenario(duration_s=30.0)
        _, testbed = _build(spec)
        domains = {d.name for d in testbed.hypervisor.domains()}
        assert {"Domain-0", "web-vm", "db-vm", "batch-vm"} <= domains
        assert testbed.deployment.hypervisor is testbed.hypervisor
        assert [p.entity for p in testbed.probes()] == [
            "web", "db", "dom0", "batch",
        ]

    def test_bare_metal_tenants_rejected(self):
        base = scenario("bare-metal", "browsing", duration_s=30.0)
        with pytest.raises(ConfigurationError):
            Scenario(
                name="bad",
                environment=base.environment,
                mix=base.mix,
                duration_s=base.duration_s,
                tenants=(TenantSpec(),),
            )

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigurationError):
            consolidated_scenario(
                "browsing",
                duration_s=30.0,
                tenants=(TenantSpec(), TenantSpec()),
            )

    def test_two_tenants_two_domains(self):
        spec = consolidated_scenario(
            "browsing",
            duration_s=30.0,
            tenants=(
                TenantSpec(name="sorter"),
                TenantSpec(name="grepper", job="grep"),
            ),
        )
        _, testbed = _build(spec)
        names = {d.name for d in testbed.hypervisor.domains()}
        assert {"sorter-vm", "grepper-vm"} <= names
        entities = [p.entity for p in testbed.probes()]
        assert entities[-2:] == ["sorter", "grepper"]

    def test_consolidated_result_has_tenant_series(self):
        result = run_scenario(
            consolidated_web_batch_scenario(duration_s=30.0, clients=100)
        )
        assert "batch" in result.traces.entities()
        series = result.traces.get("batch", "cpu_cycles")
        assert series.values.sum() > 0
        assert result.tenant_reports is not None
        assert result.interference is not None
        assert np.isfinite(result.p95_response_time_s)


class TestScenarioCatalog:
    def test_catalog_contains_paper_and_consolidated_runs(self):
        catalog = scenario_catalog(duration_s=30.0)
        assert "virtualized/browsing" in catalog
        assert "consolidated_web_batch" in catalog
        assert catalog["consolidated_web_batch"].consolidated
        assert len(catalog) >= 10

    def test_consolidated_entries_are_virtualized(self):
        catalog = scenario_catalog(duration_s=30.0)
        for spec in catalog.values():
            if spec.consolidated:
                assert spec.environment == "virtualized"
