"""Suite-level aggregate ratio tables (PR-3 follow-up)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.suite import (
    RunSummary,
    SuiteResult,
    render_suite_ratio_table,
    suite_ratio_data,
)


def _summary(run_id, throughput, mean_s, p95_s, shed=None, actions=0):
    traffic = None
    if shed is not None:
        traffic = {"shed_fraction": shed}
    control = None
    if actions:
        control = {"control": {"num_actions": actions}}
    return RunSummary(
        run_id=run_id,
        scenario_name=run_id,
        seed=1,
        duration_s=60.0,
        wall_clock_s=1.0,
        requests_completed=int(throughput * 60),
        throughput_rps=throughput,
        mean_response_time_s=mean_s,
        p95_response_time_s=p95_s,
        trace_sha256="0" * 64,
        traffic_report=traffic,
        control_reports=control,
    )


@pytest.fixture
def suite():
    return SuiteResult(
        summaries={
            "base": _summary("base", 100.0, 0.020, 0.050, shed=0.5),
            "scaled": _summary(
                "scaled", 150.0, 0.010, 0.025, shed=0.25, actions=12
            ),
            "closed": _summary("closed", 50.0, 0.040, 0.100),
        },
        workers=1,
        wall_clock_s=3.0,
    )


class TestRatioData:
    def test_ratios_against_default_baseline(self, suite):
        data = suite_ratio_data(suite)
        assert data["base"]["throughput_rps_ratio"] == pytest.approx(1.0)
        assert data["scaled"]["throughput_rps_ratio"] == pytest.approx(1.5)
        assert data["scaled"]["p95_ms_ratio"] == pytest.approx(0.5)
        assert data["scaled"]["shed_fraction_ratio"] == pytest.approx(0.5)
        assert data["scaled"]["control_actions"] == 12.0

    def test_explicit_baseline(self, suite):
        data = suite_ratio_data(suite, baseline_run_id="scaled")
        assert data["base"]["throughput_rps_ratio"] == pytest.approx(
            100.0 / 150.0
        )

    def test_missing_shed_reads_as_zero(self, suite):
        assert suite_ratio_data(suite)["closed"]["shed_fraction"] == 0.0

    def test_unknown_baseline_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            suite_ratio_data(suite, baseline_run_id="nope")

    def test_empty_suite_rejected(self):
        empty = SuiteResult(summaries={}, workers=1, wall_clock_s=0.0)
        with pytest.raises(ConfigurationError):
            suite_ratio_data(empty)


class TestControllerAxisSeeds:
    def test_policy_cells_share_the_seed(self):
        from repro.experiments.suite import suite_grid

        runs = suite_grid(
            traffics=("poisson",),
            controllers=("static", "threshold", "pid"),
            duration_s=40.0,
            seed=7,
        )
        assert len(runs) == 3
        assert len({run.run_id for run in runs}) == 3
        # Same seed => same offered arrival stream: the ratio table
        # compares policies, not seed noise.
        assert len({run.config.seed for run in runs}) == 1

    def test_non_controller_axes_still_differentiate_seeds(self):
        from repro.experiments.suite import suite_grid

        runs = suite_grid(
            compositions=("browsing", "bidding"),
            controllers=("threshold",),
            duration_s=40.0,
            seed=7,
        )
        assert len({run.config.seed for run in runs}) == 2


class TestRendering:
    def test_table_renders_every_run_and_marks_baseline(self, suite):
        text = render_suite_ratio_table(suite)
        lines = text.splitlines()
        assert len(lines) == 1 + 3 + 1  # header + runs + baseline note
        assert "base*" in text
        assert "scaled" in text
        assert "baseline (*): base" in text
        assert "1.50x" in text  # scaled throughput ratio

    def test_zero_baseline_metric_renders_dash(self):
        suite = SuiteResult(
            summaries={
                "a": _summary("a", 100.0, 0.02, 0.05),  # shed 0
                "b": _summary("b", 100.0, 0.02, 0.05, shed=0.5),
            },
            workers=1,
            wall_clock_s=1.0,
        )
        text = render_suite_ratio_table(suite)
        assert "-" in text
