"""Unit tests for figure data extraction and paper comparison helpers."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.compare import QualitativeChecks, qualitative_checks
from repro.experiments.figures import figure, figure_series_rows
from repro.experiments.paper_values import (
    PAPER_R1,
    PAPER_R2,
    PAPER_R3,
    PAPER_R4,
    BARE_METAL_TARGETS,
    DOM0_TARGETS,
    VIRTUALIZED_TARGETS,
)


class TestPaperValues:
    def test_r_vectors_match_paper_prose(self):
        assert PAPER_R1.cpu_cycles == 6.11
        assert PAPER_R1.net_kb == 55.56
        assert PAPER_R2.cpu_cycles == 16.84
        assert PAPER_R3.disk_kb == 0.60
        assert PAPER_R4.cpu_cycles == 1.88  # "88% more CPU cycles"
        assert PAPER_R4.disk_kb == 0.75  # "disk read/write is 25% less"

    def test_documented_inconsistency_is_real(self):
        # The reason R3 cannot be calibrated simultaneously with R2/R4.
        consistent_r3_cpu = PAPER_R2.cpu_cycles / PAPER_R4.cpu_cycles
        assert abs(consistent_r3_cpu - PAPER_R3.cpu_cycles) > 3.0
        # ...while disk and net ARE consistent within ~10%.
        assert PAPER_R2.disk_kb / PAPER_R4.disk_kb == pytest.approx(
            PAPER_R3.disk_kb, rel=0.1
        )
        assert PAPER_R2.net_kb / PAPER_R4.net_kb == pytest.approx(
            PAPER_R3.net_kb, rel=0.1
        )

    def test_targets_positive(self):
        for targets in (VIRTUALIZED_TARGETS, BARE_METAL_TARGETS):
            for tier in targets.values():
                assert tier.cpu_cycles > 0
                assert tier.mem_used_mb > 0
                assert tier.disk_kb > 0
                assert tier.net_kb > 0
        assert DOM0_TARGETS.cpu_cycles > 0


class TestFigureRows:
    def test_rows_cover_all_panels_and_samples(
        self, virt_browse_result, virt_bid_result
    ):
        data = figure(
            1, {"browse": virt_browse_result, "bid": virt_bid_result}
        )
        rows = figure_series_rows(data)
        samples = len(virt_browse_result.traces.get("web", "cpu_cycles"))
        assert len(rows) == 3 * 2 * samples  # panels x workloads x samples
        assert {row["workload"] for row in rows} == {"browse", "bid"}
        assert all(row["figure"] == 1 for row in rows)

    def test_unknown_figure_rejected(self, virt_browse_result):
        with pytest.raises(AnalysisError):
            figure(9, {"browse": virt_browse_result})


class TestQualitativeChecks:
    def test_wrong_environment_rejected(
        self, virt_browse_result, virt_bid_result, bare_browse_result
    ):
        with pytest.raises(AnalysisError):
            qualitative_checks(
                virt_browse_result,
                virt_bid_result,
                virt_browse_result,  # should be bare-metal
                bare_browse_result,
            )

    def test_all_pass_logic(self):
        checks = QualitativeChecks(
            q1_db_lags_web=True,
            q2_virt_browse_jumps=True,
            q2_virt_bid_smooth=True,
            q3_bare_bid_jumps_earlier=True,
            q4_disk_variance_higher_bare=True,
            q5_bid_more_dom0_cpu=False,
        )
        assert not checks.all_pass()
        assert len(checks.as_dict()) == 6
