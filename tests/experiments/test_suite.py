"""Tests for the suite orchestrator: grids, seeds, multiprocess runs."""

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.suite import (
    RunSummary,
    SuiteRun,
    derive_run_seed,
    execute_run,
    paper_matrix_suite,
    run_suite,
    suite_grid,
)
from repro.workloads import TenantSpec


class TestGrid:
    def test_paper_matrix_is_four_runs(self):
        runs = paper_matrix_suite(duration_s=30.0)
        assert [r.run_id for r in runs] == [
            "virtualized/browsing",
            "virtualized/bidding",
            "bare-metal/browsing",
            "bare-metal/bidding",
        ]

    def test_axes_multiply(self):
        runs = suite_grid(
            environments=("virtualized",),
            compositions=("browsing", "bidding"),
            scales=(1.0, 2.0),
            duration_s=30.0,
        )
        assert len(runs) == 4
        assert any("x2" in r.run_id for r in runs)

    def test_bare_metal_tenant_cells_are_skipped(self):
        runs = suite_grid(
            environments=("virtualized", "bare-metal"),
            tenant_mixes=((), (TenantSpec(),)),
            duration_s=30.0,
        )
        ids = [r.run_id for r in runs]
        assert "virtualized/browsing/batch" in ids
        assert not any("bare-metal" in i and "batch" in i for i in ids)

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            suite_grid(
                environments=("bare-metal",),
                tenant_mixes=((TenantSpec(),),),
                duration_s=30.0,
            )

    def test_run_ids_are_unique(self):
        runs = paper_matrix_suite(duration_s=30.0)
        assert len({r.run_id for r in runs}) == len(runs)

    def test_placements_axis_grids_multi_server_cells(self):
        runs = suite_grid(
            servers=(1, 2),
            placements=("firstfit", "balance"),
            duration_s=30.0,
        )
        ids = [r.run_id for r in runs]
        # One single-server cell (placement places nothing there), one
        # multi-server cell per policy.
        assert ids == [
            "virtualized/browsing",
            "virtualized/browsing/s2/pl-firstfit",
            "virtualized/browsing/s2/pl-balance",
        ]
        by_id = {r.run_id: r.config for r in runs}
        assert by_id["virtualized/browsing"].placement is None
        assert (
            by_id["virtualized/browsing/s2/pl-balance"].placement
            == "balance"
        )
        # The pl- token is infrastructure: it must not shift the seed.
        assert (
            by_id["virtualized/browsing/s2/pl-firstfit"].seed
            == by_id["virtualized/browsing/s2/pl-balance"].seed
        )

    def test_placements_axis_excludes_the_scalar(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            suite_grid(
                servers=(2,),
                placement="firstfit",
                placements=("balance",),
                duration_s=30.0,
            )
        with pytest.raises(ConfigurationError, match="empty"):
            suite_grid(servers=(2,), placements=(), duration_s=30.0)


class TestSeeds:
    def test_derivation_is_stable_and_distinct(self):
        a = derive_run_seed(42, "virtualized/browsing")
        assert a == derive_run_seed(42, "virtualized/browsing")
        assert a != derive_run_seed(42, "virtualized/bidding")
        assert a != derive_run_seed(43, "virtualized/browsing")
        assert 0 <= a < 2 ** 63

    def test_grid_seeds_depend_only_on_run_id(self):
        first = suite_grid(
            compositions=("browsing", "bidding"), duration_s=30.0
        )
        second = suite_grid(
            compositions=("bidding", "browsing"), duration_s=30.0
        )
        by_id_first = {r.run_id: r.config.seed for r in first}
        by_id_second = {r.run_id: r.config.seed for r in second}
        assert by_id_first == by_id_second


class TestExecution:
    def test_summary_is_plain_data(self):
        [run] = suite_grid(duration_s=24.0, clients=80)
        summary = execute_run(run)
        clone = RunSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert summary.requests_completed > 0
        assert len(summary.trace_sha256) == 64

    def test_workers_do_not_change_results(self):
        """The acceptance invariant: 1-worker and 4-worker sweeps of the
        same grid produce identical per-run trace fingerprints."""
        runs = suite_grid(
            environments=("virtualized", "bare-metal"),
            compositions=("browsing", "bidding"),
            duration_s=24.0,
            clients=80,
            seed=9,
        )
        serial = run_suite(runs, workers=1)
        parallel = run_suite(runs, workers=4)
        assert serial.merged_sha256() == parallel.merged_sha256()
        for run_id, summary in serial.summaries.items():
            assert (
                summary.trace_sha256
                == parallel.summaries[run_id].trace_sha256
            ), f"run {run_id} diverged across worker counts"

    def test_duplicate_run_ids_rejected(self):
        [run] = suite_grid(duration_s=24.0, clients=80)
        with pytest.raises(ConfigurationError):
            run_suite([run, run])

    def test_empty_suite_rejected(self):
        with pytest.raises(ConfigurationError):
            run_suite([])

    def test_render_mentions_every_run(self):
        runs = suite_grid(
            compositions=("browsing",), duration_s=24.0, clients=80
        )
        result = run_suite(runs, workers=1)
        text = result.render()
        assert "virtualized/browsing" in text
        assert "merged sha256" in text


class TestConfigTenants:
    def test_config_round_trips_tenants_through_json(self):
        config = ExperimentConfig(
            duration_s=30.0,
            tenants=(TenantSpec(input_mb=64.0),),
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        assert clone.tenants[0].input_mb == 64.0

    def test_config_tenants_reach_the_scenario(self):
        config = ExperimentConfig(
            duration_s=30.0, tenants=(TenantSpec(),)
        )
        spec = config.to_scenario()
        assert spec.consolidated
        assert spec.name.endswith("+batch")

    def test_bare_metal_tenants_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                environment="bare-metal", tenants=(TenantSpec(),)
            )

    def test_suite_run_survives_payload_round_trip(self):
        [run] = suite_grid(
            tenant_mixes=((TenantSpec(),),), duration_s=30.0
        )
        clone = SuiteRun(
            run_id=run.run_id,
            config=ExperimentConfig.from_dict(run.config.to_dict()),
        )
        assert clone == run
