"""Qualitative interference checks for the consolidation scenarios.

The acceptance bar of the multi-tenant testbed: running a batch tenant
next to the web VMs on one hypervisor must make co-location *visible*
— web p95 latency and the web domain's CPU ready (steal) time strictly
above the web-only baseline — while the single-tenant run itself stays
untouched by the machinery (zero ready time, no tenant entities).
"""

import pytest

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import consolidated_scenario, scenario
from repro.experiments.suite import execute_run, interference_checks, suite_grid
from repro.workloads import TenantSpec

DURATION_S = 90.0
CLIENTS = 400
SEED = 13

#: An aggressive batch tenant so short CI runs still overlap several
#: map/shuffle bursts with the web traffic.
TENANT = TenantSpec(arrival_rate_per_s=0.15, input_mb=384.0)


@pytest.fixture(scope="module")
def web_only_result():
    return run_scenario(
        scenario(
            "virtualized",
            "browsing",
            duration_s=DURATION_S,
            seed=SEED,
            clients=CLIENTS,
        )
    )


@pytest.fixture(scope="module")
def consolidated_result():
    return run_scenario(
        consolidated_scenario(
            "browsing",
            duration_s=DURATION_S,
            seed=SEED,
            clients=CLIENTS,
            tenants=(TENANT,),
        )
    )


class TestInterference:
    def test_web_p95_strictly_degrades(
        self, web_only_result, consolidated_result
    ):
        assert (
            consolidated_result.p95_response_time_s
            > web_only_result.p95_response_time_s
        )

    def test_web_cpu_ready_time_strictly_rises(
        self, web_only_result, consolidated_result
    ):
        assert web_only_result.cpu_ready_seconds("web-vm") == 0.0
        assert consolidated_result.cpu_ready_seconds("web-vm") > 0.0

    def test_batch_tenant_makes_progress(self, consolidated_result):
        reports = consolidated_result.tenant_reports
        assert reports["batch"]["jobs_submitted"] > 0
        assert reports["batch"]["tasks_completed"] > 0

    def test_dom0_sees_the_batch_io(
        self, web_only_result, consolidated_result
    ):
        # Batch reads/writes flow through the dom0 split drivers, so
        # dom0's disk counters must rise under consolidation.
        baseline = web_only_result.traces.get("dom0", "disk_kb").total()
        consolidated = consolidated_result.traces.get(
            "dom0", "disk_kb"
        ).total()
        assert consolidated > baseline

    def test_interference_checks_all_pass(
        self, web_only_result, consolidated_result
    ):
        [baseline_run] = suite_grid(
            compositions=("browsing",),
            duration_s=DURATION_S,
            seed=SEED,
            clients=CLIENTS,
        )
        [consolidated_run] = suite_grid(
            compositions=("browsing",),
            tenant_mixes=((TENANT,),),
            duration_s=DURATION_S,
            seed=SEED,
            clients=CLIENTS,
        )
        checks = interference_checks(
            execute_run(baseline_run), execute_run(consolidated_run)
        )
        assert all(checks.values()), checks
