"""Unit tests for scenarios, the runner, figures and tables."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figures import FIGURE_DEFS, figure, render_figure
from repro.experiments.runner import run_scenario_cached
from repro.experiments.scenarios import (
    BARE_METAL,
    VIRTUALIZED,
    default_duration_s,
    paper_scenarios,
    scenario,
)
from repro.experiments.tables import render_table1, table1_rows
from repro.rubis.workload import SessionType


class TestScenarios:
    def test_paper_matrix_shape(self):
        scenarios = paper_scenarios(duration_s=60.0)
        assert len(scenarios) == 7  # 5 virtualized + 2 bare-metal
        assert "virtualized/blend_50_50" in scenarios
        assert "bare-metal/bidding" in scenarios

    def test_unknown_composition_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario(VIRTUALIZED, "doomscrolling")

    def test_unknown_environment_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario("container", "browsing")

    def test_virt_bid_has_no_bursts(self):
        s = scenario(VIRTUALIZED, "bidding", duration_s=100.0)
        assert s.mix.burst_schedule(SessionType.BID).count == 0

    def test_bare_bid_bursts_early(self):
        s = scenario(BARE_METAL, "bidding", duration_s=1000.0)
        schedule = s.mix.burst_schedule(SessionType.BID)
        assert schedule.count > 0
        assert schedule.window_s[1] <= 0.5 * 1000.0

    def test_virt_browse_bursts_late(self):
        s = scenario(VIRTUALIZED, "browsing", duration_s=1000.0)
        schedule = s.mix.burst_schedule(SessionType.BROWSE)
        assert schedule.window_s[0] >= 0.3 * 1000.0

    def test_client_override(self):
        s = scenario(VIRTUALIZED, "browsing", duration_s=60.0, clients=50)
        assert s.mix.clients == 50

    def test_default_duration_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_DURATION", raising=False)
        assert default_duration_s() == 240.0
        monkeypatch.setenv("REPRO_FULL_DURATION", "1")
        assert default_duration_s() == 1200.0

    def test_cache_key_distinguishes_scenarios(self):
        a = scenario(VIRTUALIZED, "browsing", duration_s=60.0)
        b = scenario(VIRTUALIZED, "bidding", duration_s=60.0)
        assert a.cache_key != b.cache_key

    def test_cache_key_includes_scale(self):
        """Regression: scenarios differing only in scale must not
        collide in the memoizing runner cache."""
        from dataclasses import replace

        base = scenario(VIRTUALIZED, "browsing", duration_s=60.0)
        rescaled = replace(base, scale=2.0)
        assert base.cache_key != rescaled.cache_key
        a = scenario(VIRTUALIZED, "browsing", duration_s=60.0, scale=2.0)
        b = scenario(VIRTUALIZED, "browsing", duration_s=60.0, scale=1.0)
        assert a.scale == 2.0 and b.scale == 1.0
        assert a.cache_key != b.cache_key

    def test_cache_key_includes_traffic_and_tenants(self):
        from dataclasses import replace

        from repro.experiments.scenarios import open_loop_scenario
        from repro.workloads import TenantSpec

        closed = scenario(VIRTUALIZED, "browsing", duration_s=60.0)
        open_loop = open_loop_scenario(
            VIRTUALIZED, "browsing", duration_s=60.0, rate_rps=100.0
        )
        consolidated = replace(closed, tenants=(TenantSpec(),))
        keys = {closed.cache_key, open_loop.cache_key,
                consolidated.cache_key}
        assert len(keys) == 3

    def test_cache_key_includes_burst_schedules(self):
        base = scenario(VIRTUALIZED, "browsing", duration_s=60.0)
        flattened = base.mix.with_bursts({})
        from dataclasses import replace

        assert base.cache_key != replace(base, mix=flattened).cache_key

    def test_cached_runner_separates_scales(self):
        """Two cached runs that differ only in scale return distinct
        results (the scale-collision regression, end to end)."""
        a = run_scenario_cached(
            scenario(VIRTUALIZED, "browsing", duration_s=20.0,
                     clients=40, scale=1.0)
        )
        b = run_scenario_cached(
            scenario(VIRTUALIZED, "browsing", duration_s=10.0,
                     clients=20, scale=2.0)
        )
        assert a is not b


class TestRunner:
    def test_result_shape(self, virt_browse_result):
        result = virt_browse_result
        assert result.traces.environment == "virtualized"
        assert result.requests_completed > 1000
        assert result.mean_response_time_s > 0
        assert result.throughput_rps > 50

    def test_cached_runner_returns_same_object(self):
        s = scenario(VIRTUALIZED, "browsing", duration_s=240.0)
        assert run_scenario_cached(s) is run_scenario_cached(s)

    def test_bare_metal_has_no_dom0_entity(self, bare_browse_result):
        assert bare_browse_result.traces.entities() == ["db", "web"]

    def test_virtualized_has_dom0_entity(self, virt_browse_result):
        assert virt_browse_result.traces.entities() == ["db", "dom0", "web"]

    def test_sample_grid_is_2s(self, virt_browse_result):
        series = virt_browse_result.traces.get("web", "cpu_cycles")
        times = series.times
        assert (times[1:] - times[:-1] == 2.0).all()


class TestFigures:
    def test_figure_defs_cover_1_to_8(self):
        assert sorted(FIGURE_DEFS) == list(range(1, 9))

    def test_virtualized_figure_has_three_panels(
        self, virt_browse_result, virt_bid_result
    ):
        data = figure(
            1, {"browse": virt_browse_result, "bid": virt_bid_result}
        )
        assert [p.entity for p in data.panels] == ["web", "db", "dom0"]
        assert data.resource == "cpu_cycles"

    def test_bare_figure_has_two_panels(
        self, bare_browse_result, bare_bid_result
    ):
        data = figure(
            5, {"browse": bare_browse_result, "bid": bare_bid_result}
        )
        assert [p.entity for p in data.panels] == ["web", "db"]

    def test_environment_mismatch_rejected(self, virt_browse_result):
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            figure(5, {"browse": virt_browse_result})

    def test_render_contains_workloads_and_sparklines(
        self, virt_browse_result, virt_bid_result
    ):
        data = figure(
            2, {"browse": virt_browse_result, "bid": virt_bid_result}
        )
        text = render_figure(data)
        assert "Figure 2" in text
        assert "browse" in text and "bid" in text
        assert "|" in text


class TestTable1:
    def test_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 25
        for name, source, unit, description in rows:
            assert name and source and description

    def test_render_mentions_518(self):
        text = render_table1()
        assert "518" in text
        assert "Table 1" in text
