"""Tests for suite-level figures over merged sweep results."""

import os

from repro.experiments.figures import (
    SUITE_FIGURE_METRICS,
    render_suite_figures,
)
from repro.experiments.suite import run_suite, suite_grid


def small_suite():
    runs = suite_grid(
        compositions=("browsing", "bidding"),
        duration_s=20.0,
        clients=80,
    )
    return run_suite(runs, workers=1)


class TestRenderSuiteFigures:
    def test_one_figure_per_metric(self, tmp_path):
        suite = small_suite()
        paths = render_suite_figures(suite, str(tmp_path))
        assert len(paths) == len(SUITE_FIGURE_METRICS)
        for path in paths:
            assert os.path.exists(path)
            assert os.path.getsize(path) > 0
        # One file per ratio-table metric, named after it.
        names = {os.path.basename(p) for p in paths}
        for metric, _ in SUITE_FIGURE_METRICS:
            assert any(metric in name for name in names)

    def test_creates_output_directory(self, tmp_path):
        suite = small_suite()
        out = tmp_path / "nested" / "figs"
        paths = render_suite_figures(suite, str(out))
        assert out.is_dir()
        assert paths

    def test_text_fallback_contains_every_run(self, tmp_path):
        # With matplotlib absent the panels are aligned text; with it
        # installed they are PNGs — either way every run id must be
        # represented in the output set.
        suite = small_suite()
        paths = render_suite_figures(suite, str(tmp_path))
        text_paths = [p for p in paths if p.endswith(".txt")]
        for path in text_paths:
            with open(path) as handle:
                content = handle.read()
            for run_id in suite.summaries:
                assert run_id[:44] in content
