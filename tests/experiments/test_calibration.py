"""Unit tests for the calibration math."""

import numpy as np
import pytest

from repro.experiments.calibration import (
    REQUESTS_PER_SAMPLE,
    THROUGHPUT_RPS,
    calibrate_bare_metal,
    calibrate_virtualized,
    _expected_with,
)
from repro.experiments.paper_values import (
    BARE_METAL_TARGETS,
    DOM0_TARGETS,
    PAPER_R1,
    PAPER_R2,
    PAPER_R4,
    VIRTUALIZED_TARGETS,
)
from repro.rubis.transitions import browsing_matrix
from repro.units import KB, MB, SAMPLE_PERIOD_S


@pytest.fixture(scope="module")
def virt():
    return calibrate_virtualized()


@pytest.fixture(scope="module")
def bare():
    return calibrate_bare_metal()


class TestThroughputModel:
    def test_closed_loop_throughput(self):
        assert THROUGHPUT_RPS == pytest.approx(1000 / 7.0)
        assert REQUESTS_PER_SAMPLE == pytest.approx(2000 / 7.0)


class TestTargetDerivation:
    def test_r1_holds_by_construction(self):
        web, db = VIRTUALIZED_TARGETS["web"], VIRTUALIZED_TARGETS["db"]
        assert web.cpu_cycles / db.cpu_cycles == pytest.approx(
            PAPER_R1.cpu_cycles
        )
        assert web.net_kb / db.net_kb == pytest.approx(PAPER_R1.net_kb)

    def test_r2_holds_by_construction(self):
        web, db = VIRTUALIZED_TARGETS["web"], VIRTUALIZED_TARGETS["db"]
        assert (
            (web.cpu_cycles + db.cpu_cycles) / DOM0_TARGETS.cpu_cycles
        ) == pytest.approx(PAPER_R2.cpu_cycles)

    def test_r4_holds_by_construction(self):
        web, db = BARE_METAL_TARGETS["web"], BARE_METAL_TARGETS["db"]
        assert (
            (web.cpu_cycles + db.cpu_cycles) / DOM0_TARGETS.cpu_cycles
        ) == pytest.approx(PAPER_R4.cpu_cycles)
        assert (
            (web.disk_kb + db.disk_kb) / DOM0_TARGETS.disk_kb
        ) == pytest.approx(PAPER_R4.disk_kb)


class TestScalingInversion:
    def test_virt_expected_cpu_matches_target(self, virt):
        config = virt.deployment_config
        expected = _expected_with(
            config.scaling,
            browsing_matrix(),
            config.database,
            config.buffer_pool_bytes,
        )
        per_sample = expected.web_cycles * REQUESTS_PER_SAMPLE
        assert per_sample == pytest.approx(
            VIRTUALIZED_TARGETS["web"].cpu_cycles, rel=1e-6
        )

    def test_virt_expected_net_matches_target(self, virt):
        config = virt.deployment_config
        expected = _expected_with(
            config.scaling,
            browsing_matrix(),
            config.database,
            config.buffer_pool_bytes,
        )
        web_net = (
            expected.request_bytes
            + expected.response_bytes
            + expected.query_bytes
            + expected.result_bytes
        ) * REQUESTS_PER_SAMPLE / KB
        assert web_net == pytest.approx(
            VIRTUALIZED_TARGETS["web"].net_kb, rel=1e-6
        )

    def test_bare_cycles_inflation_is_large(self, virt, bare):
        # The virtualized/bare cycle-per-unit ratio IS the cycle
        # accounting inflation; per DESIGN.md it lands near 9x.
        inflation = (
            virt.deployment_config.scaling.web_cycles_per_unit
            / bare.deployment_config.scaling.web_cycles_per_unit
        )
        assert 5.0 < inflation < 15.0

    def test_all_scaling_fields_non_negative(self, virt, bare):
        for env in (virt, bare):
            scaling = env.deployment_config.scaling
            assert scaling.web_cycles_per_unit > 0
            assert scaling.db_cycles_per_unit > 0
            assert scaling.response_scale > 0
            assert scaling.spill_bytes_per_row >= 0


class TestOverheadDerivation:
    def test_dom0_memory_base_solves_r2(self, virt):
        overhead = virt.overhead
        guest_ram = (
            VIRTUALIZED_TARGETS["web"].mem_used_mb
            + VIRTUALIZED_TARGETS["db"].mem_used_mb
        )
        dom0_ram = (
            overhead.dom0_base_memory_bytes / MB
            + overhead.dom0_memory_per_vm_byte * guest_ram
        )
        assert dom0_ram == pytest.approx(DOM0_TARGETS.mem_used_mb, rel=1e-6)

    def test_net_amplification_matches_r2(self, virt):
        assert virt.overhead.net_amplification == pytest.approx(
            1.0 / PAPER_R2.net_kb, rel=1e-6
        )

    def test_net_cycles_per_byte_plausible(self, virt):
        # A few cycles per proxied byte; sanity band around Xen lore.
        assert 1.0 < virt.overhead.net_cycles_per_byte < 20.0

    def test_bare_models_have_accounting_factors(self, bare):
        assert bare.web_os_model.disk_accounting_factor > 1.0
        assert bare.web_os_model.net_accounting_factor > 1.0


class TestMemoryProfiles:
    def test_virt_web_memory_targets_run_mean(self, virt):
        profile = virt.deployment_config.web_memory
        # base + full ramp + sessions should bracket the target mean.
        ceiling = (
            profile.base_mb
            + profile.cache_growth_mb
            + 1000 * profile.per_session_kb / 1024
            + profile.max_jumps * profile.jump_mb
        )
        assert profile.base_mb < VIRTUALIZED_TARGETS["web"].mem_used_mb
        assert ceiling > VIRTUALIZED_TARGETS["web"].mem_used_mb

    def test_db_profiles_have_no_jumps(self, virt, bare):
        assert virt.deployment_config.db_memory.max_jumps == 0
        assert bare.deployment_config.db_memory.max_jumps == 0
