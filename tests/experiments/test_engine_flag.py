"""The ``engine`` selector: config plumbing, grids and the CLI surface."""

import json

import pytest

from repro.config import ExperimentConfig
from repro.errors import ConfigurationError
from repro.experiments.scenarios import ENGINES, scenario
from repro.experiments.suite import paper_matrix_suite, suite_grid


class TestExperimentConfigEngine:
    def test_default_is_classic(self):
        config = ExperimentConfig()
        assert config.engine == "classic"
        assert config.to_scenario().engine == "classic"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            ExperimentConfig(engine="warp")

    def test_batched_engine_threads_to_scenario(self):
        config = ExperimentConfig(engine="batched")
        spec = config.to_scenario()
        assert spec.engine == "batched"
        assert spec.batched
        assert spec.name.endswith("%batched")

    def test_classic_scenario_name_unchanged(self):
        classic = ExperimentConfig().to_scenario()
        assert "%" not in classic.name

    def test_round_trips_through_json(self):
        config = ExperimentConfig(engine="batched", seed=9)
        restored = ExperimentConfig.from_json(config.to_json())
        assert restored == config
        assert json.loads(config.to_json())["engine"] == "batched"

    def test_from_dict_accepts_engine_key(self):
        config = ExperimentConfig.from_dict({"engine": "batched"})
        assert config.engine == "batched"


class TestScenarioEngine:
    def test_engines_constant(self):
        assert ENGINES == ("classic", "batched")

    def test_scenario_validates_engine(self):
        from dataclasses import replace

        base = scenario("virtualized", "browsing", duration_s=30)
        with pytest.raises(ConfigurationError):
            replace(base, engine="warp")

    def test_engine_changes_cache_key(self):
        from dataclasses import replace

        base = scenario("virtualized", "browsing", duration_s=30)
        batched = replace(base, name=f"{base.name}%batched", engine="batched")
        assert base.cache_key != batched.cache_key


class TestSuiteEnginesAxis:
    def test_engines_axis_doubles_the_grid(self):
        runs = suite_grid(engines=("classic", "batched"))
        assert len(runs) == 2
        by_engine = {run.config.engine: run for run in runs}
        assert set(by_engine) == {"classic", "batched"}
        assert by_engine["batched"].run_id.endswith("/eng-batched")
        assert "eng-" not in by_engine["classic"].run_id

    def test_engine_cells_share_seed(self):
        # The engine changes how the lifecycle executes, not the
        # offered workload: matched seeds or the batched/classic
        # ratios compare across seed noise.
        runs = suite_grid(engines=("classic", "batched"))
        seeds = {run.config.seed for run in runs}
        assert len(seeds) == 1

    def test_paper_matrix_with_engines(self):
        runs = paper_matrix_suite(engines=("classic", "batched"))
        assert len(runs) == 8  # 2 envs x 2 mixes x 2 engines
        batched = [r for r in runs if r.config.engine == "batched"]
        assert len(batched) == 4


class TestCliEngineFlags:
    def test_run_parser_accepts_engine(self):
        from repro.cli import _build_parser as build_parser

        args = build_parser().parse_args(
            ["run", "--scenario", "virtualized/browsing",
             "--engine", "batched"]
        )
        assert args.engine == "batched"

    def test_run_parser_rejects_unknown_engine(self):
        from repro.cli import _build_parser as build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--scenario", "virtualized/browsing",
                 "--engine", "warp"]
            )

    def test_run_parser_accepts_profile(self, tmp_path):
        from repro.cli import _build_parser as build_parser

        args = build_parser().parse_args(
            ["run", "--scenario", "virtualized/browsing",
             "--profile", str(tmp_path / "run.pstats")]
        )
        assert args.profile.endswith("run.pstats")

    def test_sweep_parser_accepts_engines_axis(self):
        from repro.cli import _build_parser as build_parser

        args = build_parser().parse_args(
            ["sweep", "--engines", "classic,batched"]
        )
        assert args.engines == "classic,batched"
