"""Unit tests for NIC and fabric models."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.network import NetworkFabric, NetworkInterface


class TestNetworkInterface:
    def test_transfer_time_from_bandwidth(self):
        nic = NetworkInterface(bandwidth_bps=100.0)
        completion = nic.transmit(0.0, "a", 50.0)
        assert completion == pytest.approx(0.5)

    def test_rx_and_tx_are_independent_duplex(self):
        nic = NetworkInterface(bandwidth_bps=100.0)
        tx_done = nic.transmit(0.0, "a", 100.0)
        rx_done = nic.receive(0.0, "a", 100.0)
        # Both directions complete at 1.0: no mutual serialization.
        assert tx_done == pytest.approx(1.0)
        assert rx_done == pytest.approx(1.0)

    def test_same_direction_serializes(self):
        nic = NetworkInterface(bandwidth_bps=100.0)
        first = nic.transmit(0.0, "a", 100.0)
        second = nic.transmit(0.0, "b", 100.0)
        assert second == pytest.approx(first + 1.0)

    def test_byte_accounting_per_owner(self):
        nic = NetworkInterface()
        nic.receive(0.0, "web", 1000.0)
        nic.transmit(0.0, "web", 2000.0)
        assert nic.bytes_received("web") == 1000.0
        assert nic.bytes_transmitted("web") == 2000.0
        assert nic.total_bytes("web") == 3000.0

    def test_packet_counters(self):
        nic = NetworkInterface()
        nic.receive(0.0, "a", 10.0)
        nic.receive(0.0, "a", 10.0)
        nic.transmit(0.0, "a", 10.0)
        assert nic.packets == {"rx": 2, "tx": 1}

    def test_negative_size_rejected(self):
        with pytest.raises(CapacityError):
            NetworkInterface().transmit(0.0, "a", -1.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkInterface(bandwidth_bps=0.0)


class TestNetworkFabric:
    def test_local_vs_remote_latency(self):
        fabric = NetworkFabric(
            inter_server_latency_s=1e-3, local_latency_s=1e-5
        )
        fabric.place("web", "host1")
        fabric.place("db", "host1")
        fabric.place("client", "host2")
        assert fabric.latency("web", "db") == 1e-5
        assert fabric.latency("client", "web") == 1e-3

    def test_unplaced_endpoint_rejected(self):
        fabric = NetworkFabric()
        fabric.place("web", "host1")
        with pytest.raises(ConfigurationError):
            fabric.latency("web", "ghost")

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkFabric(inter_server_latency_s=-1.0)

    def test_server_of(self):
        fabric = NetworkFabric()
        fabric.place("web", "host1")
        assert fabric.server_of("web") == "host1"
