"""Unit tests for server composition and cluster."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster
from repro.hardware.server import PhysicalServer, ServerSpec
from repro.units import GB, TB


class TestServerSpec:
    def test_paper_testbed_matches_section3(self):
        spec = ServerSpec.paper_testbed()
        assert spec.cores == 8
        assert spec.frequency_hz == 2.8e9
        assert spec.memory_bytes == 32 * GB
        assert spec.disk_bytes == 2 * TB


class TestPhysicalServer:
    def test_components_sized_from_spec(self):
        server = PhysicalServer("s1")
        assert server.cpu.cores == 8
        assert server.memory.capacity_bytes == 32 * GB
        assert server.disk.capacity_bytes == 2 * TB
        assert server.nic.bandwidth_bps == 125e6

    def test_custom_spec(self):
        spec = ServerSpec(cores=2, frequency_hz=1e9, memory_bytes=GB)
        server = PhysicalServer("small", spec)
        assert server.cpu.capacity_cycles_per_s == 2e9


class TestCluster:
    def test_add_and_get_server(self):
        cluster = Cluster()
        server = cluster.add_server("node1")
        assert cluster.server("node1") is server
        assert "node1" in cluster
        assert len(cluster) == 1

    def test_duplicate_name_rejected(self):
        cluster = Cluster()
        cluster.add_server("node1")
        with pytest.raises(ConfigurationError):
            cluster.add_server("node1")

    def test_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster().server("ghost")

    def test_servers_listing(self):
        cluster = Cluster()
        cluster.add_server("a")
        cluster.add_server("b")
        assert {s.name for s in cluster.servers()} == {"a", "b"}

    def test_iteration_order_is_insertion_order(self):
        cluster = Cluster()
        for name in ("zeta", "alpha", "mid"):
            cluster.add_server(name)
        assert [s.name for s in cluster.servers()] == ["zeta", "alpha", "mid"]
        assert cluster.server_names() == ["zeta", "alpha", "mid"]
        assert [s.name for s in cluster] == ["zeta", "alpha", "mid"]

    def test_remove_server(self):
        cluster = Cluster()
        server = cluster.add_server("a")
        cluster.add_server("b")
        removed = cluster.remove_server("a")
        assert removed is server
        assert "a" not in cluster
        assert cluster.server_names() == ["b"]
        # The name is free again after removal.
        cluster.add_server("a")
        assert cluster.server_names() == ["b", "a"]

    def test_remove_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster().remove_server("ghost")

    def test_total_capacity_aggregates_specs(self):
        cluster = Cluster()
        cluster.add_server("a")
        cluster.add_server("b", ServerSpec(cores=4, memory_bytes=16 * GB))
        capacity = cluster.total_capacity()
        assert capacity.servers == 2
        assert capacity.cores == 12
        assert capacity.memory_bytes == 48 * GB
        assert capacity.cycles_per_s == 8 * 2.8e9 + 4 * 2.8e9
        assert capacity.disk_bytes == 4 * TB

    def test_total_capacity_empty_cluster(self):
        capacity = Cluster().total_capacity()
        assert capacity.servers == 0
        assert capacity.cores == 0
