"""Unit tests for the memory bank."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.memory import MemoryBank
from repro.units import GB, MB


class TestMemoryBank:
    def test_set_and_read_usage(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("web", 100 * MB)
        assert bank.usage("web") == 100 * MB

    def test_total_and_free(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 200 * MB)
        bank.set_usage("b", 300 * MB)
        assert bank.total_used() == 500 * MB
        assert bank.free_bytes() == 1 * GB - 500 * MB

    def test_overcommit_rejected(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 800 * MB)
        with pytest.raises(CapacityError):
            bank.set_usage("b", 300 * MB)

    def test_owner_can_shrink_then_regrow(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 900 * MB)
        bank.set_usage("a", 100 * MB)
        bank.set_usage("b", 800 * MB)
        assert bank.total_used() == 900 * MB

    def test_replacing_own_usage_not_double_counted(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 600 * MB)
        bank.set_usage("a", 700 * MB)  # must not raise
        assert bank.usage("a") == 700 * MB

    def test_negative_usage_rejected(self):
        with pytest.raises(CapacityError):
            MemoryBank(1 * GB).set_usage("a", -1.0)

    def test_adjust_usage_delta(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 100 * MB)
        bank.adjust_usage("a", 50 * MB)
        assert bank.usage("a") == 150 * MB

    def test_adjust_clamps_at_zero(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 10 * MB)
        bank.adjust_usage("a", -100 * MB)
        assert bank.usage("a") == 0.0

    def test_unknown_owner_usage_is_zero(self):
        assert MemoryBank(1 * GB).usage("ghost") == 0.0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryBank(0.0)

    def test_snapshot(self):
        bank = MemoryBank(1 * GB)
        bank.set_usage("a", 1 * MB)
        assert bank.snapshot() == {"a": 1 * MB}
