"""Unit tests for the disk device model."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.disk import Disk, DiskRequest


def make_disk(**kwargs):
    defaults = dict(
        read_bandwidth_bps=100e6,
        write_bandwidth_bps=50e6,
        access_latency_s=1e-3,
    )
    defaults.update(kwargs)
    return Disk(**defaults)


class TestDiskRequest:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskRequest("a", "append", 10.0)

    def test_negative_size_rejected(self):
        with pytest.raises(CapacityError):
            DiskRequest("a", "read", -5.0)


class TestServiceTime:
    def test_read_uses_read_bandwidth(self):
        disk = make_disk()
        request = DiskRequest("a", "read", 100e6)
        assert disk.service_time(request) == pytest.approx(1.0 + 1e-3)

    def test_write_uses_write_bandwidth(self):
        disk = make_disk()
        request = DiskRequest("a", "write", 50e6)
        assert disk.service_time(request) == pytest.approx(1.0 + 1e-3)

    def test_zero_size_costs_latency_only(self):
        disk = make_disk()
        request = DiskRequest("a", "read", 0.0)
        assert disk.service_time(request) == pytest.approx(1e-3)


class TestQueueing:
    def test_idle_disk_serves_immediately(self):
        disk = make_disk()
        completion = disk.submit(10.0, DiskRequest("a", "read", 1e6))
        assert completion == pytest.approx(10.0 + 1e-3 + 0.01)

    def test_fifo_backlog_accumulates(self):
        disk = make_disk()
        first = disk.submit(0.0, DiskRequest("a", "read", 100e6))
        second = disk.submit(0.0, DiskRequest("a", "read", 100e6))
        assert second == pytest.approx(first + 1.0 + 1e-3)

    def test_queue_drains_during_idle_gap(self):
        disk = make_disk()
        disk.submit(0.0, DiskRequest("a", "read", 1e6))
        completion = disk.submit(100.0, DiskRequest("a", "read", 1e6))
        assert completion == pytest.approx(100.0 + 1e-3 + 0.01)

    def test_queue_delay_reporting(self):
        disk = make_disk()
        disk.submit(0.0, DiskRequest("a", "read", 100e6))
        assert disk.queue_delay(0.0) == pytest.approx(1.0 + 1e-3)
        assert disk.queue_delay(50.0) == 0.0


class TestAccounting:
    def test_per_owner_byte_counters(self):
        disk = make_disk()
        disk.submit(0.0, DiskRequest("web", "read", 1000.0))
        disk.submit(0.0, DiskRequest("web", "write", 500.0))
        disk.submit(0.0, DiskRequest("db", "write", 200.0))
        assert disk.bytes_read("web") == 1000.0
        assert disk.bytes_written("web") == 500.0
        assert disk.total_bytes("web") == 1500.0
        assert disk.total_bytes("db") == 200.0

    def test_requests_served_counter(self):
        disk = make_disk()
        for _ in range(3):
            disk.submit(0.0, DiskRequest("a", "read", 1.0))
        assert disk.requests_served == 3

    def test_snapshot_structure(self):
        disk = make_disk()
        disk.submit(0.0, DiskRequest("a", "read", 10.0))
        snapshot = disk.snapshot()
        assert snapshot["read"] == {"a": 10.0}
        assert snapshot["write"] == {}

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            make_disk(read_bandwidth_bps=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            make_disk(access_latency_s=-1.0)
