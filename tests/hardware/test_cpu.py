"""Unit tests for CPU package and cycle ledger."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cpu import CpuPackage, CycleLedger


class TestCycleLedger:
    def test_charges_accumulate(self):
        ledger = CycleLedger()
        ledger.charge("a", 100.0)
        ledger.charge("a", 50.0)
        assert ledger.total("a") == 150.0

    def test_unknown_owner_is_zero(self):
        assert CycleLedger().total("nobody") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(CapacityError):
            CycleLedger().charge("a", -1.0)

    def test_grand_total(self):
        ledger = CycleLedger()
        ledger.charge("a", 10.0)
        ledger.charge("b", 20.0)
        assert ledger.grand_total() == 30.0

    def test_owners_sorted(self):
        ledger = CycleLedger()
        ledger.charge("zeta", 1.0)
        ledger.charge("alpha", 1.0)
        assert list(ledger.owners()) == ["alpha", "zeta"]

    def test_snapshot_is_copy(self):
        ledger = CycleLedger()
        ledger.charge("a", 5.0)
        snapshot = ledger.snapshot()
        snapshot["a"] = 999.0
        assert ledger.total("a") == 5.0


class TestCpuPackage:
    def test_paper_capacity(self):
        cpu = CpuPackage(cores=8, frequency_hz=2.8e9)
        assert cpu.capacity_cycles_per_s == 8 * 2.8e9

    def test_service_time_full_speed(self):
        cpu = CpuPackage(cores=8, frequency_hz=2.0e9)
        assert cpu.service_time(2.0e9) == pytest.approx(1.0)

    def test_service_time_scales_with_speed_fraction(self):
        cpu = CpuPackage(cores=8, frequency_hz=2.0e9)
        assert cpu.service_time(2.0e9, speed_fraction=0.5) == pytest.approx(2.0)

    def test_service_time_rejects_bad_fraction(self):
        cpu = CpuPackage(cores=2)
        with pytest.raises(CapacityError):
            cpu.service_time(1.0, speed_fraction=0.0)
        with pytest.raises(CapacityError):
            cpu.service_time(1.0, speed_fraction=3.0)

    def test_service_time_rejects_negative_cycles(self):
        with pytest.raises(CapacityError):
            CpuPackage().service_time(-1.0)

    def test_charge_lands_in_ledger(self):
        cpu = CpuPackage()
        cpu.charge("vm:web", 1e6)
        assert cpu.ledger.total("vm:web") == 1e6

    def test_utilization(self):
        cpu = CpuPackage(cores=4, frequency_hz=1e9)
        assert cpu.utilization(2e9, 1.0) == pytest.approx(0.5)

    def test_utilization_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            CpuPackage().utilization(1.0, 0.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CpuPackage(cores=0)
        with pytest.raises(ConfigurationError):
            CpuPackage(frequency_hz=0.0)
