"""Tests for the experiment configuration and the CLI."""

import json

import pytest

from repro.cli import main
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError


class TestExperimentConfig:
    def test_defaults_build_a_scenario(self):
        config = ExperimentConfig()
        spec = config.to_scenario()
        assert spec.environment == "virtualized"
        assert spec.mix.name == "browsing"

    def test_round_trip_through_json(self):
        config = ExperimentConfig(
            environment="bare-metal",
            composition="bidding",
            duration_s=60.0,
            seed=9,
            clients=100,
            metadata={"note": "smoke"},
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config

    def test_unknown_environment_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(environment="kubernetes")

    def test_unknown_composition_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(composition="doomscrolling")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(duration_s=0.0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_dict({"environment": "virtualized",
                                        "gpu": True})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_json("not json")
        with pytest.raises(ConfigurationError):
            ExperimentConfig.from_json(json.dumps([1, 2, 3]))

    def test_clients_override_propagates(self):
        config = ExperimentConfig(clients=42, duration_s=30.0)
        assert config.to_scenario().mix.clients == 42

    def test_effective_duration_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_DURATION", raising=False)
        assert ExperimentConfig().effective_duration_s == 240.0
        assert ExperimentConfig(duration_s=33.0).effective_duration_s == 33.0

    def test_open_loop_traffic_round_trip(self):
        config = ExperimentConfig(
            traffic="poisson", rate_rps=120.0, session_budget=500
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        spec = config.to_scenario()
        assert spec.open_loop
        assert spec.traffic.rate_rps == 120.0
        assert spec.traffic.session_budget == 500

    def test_open_loop_knobs_rejected_on_closed_loop(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(rate_rps=100.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(traffic="closed", session_budget=10)

    def test_scale_multiplies_clients_and_duration(self):
        config = ExperimentConfig(duration_s=30.0, clients=100, scale=2.0)
        spec = config.to_scenario()
        assert spec.duration_s == 60.0
        assert spec.mix.clients == 200

    def test_servers_and_placement_round_trip(self):
        config = ExperimentConfig(
            duration_s=40.0, servers=2, placement="priority",
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        spec = config.to_scenario()
        assert spec.servers == 2
        assert spec.placement == "priority"
        assert spec.name.endswith("/s2")

    def test_single_server_keeps_plain_name(self):
        spec = ExperimentConfig(duration_s=40.0).to_scenario()
        assert spec.servers == 1
        assert "/s" not in spec.name

    def test_multi_server_requires_virtualized(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(environment="bare-metal", servers=2)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(placement="tetris")

    def test_unknown_traffic_token_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(traffic="chaos")

    def test_faults_round_trip(self):
        config = ExperimentConfig(
            duration_s=40.0, servers=2, faults="crash@60+bot_flood@90:15",
        )
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        spec = config.to_scenario()
        assert spec.faulted
        assert spec.faults.kinds() == ("crash", "bot_flood")
        assert spec.name.endswith("!crash@60+bot_flood@90:15")

    def test_faults_none_token_runs_fault_free(self):
        spec = ExperimentConfig(duration_s=40.0, faults="none").to_scenario()
        assert not spec.faulted
        assert "!" not in spec.name

    def test_bad_fault_token_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(faults="meteor@60")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(faults="crash")

    def test_faults_require_virtualized(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(environment="bare-metal", faults="crash@60")


class TestCli:
    def test_run_prints_summary_and_report(self, capsys):
        code = main(
            [
                "run",
                "--duration", "30",
                "--clients", "100",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "completed" in captured.out
        assert "Workload characterization" in captured.out

    def test_run_no_report(self, capsys):
        code = main(
            ["run", "--duration", "30", "--clients", "100", "--no-report"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Workload characterization" not in captured.out

    def test_run_exports_csv(self, tmp_path, capsys):
        out = tmp_path / "traces.csv"
        code = main(
            [
                "run",
                "--duration", "30",
                "--clients", "100",
                "--no-report",
                "--export-csv", str(out),
            ]
        )
        assert code == 0
        header = out.read_text().splitlines()[0]
        assert header.startswith("time_s,")

    def test_run_open_loop_traffic_reports_shedding_counters(self, capsys):
        code = main(
            [
                "run",
                "--duration", "30",
                "--clients", "100",
                "--no-report",
                "--traffic", "poisson",
                "--rate", "60",
                "--session-budget", "400",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "open-loop traffic:" in captured.out
        assert "shed" in captured.out
        assert "sha256" in captured.out

    def test_run_columnar_exports_npz(self, tmp_path, capsys):
        out = tmp_path / "cols.npz"
        code = main(
            [
                "run",
                "--duration", "10",
                "--clients", "50",
                "--no-report",
                "--columnar",
                "--export-columnar", str(out),
            ]
        )
        assert code == 0
        from repro.monitoring.export import read_columnar_npz

        table = read_columnar_npz(str(out))
        assert len(table) == 5
        assert "time_s" in table.columns

    def test_export_columnar_requires_columnar(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "run",
                    "--duration", "10",
                    "--no-report",
                    "--export-columnar", "/tmp/x.csv",
                ]
            )

    def test_run_list_prints_scenario_names(self, capsys):
        code = main(["run", "--list"])
        captured = capsys.readouterr()
        assert code == 0
        assert "virtualized/browsing" in captured.out
        assert "consolidated_web_batch" in captured.out
        assert "migration_rebalance" in captured.out
        assert "fleet_consolidation" in captured.out

    def test_run_multi_server_prints_bill_and_placement(self, capsys):
        code = main([
            "run", "--servers", "2", "--placement", "balance",
            "--duration", "20", "--clients", "80", "--no-report",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "2 servers (balance placement)" in captured.err
        assert "capacity bill:" in captured.out

    def test_run_scenario_rejects_servers_flag(self):
        with pytest.raises(ConfigurationError, match="--servers"):
            main([
                "run", "--scenario", "migration_rebalance",
                "--servers", "3", "--duration", "10",
            ])

    def test_run_unknown_scenario_names_the_list_flag(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--list"):
            main(["run", "--scenario", "doomscrolling", "--duration", "10"])

    def test_run_named_consolidated_scenario(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "consolidated_web_batch",
                "--duration", "20",
                "--no-report",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "tenant batch:" in captured.out
        assert "CPU ready time" in captured.out

    def test_sweep_quick_grid_single_worker(self, capsys):
        code = main(
            ["sweep", "--grid", "quick", "--duration", "20", "--workers", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "virtualized/browsing" in captured.out
        assert "merged sha256" in captured.out

    def test_sweep_writes_json_report(self, tmp_path, capsys):
        out = tmp_path / "suite.json"
        code = main(
            [
                "sweep",
                "--compositions", "browsing",
                "--duration", "20",
                "--clients", "80",
                "--json", str(out),
            ]
        )
        assert code == 0
        import json as json_module

        report = json_module.loads(out.read_text())
        assert "runs" in report and "merged_sha256" in report
        assert "virtualized/browsing" in report["runs"]

    def test_sweep_rejects_unknown_tenant_mix(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["sweep", "--tenant-mixes", "gpu-farm", "--duration", "10"])

    def test_run_faults_prints_schedule_report(self, capsys):
        code = main([
            "run", "--faults", "cap_theft@10:10:0.2/web-vm",
            "--controller", "threshold",
            "--duration", "30", "--clients", "80", "--no-report",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "+ faults cap_theft@10:10:0.2/web-vm" in captured.err
        assert "faults [faults]: 1 injected, 1 cleared" in captured.out

    def test_run_scenario_rejects_faults_flag(self):
        with pytest.raises(ConfigurationError, match="--faults"):
            main([
                "run", "--scenario", "detect_and_evacuate",
                "--faults", "crash@60", "--duration", "10",
            ])

    def test_sweep_faults_axis_shares_seeds(self, capsys):
        code = main([
            "sweep", "--faults", "none,crash@15",
            "--duration", "20", "--clients", "60",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "virtualized/browsing/!crash@15" in captured.out

    def test_sweep_preset_rejects_faults_flag(self):
        with pytest.raises(ConfigurationError, match="--faults"):
            main(["sweep", "--grid", "quick", "--faults", "crash@15"])

    def test_table1_prints_catalogue(self, capsys):
        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "518" in captured.out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["teleport"])
