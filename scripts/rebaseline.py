#!/usr/bin/env python
"""Re-pin the per-engine baseline fingerprints.

Runs every baseline cell (the paper's 2x2 closed-loop matrix plus the
open-loop poisson cell) under both engines and writes their trace
fingerprints to ``tests/baselines/engine_fingerprints.json``, which
``tests/integration/test_engine_equivalence.py`` enforces.

Run this ONLY when a deliberate RNG-epoch change lands (a new engine, a
re-ordering of random draws, a change to the drain schedule).  A routine
refactor must never need it — if this script produces a diff you did not
plan for, the refactor broke bit-stability and the fix belongs in the
code, not here.  Commit the JSON diff together with a PERFORMANCE.md
note explaining the epoch bump.

Usage:
    PYTHONPATH=src python scripts/rebaseline.py [--check]

``--check`` recomputes and compares instead of writing (exit 1 on
drift) — the same verification the test suite performs, usable without
pytest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments.baseline import (  # noqa: E402
    BASELINE_DURATION_S,
    BASELINE_OPEN_RATE_RPS,
    BASELINE_SEED,
    FINGERPRINT_PATH,
    fingerprint_engine,
)
from repro.experiments.scenarios import ENGINES  # noqa: E402


def compute_document() -> dict:
    return {
        "epoch": 2,
        "duration_s": BASELINE_DURATION_S,
        "seed": BASELINE_SEED,
        "open_rate_rps": BASELINE_OPEN_RATE_RPS,
        "engines": {engine: fingerprint_engine(engine) for engine in ENGINES},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the pinned file instead of rewriting it",
    )
    args = parser.parse_args()

    target = ROOT / FINGERPRINT_PATH
    document = compute_document()
    if args.check:
        if not target.exists():
            print(f"no pinned fingerprints at {target}", file=sys.stderr)
            return 1
        pinned = json.loads(target.read_text())
        if pinned == document:
            print("fingerprints match the pinned baseline")
            return 0
        for engine, cells in document["engines"].items():
            for cell, fingerprint in cells.items():
                pinned_fp = pinned.get("engines", {}).get(engine, {}).get(cell)
                if pinned_fp != fingerprint:
                    print(
                        f"DRIFT {engine} {cell}: pinned {pinned_fp} "
                        f"recomputed {fingerprint}",
                        file=sys.stderr,
                    )
        return 1
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"pinned {sum(len(c) for c in document['engines'].values())} "
          f"fingerprints to {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
