"""T1 — Table 1: the 518-metric profiling catalogue.

Regenerates the paper's Table 1 (sample of performance metrics) and
validates the catalogue counts (182 + 182 sysstat, 154 perf).
"""

from repro.experiments.tables import render_table1
from repro.monitoring.registry import TOTAL_METRIC_COUNT, build_registry


def test_table1_catalogue(benchmark):
    def regenerate():
        registry = build_registry()
        return registry, render_table1(registry)

    registry, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(text)
    counts = registry.counts_by_source()
    benchmark.extra_info["total_metrics"] = len(registry)
    benchmark.extra_info["hypervisor_sysstat"] = counts["sysstat-hypervisor"]
    benchmark.extra_info["vm_sysstat"] = counts["sysstat-vm"]
    benchmark.extra_info["perf"] = counts["perf"]
    assert len(registry) == TOTAL_METRIC_COUNT == 518
