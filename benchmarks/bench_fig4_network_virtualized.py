"""F4 — Figure 4: network RX+TX in the virtualized environment.

Panels: Web+App VM, MySQL VM, dom0; KB per 2 s.  Shape targets: the
web tier dominates by ~55x (R1 net = 55.56; the db link carries only
queries and row data), dom0 tracks the VM aggregate almost 1:1
(R2 net = 0.98 — every guest byte is proxied once).
"""

from benchmarks._figure_bench import run_figure_bench


def test_figure4_network_virtualized(benchmark, virt_browse, virt_bid):
    data = run_figure_bench(benchmark, 4, virt_browse, virt_bid)
    web = data.panels[0].series["browse"]
    db = data.panels[1].series["browse"]
    dom0 = data.panels[2].series["browse"]
    assert web.mean() > 30 * db.mean()
    vm_aggregate = web.mean() + db.mean()
    assert dom0.mean() == vm_aggregate * 1.02 or (
        0.95 < dom0.mean() / vm_aggregate < 1.10
    )
    # Browsing moves at least as much guest network data as bidding.
    assert web.mean() >= data.panels[0].series["bid"].mean()
