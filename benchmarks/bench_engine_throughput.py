"""P1 — engine + telemetry throughput on a full-registry scenario.

The tentpole performance benchmark: runs the paper's virtualized
browsing scenario with the complete 518-metric registry sampled every
2 s and reports end-to-end throughput — events/s through the DES engine
and metrics/s through the telemetry pipeline — into ``extra_info`` so
the BENCH trajectory tracks regressions.

Two supporting microbenchmarks isolate the layers: a pure event-loop
run (periodic processes only, no application logic) and a
cancellation-heavy run that exercises the lazy-deletion + compaction
path of the event queue.

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink the horizons so the
whole file runs in a few seconds (the CI smoke configuration).
"""

import os
import time
from dataclasses import replace

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.monitoring.registry import build_registry
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

#: Scenario horizon (seconds of simulated time).
HORIZON_S = 30.0 if QUICK else 240.0
#: Pure event-loop horizon.
LOOP_HORIZON_S = 5.0 if QUICK else 50.0

#: Classic-engine event counts per configuration, shared with the
#: batched variants below: the batched engine fires only drain ticks,
#: so its honest throughput figure is *classic-equivalent* events/s —
#: the events the classic engine needs for the same simulated work,
#: divided by the batched wall time.
_CLASSIC_EVENTS = {}


def _classic_events(key, sc, registry):
    """Classic event count for ``sc``, reusing the classic bench's run."""
    if key not in _CLASSIC_EVENTS:
        result = run_scenario(
            sc, collect_full_registry=True, registry=registry,
            columnar_rows=True,
        )
        _CLASSIC_EVENTS[key] = result.deployment.sim.events_fired
    return _CLASSIC_EVENTS[key]


def test_full_registry_scenario_throughput(benchmark):
    """End-to-end: DES + 518-metric telemetry, columnar storage."""
    registry = build_registry()
    sc = scenario("virtualized", "browsing", duration_s=HORIZON_S, seed=7)
    # Warm the calibration cache so the measurement covers the run loop,
    # not one-time setup.
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))

    def run():
        start = time.perf_counter()
        result = run_scenario(
            sc,
            collect_full_registry=True,
            registry=registry,
            columnar_rows=True,
        )
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    events = result.deployment.sim.events_fired
    _CLASSIC_EVENTS["full_registry"] = events
    samples = len(result.columnar)
    metric_columns = len(result.columnar.columns) - 1  # minus time_s
    benchmark.extra_info["engine"] = "classic"
    benchmark.extra_info["horizon_s"] = HORIZON_S
    benchmark.extra_info["events_fired"] = events
    benchmark.extra_info["events_per_s"] = round(events / elapsed)
    benchmark.extra_info["samples"] = samples
    benchmark.extra_info["metric_columns"] = metric_columns
    benchmark.extra_info["metrics_per_s"] = round(
        samples * metric_columns / elapsed
    )
    benchmark.extra_info["sim_speedup_over_realtime"] = round(
        HORIZON_S / elapsed, 1
    )
    print(
        f"\n{events} events, {samples} x {metric_columns} metric samples "
        f"in {elapsed:.3f}s -> {events / elapsed:,.0f} events/s, "
        f"{samples * metric_columns / elapsed:,.0f} metrics/s"
    )
    assert samples == int(HORIZON_S // 2)
    assert metric_columns == 3 * (182 + 154)


def test_million_event_scenario_throughput(benchmark):
    """The acceptance configuration: >1M events, full 518-metric registry.

    5000 clients over the 240 s horizon drive ~1.12M events.  This is
    the scale where the tuple-keyed heap pays off most: the seed
    implementation's per-event Python comparisons grow with the log of
    the pending-event count (one think timer per client), while the
    C-level tuple compares do not.  Measured speedup vs. the seed is
    recorded in PERFORMANCE.md (≥3x, bit-identical traces).
    """
    clients = 1_000 if QUICK else 5_000
    horizon = 30.0 if QUICK else 240.0
    registry = build_registry()
    sc = scenario(
        "virtualized", "browsing", duration_s=horizon, seed=7,
        clients=clients,
    )
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))

    def run():
        start = time.perf_counter()
        result = run_scenario(
            sc,
            collect_full_registry=True,
            registry=registry,
            columnar_rows=True,
        )
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    events = result.deployment.sim.events_fired
    _CLASSIC_EVENTS["million_event"] = events
    samples = len(result.columnar)
    metric_columns = len(result.columnar.columns) - 1
    benchmark.extra_info["engine"] = "classic"
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["events_fired"] = events
    benchmark.extra_info["events_per_s"] = round(events / elapsed)
    benchmark.extra_info["metrics_per_s"] = round(
        samples * metric_columns / elapsed
    )
    print(
        f"\n{clients} clients: {events:,} events in {elapsed:.2f}s "
        f"-> {events / elapsed:,.0f} events/s"
    )
    if not QUICK:
        assert events > 1_000_000


def test_full_registry_scenario_throughput_batched(benchmark):
    """The full-registry scenario under ``engine="batched"``.

    Same simulated work as the classic bench above; the reported
    ``events_per_s`` is *classic-equivalent* (classic events for this
    configuration over batched wall time), so the two rows compare
    directly.
    """
    registry = build_registry()
    base = scenario("virtualized", "browsing", duration_s=HORIZON_S, seed=7)
    sc = replace(base, name=f"{base.name}%batched", engine="batched")
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))
    classic_events = _classic_events("full_registry", base, registry)

    def run():
        start = time.perf_counter()
        result = run_scenario(
            sc,
            collect_full_registry=True,
            registry=registry,
            columnar_rows=True,
        )
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    samples = len(result.columnar)
    metric_columns = len(result.columnar.columns) - 1
    benchmark.extra_info["engine"] = "batched"
    benchmark.extra_info["horizon_s"] = HORIZON_S
    benchmark.extra_info["classic_equivalent_events"] = classic_events
    benchmark.extra_info["events_per_s"] = round(classic_events / elapsed)
    benchmark.extra_info["metrics_per_s"] = round(
        samples * metric_columns / elapsed
    )
    print(
        f"\nbatched: {classic_events:,} classic-equivalent events in "
        f"{elapsed:.3f}s -> {classic_events / elapsed:,.0f} events/s"
    )
    assert samples == int(HORIZON_S // 2)
    assert result.requests_completed > 0


def test_million_event_scenario_throughput_batched(benchmark):
    """The million-event acceptance configuration under the batched engine.

    The Epoch-2 headline number: classic-equivalent events/s on the
    exact configuration PERFORMANCE.md tracks (5000 clients, 240 s,
    full registry, columnar).
    """
    clients = 1_000 if QUICK else 5_000
    horizon = 30.0 if QUICK else 240.0
    registry = build_registry()
    base = scenario(
        "virtualized", "browsing", duration_s=horizon, seed=7,
        clients=clients,
    )
    sc = replace(base, name=f"{base.name}%batched", engine="batched")
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))
    classic_events = _classic_events("million_event", base, registry)

    def run():
        start = time.perf_counter()
        result = run_scenario(
            sc,
            collect_full_registry=True,
            registry=registry,
            columnar_rows=True,
        )
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["engine"] = "batched"
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["classic_equivalent_events"] = classic_events
    benchmark.extra_info["events_per_s"] = round(classic_events / elapsed)
    print(
        f"\nbatched, {clients} clients: {classic_events:,} "
        f"classic-equivalent events in {elapsed:.2f}s "
        f"-> {classic_events / elapsed:,.0f} events/s"
    )
    assert result.requests_completed > 0


def test_pure_event_loop_throughput(benchmark):
    """Engine-only: periodic callbacks, no application or telemetry."""

    def run():
        sim = Simulator()
        for k in range(200):
            PeriodicProcess(
                sim, 0.01 + k * 1e-5, lambda t: None, name=f"p{k}"
            ).start()
        start = time.perf_counter()
        sim.run_until(LOOP_HORIZON_S)
        return sim.events_fired, time.perf_counter() - start

    events, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["events_fired"] = events
    benchmark.extra_info["events_per_s"] = round(events / elapsed)
    print(f"\npure loop: {events / elapsed:,.0f} events/s")
    assert events > 0


def test_cancellation_heavy_throughput(benchmark):
    """Timer-wheel style load: most scheduled events are cancelled.

    Mimics burst waves re-arming think timers; exercises lazy deletion
    and heap compaction, which keep pop cost bounded.
    """
    rounds = 2_000 if QUICK else 50_000

    def run():
        sim = Simulator()
        fired = []
        start = time.perf_counter()
        pending = []
        for i in range(rounds):
            # Schedule a far-future timeout, then cancel it and re-arm —
            # the pattern that litters the heap with dead entries.
            event = sim.schedule(1e6 + i, fired.append, i)
            pending.append(event)
            if len(pending) >= 16:
                for stale in pending:
                    sim.cancel(stale)
                pending.clear()
            sim.schedule(0.001 * i, lambda: None)
        sim.run_until(0.001 * rounds + 1.0)
        return time.perf_counter() - start, sim

    elapsed, sim = benchmark.pedantic(run, rounds=1, iterations=1)
    queue = sim._queue
    benchmark.extra_info["scheduled"] = 2 * rounds
    benchmark.extra_info["ops_per_s"] = round(2 * rounds / elapsed)
    benchmark.extra_info["compactions"] = queue.compactions
    print(
        f"\ncancellation-heavy: {2 * rounds / elapsed:,.0f} ops/s, "
        f"{queue.compactions} compactions, "
        f"{queue.dead_entries} dead entries left"
    )
    assert queue.compactions > 0
