"""F1 — Figure 1: CPU cycle demands in the virtualized environment.

Panels: Web+App VM, MySQL VM, dom0; browse vs bid; cycles per 2 s.
Shape targets: web >> db (R1 CPU = 6.11), VM aggregate >> dom0
(R2 CPU = 16.84), and bid costing dom0 slightly *more* than browse (Q5).
"""

from benchmarks._figure_bench import run_figure_bench


def test_figure1_cpu_virtualized(benchmark, virt_browse, virt_bid):
    data = run_figure_bench(benchmark, 1, virt_browse, virt_bid)
    web = data.panels[0].series
    db = data.panels[1].series
    dom0 = data.panels[2].series
    # Shape assertions, not absolute numbers.
    assert web["browse"].mean() > 4 * db["browse"].mean()
    assert web["browse"].mean() > 10 * dom0["browse"].mean()
    assert dom0["bid"].mean() > dom0["browse"].mean()  # Q5
