"""P7 — observation-recorder overhead on the simulation hot path.

Measures what *observation* costs, not what faults or controllers do:
the same scenario runs twice on one seed, unobserved and with
``observe=True``, and the wall-clock delta is the full price of the
annotation stream — the hook taps, the per-tick SLO probe, and the
event-count series.  Observation is physics-neutral by construction
(the recorder never touches scheduler or request state; the obs tests
pin every pre-existing series bit-identical), so the delta is pure
harness overhead.

Two configurations:

* **million-event run** — the acceptance configuration from
  ``bench_engine_throughput.py`` (5000 virtualized browsing clients,
  240 s, >1M events).  No controller is attached, so zero annotations
  flow and the cost is the recorder's idle tick — the number behind
  PERFORMANCE.md's "<= 2% on the million-event run" invariant.
* **busy stream** — the detect-and-evacuate drill, where fault,
  fleet, migration, and control annotations actually stream.
* **traced run** — the million-event configuration again, with
  request-trace sampling at 1% (``trace_sample=0.01``): the cost of
  the sampling gate on every send plus span assembly for the sampled
  set — the number behind PERFORMANCE.md's "<= 5% at 1% sampling"
  invariant.

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink horizons so the file
runs in a few seconds (the CI smoke configuration).
"""

import os
import time

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    detect_and_evacuate_scenario,
    scenario,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

#: Million-event acceptance configuration (shrunk in quick mode).
CLIENTS = 500 if QUICK else 5_000
HORIZON_S = 30.0 if QUICK else 240.0
#: Busy-stream drill horizon.
DRILL_S = 90.0 if QUICK else 240.0


def test_observer_overhead_million_events(benchmark):
    """Idle-recorder cost on the >1M-event acceptance run."""
    sc = scenario(
        "virtualized", "browsing", duration_s=HORIZON_S, seed=7,
        clients=CLIENTS,
    )
    # Warm the calibration cache so the measurement covers the run
    # loop, not one-time setup.
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))

    def run():
        start = time.perf_counter()
        plain = run_scenario(sc)
        wall_plain = time.perf_counter() - start
        start = time.perf_counter()
        observed = run_scenario(sc, observe=True)
        wall_observed = time.perf_counter() - start
        return plain, observed, wall_plain, wall_observed

    plain, observed, wall_plain, wall_observed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = wall_observed / wall_plain - 1.0
    benchmark.extra_info["events_fired"] = observed.events_fired
    benchmark.extra_info["annotations"] = len(observed.annotations)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    benchmark.extra_info["plain_s"] = round(wall_plain, 3)
    benchmark.extra_info["observed_s"] = round(wall_observed, 3)
    print(
        f"\nobserver on {observed.events_fired:,} events: "
        f"{wall_plain:.2f}s plain -> {wall_observed:.2f}s observed "
        f"({overhead:+.1%}, {len(observed.annotations)} annotations)"
    )
    if not QUICK:
        assert observed.events_fired > 1_000_000
    assert plain.requests_completed == observed.requests_completed
    # The documented invariant is <= 2%; the wall-clock difference of
    # two runs is noisy (CI machines especially), so the hard bound is
    # generous — it exists to catch the recorder accidentally landing
    # on the per-request hot path, not to referee 1% noise.
    assert overhead < 0.15


def test_tracing_overhead_million_events(benchmark):
    """Request-tracing cost at 1% sampling on the acceptance run."""
    from dataclasses import replace

    sc = scenario(
        "virtualized", "browsing", duration_s=HORIZON_S, seed=7,
        clients=CLIENTS,
    )
    traced_sc = replace(sc, trace_sample=0.01)
    run_scenario(scenario("virtualized", "browsing", duration_s=4.0, seed=1))

    def run():
        start = time.perf_counter()
        plain = run_scenario(sc)
        wall_plain = time.perf_counter() - start
        start = time.perf_counter()
        traced = run_scenario(traced_sc)
        wall_traced = time.perf_counter() - start
        return plain, traced, wall_plain, wall_traced

    plain, traced, wall_plain, wall_traced = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = wall_traced / wall_plain - 1.0
    benchmark.extra_info["events_fired"] = traced.events_fired
    benchmark.extra_info["requests_traced"] = len(traced.request_traces)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    benchmark.extra_info["plain_s"] = round(wall_plain, 3)
    benchmark.extra_info["traced_s"] = round(wall_traced, 3)
    print(
        f"\ntracing 1% of {traced.requests_completed:,} requests "
        f"({len(traced.request_traces)} span trees): "
        f"{wall_plain:.2f}s plain -> {wall_traced:.2f}s traced "
        f"({overhead:+.1%})"
    )
    # Tracing never perturbs the physics — same seed, same requests.
    assert plain.requests_completed == traced.requests_completed
    if not QUICK:
        assert traced.events_fired > 1_000_000
        # Documented invariant: <= 5% at 1% sampling; generous hard
        # bound for wall-clock noise, same rationale as above.
        assert overhead < 0.10


def test_observer_overhead_busy_stream(benchmark):
    """Recorder cost when annotations actually flow (crash drill)."""
    sc = detect_and_evacuate_scenario(duration_s=DRILL_S, clients=400)

    def run():
        start = time.perf_counter()
        run_scenario(sc)
        wall_plain = time.perf_counter() - start
        start = time.perf_counter()
        observed = run_scenario(sc, observe=True)
        wall_observed = time.perf_counter() - start
        return observed, wall_plain, wall_observed

    observed, wall_plain, wall_observed = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = wall_observed / wall_plain - 1.0
    benchmark.extra_info["annotations"] = len(observed.annotations)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    print(
        f"\nbusy stream ({len(observed.annotations)} annotations): "
        f"{wall_plain:.2f}s plain -> {wall_observed:.2f}s observed "
        f"({overhead:+.1%})"
    )
    assert len(observed.annotations) > 0
    assert overhead < 0.15
