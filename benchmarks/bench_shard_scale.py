"""P6 — sharded fleet scaling (events/s and wall-clock vs. shards).

The shard coordinator's pitch is *scale without drift*: partitioning a
fleet over worker processes must change wall-clock only, never the
physics.  This bench runs the datacenter fleet (25 pods x 4 servers x
40 VMs = 100 servers / 1000 VMs; quick mode shrinks it to 4 pods) at
1/2/4 shards and reports:

* **events/s and wall-clock per shard count** — the PERFORMANCE.md
  scaling table row;
* **merged-fingerprint equality** — the determinism acceptance check,
  asserted on every pair of shard counts;
* **per-shard load imbalance** — events executed by the busiest shard
  over the mean, from the round-robin pod partition.

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink the fleet so the
file runs in tens of seconds (the CI smoke configuration).
"""

import os
import time

from repro.shard import datacenter_fleet, run_fleet, shard_partition

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

PODS = 4 if QUICK else 25
DURATION_S = 30.0 if QUICK else 60.0
CLIENTS = 60 if QUICK else 100
SHARD_COUNTS = (1, 2, 4)


def _fleet():
    return datacenter_fleet(
        pods=PODS, duration_s=DURATION_S, clients=CLIENTS
    )


def _shard_imbalance(result, shards: int) -> float:
    """Busiest shard's event count over the mean (1.0 = even)."""
    partition = shard_partition(result.fleet.pod_names(), shards)
    per_shard = [
        sum(result.pods[name]["events_fired"] for name in group)
        for group in partition
    ]
    mean = sum(per_shard) / len(per_shard)
    return max(per_shard) / mean if mean else 1.0


def test_events_per_second_vs_shard_count(benchmark):
    """The scaling table: same fleet, same fingerprint, N workers."""

    def run():
        rows = {}
        for shards in SHARD_COUNTS:
            fleet = _fleet()
            start = time.perf_counter()
            result = run_fleet(fleet, shards=shards)
            wall = time.perf_counter() - start
            rows[shards] = {
                "wall_s": wall,
                "events": result.events_fired,
                "events_per_s": result.events_fired / wall,
                "sha": result.merged_sha256,
                "imbalance": _shard_imbalance(result, shards),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for shards, row in rows.items():
        benchmark.extra_info[f"events_per_s_x{shards}"] = round(
            row["events_per_s"]
        )
        benchmark.extra_info[f"wall_s_x{shards}"] = round(row["wall_s"], 2)
        benchmark.extra_info[f"imbalance_x{shards}"] = round(
            row["imbalance"], 3
        )
    print(
        f"\nshard scale ({PODS} pods, {PODS * 4} servers, "
        f"{PODS * 40} VMs):"
    )
    for shards, row in rows.items():
        print(
            f"  {shards} shard(s): {row['wall_s']:6.1f}s wall, "
            f"{row['events_per_s']:>9,.0f} events/s, "
            f"imbalance {row['imbalance']:.2f}x, "
            f"sha {row['sha'][:16]}"
        )
    fingerprints = {row["sha"] for row in rows.values()}
    assert len(fingerprints) == 1, (
        f"merged fingerprints diverged across shard counts: {rows}"
    )
    # Round-robin over homogeneous pods must stay near-even.
    for shards, row in rows.items():
        assert row["imbalance"] <= 1.5, (
            f"{shards}-shard partition is lopsided "
            f"({row['imbalance']:.2f}x)"
        )
