"""A1 — Ablation: credit-scheduler caps under CPU pressure.

DESIGN.md calls out the credit scheduler as a load-bearing design
choice.  This ablation drives a small, hot population (short think
time) against the web VM and sweeps a CPU cap on its domain: capping
must stretch response times while the demand-side guest cycle counters
stay roughly constant — showing the scheduler, not the workload model,
sets the speed.
"""

from repro.experiments.runner import build_deployment
from repro.monitoring.probes import ContextProbe
from repro.monitoring.sampler import TraceRecorder
from repro.rubis.client import ClientPopulation
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

DURATION_S = 60.0
CAPS = (0.0, 0.5, 0.1)  # uncapped, half a core, a tenth of a core


def run_with_cap(cap_cores: float):
    sim = Simulator()
    streams = RandomStreams(seed=11)
    deployment = build_deployment(sim, streams, "virtualized")
    deployment.web_domain.cap_cores = cap_cores
    mix = WorkloadMix(
        "stress", browse_fraction=1.0, think_time_s=0.4, clients=120
    )
    population = ClientPopulation(
        sim,
        mix,
        deployment.send,
        streams.stream("clients"),
        {
            SessionType.BROWSE: browsing_matrix(),
            SessionType.BID: bidding_matrix(),
        },
        ramp_s=5.0,
    )
    deployment.population = population
    recorder = TraceRecorder(
        sim,
        [ContextProbe("web", deployment.web_context)],
        "virtualized",
        "stress",
    )
    population.start()
    sim.run_until(DURATION_S)
    recorder.stop()
    deployment.shutdown()
    return {
        "cap": cap_cores,
        "mean_response_s": population.stats.mean_response_time_s,
        "throughput_rps": population.stats.responses_received / DURATION_S,
        "web_cpu_per_sample": recorder.traces.get(
            "web", "cpu_cycles"
        ).without_warmup(10.0).mean(),
    }


def test_scheduler_cap_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_with_cap(cap) for cap in CAPS], rounds=1, iterations=1
    )
    print()
    print(f"{'cap (cores)':>12s} {'resp (ms)':>10s} {'X (rps)':>9s} "
          f"{'guest cycles/2s':>16s}")
    for row in rows:
        print(
            f"{row['cap'] or 'uncapped':>12} "
            f"{row['mean_response_s'] * 1000:>10.2f} "
            f"{row['throughput_rps']:>9.1f} "
            f"{row['web_cpu_per_sample']:>16.3g}"
        )
        benchmark.extra_info[f"cap_{row['cap']}.resp_ms"] = round(
            row["mean_response_s"] * 1000, 2
        )
    uncapped, half, tight = rows
    # Tighter caps stretch response times monotonically.
    assert tight["mean_response_s"] > half["mean_response_s"]
    assert half["mean_response_s"] >= uncapped["mean_response_s"]
    # The tight cap visibly throttles service.
    assert tight["mean_response_s"] > 2 * uncapped["mean_response_s"]
