"""F8 — Figure 8: network RX+TX on bare metal.

Panels: Web+App PM, MySQL PM; KB per 2 s.  Shape targets: the web
server carries essentially all client traffic (db link tiny, same 50x+
separation as the virtualized Figure 4), with the aggregate ~2% above
the virtualized physical traffic (R4 net = 1.02).
"""

from benchmarks._figure_bench import run_figure_bench


def test_figure8_network_physical(benchmark, bare_browse, bare_bid,
                                  virt_browse):
    data = run_figure_bench(benchmark, 8, bare_browse, bare_bid)
    web = data.panels[0].series["browse"]
    db = data.panels[1].series["browse"]
    assert web.mean() > 30 * db.mean()
    dom0_net = virt_browse.traces.get("dom0", "net_kb")
    bare_aggregate = web.mean() + db.mean()
    ratio = bare_aggregate / dom0_net.values.mean()
    benchmark.extra_info["bare_over_dom0_net"] = round(ratio, 3)
    assert 0.9 < ratio < 1.15  # R4 net ~ 1.02
