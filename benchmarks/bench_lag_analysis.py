"""X3 — Section 4.1: the web->db workload lag.

"there exist some lags between workload changes of the database server
and the web and application servers as the client requests are received
and processed first by the web server before being sent to the back-end
database server."  The bench estimates the lag by cross-correlation on
both workloads and asserts the back end never leads.
"""

from repro.analysis.correlation import estimate_lag


def _lag(result):
    web = result.traces.get("web", "cpu_cycles").without_warmup(30.0)
    db = result.traces.get("db", "cpu_cycles").without_warmup(30.0)
    return estimate_lag(web, db, max_lag=10, sample_period_s=2.0)


def test_web_db_lag(benchmark, virt_browse, virt_bid):
    lags = benchmark.pedantic(
        lambda: {"browse": _lag(virt_browse), "bid": _lag(virt_bid)},
        rounds=1,
        iterations=1,
    )
    print()
    for workload, lag in lags.items():
        print(
            f"{workload:<7s} db lags web by {lag.lag_samples} samples "
            f"({lag.lag_seconds:.1f}s), peak r={lag.correlation:.3f}"
        )
        benchmark.extra_info[f"{workload}.lag_samples"] = lag.lag_samples
        benchmark.extra_info[f"{workload}.correlation"] = round(
            lag.correlation, 3
        )
        assert lag.lag_samples >= 0  # Q1: the database never leads
        assert lag.correlation > 0.2  # tiers are genuinely coupled
