"""A3 — Ablation: think-time sweep (closed-loop operating point).

The paper fixes the think time at 7 s.  The closed-loop law X = N/(Z+R)
predicts throughput and hence resource demand; this sweep confirms the
testbed sits in the linear (light-load) regime the figures display —
halving Z roughly doubles every demand series.
"""

import pytest

from repro.analysis.ratios import demand_vector
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import Scenario
from repro.rubis.workload import WorkloadMix

DURATION_S = 120.0
THINK_TIMES = (14.0, 7.0, 3.5)


def run_with_think(think_s: float):
    mix = WorkloadMix(
        "browsing", browse_fraction=1.0, think_time_s=think_s, clients=1000
    )
    result = run_scenario(
        Scenario(
            name=f"think-{think_s}",
            environment="virtualized",
            mix=mix,
            duration_s=DURATION_S,
        )
    )
    vector = demand_vector(result.traces, "web", warmup_s=20.0)
    return {
        "think_s": think_s,
        "throughput_rps": result.throughput_rps,
        "web_cpu": vector.cpu_cycles,
        "web_net_kb": vector.net_kb,
    }


def test_think_time_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_with_think(z) for z in THINK_TIMES],
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'think (s)':>10s} {'X (rps)':>9s} {'web cpu/2s':>12s} "
          f"{'web net KB/2s':>14s}")
    for row in rows:
        print(
            f"{row['think_s']:>10.1f} {row['throughput_rps']:>9.1f} "
            f"{row['web_cpu']:>12.3g} {row['web_net_kb']:>14.1f}"
        )
        benchmark.extra_info[f"think_{row['think_s']}.rps"] = round(
            row["throughput_rps"], 1
        )
    # Closed-loop law: X ~ N/Z in the light-load regime.
    x14, x7, x35 = (row["throughput_rps"] for row in rows)
    assert x7 / x14 == pytest.approx(2.0, rel=0.15)
    assert x35 / x7 == pytest.approx(2.0, rel=0.15)
    # Demand follows throughput linearly.
    c14, c7, c35 = (row["web_cpu"] for row in rows)
    assert c7 / c14 == pytest.approx(2.0, rel=0.20)
    assert c35 / c7 == pytest.approx(2.0, rel=0.20)
