"""Shared machinery for the eight figure benchmarks.

Every paper figure is the same artifact shape — per-entity panels of
browse/bid series for one resource — so each ``bench_figN_*`` file
delegates here.  The bench regenerates the figure from the (cached)
runs, prints the text rendering, and attaches the per-panel means the
paper's axes encode.
"""

from __future__ import annotations

from repro.experiments.figures import figure, render_figure


def run_figure_bench(benchmark, number, browse_result, bid_result):
    """Regenerate figure ``number`` and record its per-panel summary."""

    def regenerate():
        data = figure(
            number, {"browse": browse_result, "bid": bid_result}
        )
        return data, render_figure(data)

    data, text = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(text)
    for panel in data.panels:
        for workload, series in panel.series.items():
            key = f"{panel.entity}.{workload}.mean"
            benchmark.extra_info[key] = round(float(series.values.mean()), 2)
            benchmark.extra_info[
                f"{panel.entity}.{workload}.max"
            ] = round(float(series.values.max()), 2)
    return data
