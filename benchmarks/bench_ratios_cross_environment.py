"""X2 — Section 4.2 ratio text: R3 and R4 across environments.

R4 is the paper's conclusion-level finding ("88% more CPU cycles, 21%
more RAM, and 2% more network traffic, while disk read/write is 25%
less") and is calibrated.  R3 is *derived*: its disk/network components
match the paper, while CPU/RAM expose the paper's internal
inconsistency (R2, R3, R4 cannot all hold; see DESIGN.md section 3).
"""

import pytest

from benchmarks.conftest import attach_ratio
from repro.analysis.ratios import (
    RatioReport,
    cross_environment_ratios,
    physical_cross_ratios,
)
from repro.analysis.report import render_ratio_table
from repro.experiments.paper_values import PAPER_R2, PAPER_R3, PAPER_R4


def test_r4_physical_cross_ratio(benchmark, virt_browse, bare_browse):
    measured = benchmark.pedantic(
        physical_cross_ratios,
        args=(virt_browse.traces, bare_browse.traces),
        rounds=1,
        iterations=1,
    )
    report = RatioReport(
        "R4 bare-metal physical / dom0 physical", measured, PAPER_R4
    )
    print()
    print(render_ratio_table(report))
    attach_ratio(benchmark, "R4.measured", measured)
    for _, measured_value, paper_value, relative in report.rows():
        assert 0.7 < relative < 1.3
    # Direction of every headline claim.
    assert measured.cpu_cycles > 1.0  # more CPU on bare metal
    assert measured.mem_used_mb > 1.0  # more RAM
    assert measured.net_kb > 0.95  # ~2% more network
    assert measured.disk_kb < 1.0  # less disk


def test_r3_derived_cross_ratio(benchmark, virt_browse, bare_browse):
    measured = benchmark.pedantic(
        cross_environment_ratios,
        args=(virt_browse.traces, bare_browse.traces),
        rounds=1,
        iterations=1,
    )
    report = RatioReport(
        "R3 VM aggregate / bare-metal aggregate (derived)",
        measured,
        PAPER_R3,
    )
    print()
    print(render_ratio_table(report))
    print(
        "note: R3 CPU/RAM cannot match the paper simultaneously with "
        "R2 and R4 (internal inconsistency; see DESIGN.md)."
    )
    attach_ratio(benchmark, "R3.measured", measured)
    # Disk and network are the mutually consistent components.
    assert measured.disk_kb / PAPER_R3.disk_kb == pytest.approx(1.0, rel=0.25)
    assert measured.net_kb / PAPER_R3.net_kb == pytest.approx(1.0, rel=0.10)
    # CPU lands at the R2/R4-consistent value instead of 3.47.
    consistent = PAPER_R2.cpu_cycles / PAPER_R4.cpu_cycles
    assert measured.cpu_cycles == pytest.approx(
        consistent, rel=0.25
    )
