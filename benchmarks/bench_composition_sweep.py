"""X5 — Section 4.1 setup: the five request compositions.

The paper "tested five types of request compositions: browsing only,
bidding only, 30% browsing and 70% bidding, 50%/50%, and 70%/30%" but
published only the first two.  This bench runs the full matrix on the
virtualized testbed and reports the per-composition demand vectors —
the rows the paper omitted "due to the space limitation".  Demand
should interpolate monotonically between the two pure mixes.
"""

from repro.analysis.ratios import demand_vector
from repro.experiments.runner import run_scenario_cached
from repro.experiments.scenarios import scenario

#: Shorter runs for the three blends (five virtualized runs total).
SWEEP_DURATION_S = 120.0

COMPOSITIONS = (
    ("bidding", 0.0),
    ("blend_30_70", 0.30),
    ("blend_50_50", 0.50),
    ("blend_70_30", 0.70),
    ("browsing", 1.0),
)


def test_composition_sweep(benchmark):
    def sweep():
        rows = []
        for name, browse_fraction in COMPOSITIONS:
            result = run_scenario_cached(
                scenario("virtualized", name, duration_s=SWEEP_DURATION_S)
            )
            vector = demand_vector(result.traces, "web", warmup_s=20.0)
            rows.append((name, browse_fraction, vector))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'composition':<14s} {'browse%':>8s} {'web cpu/2s':>12s} "
          f"{'web net KB/2s':>14s}")
    for name, fraction, vector in rows:
        print(
            f"{name:<14s} {fraction * 100:>7.0f}% "
            f"{vector.cpu_cycles:>12.3g} {vector.net_kb:>14.1f}"
        )
        benchmark.extra_info[f"{name}.web_cpu"] = round(vector.cpu_cycles, 0)
        benchmark.extra_info[f"{name}.web_net_kb"] = round(vector.net_kb, 1)
    # Web CPU and network demand grow with the browsing share (browsing
    # hits the heavy search pages; Figures 1 and 4 ordering).
    cpu = [vector.cpu_cycles for _, _, vector in rows]
    net = [vector.net_kb for _, _, vector in rows]
    assert cpu[-1] > cpu[0]
    assert net[-1] > net[0]
    # Blends fall between the pure mixes.
    for i in (1, 2, 3):
        assert min(cpu[0], cpu[-1]) * 0.95 <= cpu[i] <= max(cpu[0], cpu[-1]) * 1.05
