"""F7 — Figure 7: disk read+write on bare metal (log-scale axes).

Panels: Web+App PM, MySQL PM; KB per 2 s.  Shape targets: higher
variance than the virtualized series (Q4 — no dom0 write batching) and
an aggregate ~25% below dom0's physical disk traffic (R4 disk = 0.75).
"""

import numpy as np

from benchmarks._figure_bench import run_figure_bench
from repro.analysis.stats import variance_ratio


def test_figure7_disk_physical(benchmark, bare_browse, bare_bid, virt_browse):
    data = run_figure_bench(benchmark, 7, bare_browse, bare_bid)
    bare_web = data.panels[0].series["browse"]
    virt_web = virt_browse.traces.get("web", "disk_kb")
    ratio = variance_ratio(bare_web, virt_web)
    benchmark.extra_info["bare_over_virt_disk_variance"] = round(ratio, 2)
    assert ratio > 1.0  # Q4
    # Log-scale plot sanity: all samples strictly positive.
    assert np.all(bare_web.values > 0)
    assert np.all(data.panels[1].series["browse"].values > 0)
