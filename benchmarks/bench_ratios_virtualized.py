"""X1 — Section 4.1 ratio text: R1 (tier ratio) and R2 (VM/dom0).

Regenerates the two ratio vectors the paper states in prose:
"the front-end servers ... demand 6.11, 3.29, 5.71, and 55.56 times
more CPU cycles, RAM space, disk read/write, and network data than the
back-end server" and "the former is 16.84, 0.58, 0.47, and 0.98 times
more/less than the latter".
"""

from benchmarks.conftest import attach_ratio
from repro.analysis.ratios import (
    RatioReport,
    tier_ratios,
    vm_to_hypervisor_ratios,
)
from repro.analysis.report import render_ratio_table
from repro.experiments.paper_values import PAPER_R1, PAPER_R2


def test_r1_tier_ratio(benchmark, virt_browse):
    measured = benchmark.pedantic(
        tier_ratios, args=(virt_browse.traces,), rounds=1, iterations=1
    )
    report = RatioReport(
        "R1 front-end/back-end (virtualized, browsing)", measured, PAPER_R1
    )
    print()
    print(render_ratio_table(report))
    attach_ratio(benchmark, "R1.measured", measured)
    attach_ratio(benchmark, "R1.paper", PAPER_R1)
    for _, measured_value, paper_value, relative in report.rows():
        assert 0.7 < relative < 1.3


def test_r2_vm_to_dom0_ratio(benchmark, virt_browse):
    measured = benchmark.pedantic(
        vm_to_hypervisor_ratios,
        args=(virt_browse.traces,),
        rounds=1,
        iterations=1,
    )
    report = RatioReport("R2 VM aggregate / dom0", measured, PAPER_R2)
    print()
    print(render_ratio_table(report))
    attach_ratio(benchmark, "R2.measured", measured)
    attach_ratio(benchmark, "R2.paper", PAPER_R2)
    for _, measured_value, paper_value, relative in report.rows():
        assert 0.7 < relative < 1.3
