"""EXT — MapReduce characterization (paper Section 5 future work).

Runs the two canonical job shapes on the simulated cluster through the
standard monitoring pipeline and checks the phase-structured resource
profile: the sort job is shuffle-dominated, the grep job scan-dominated.
"""

from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.workload import grep_like_job, sort_like_job
from repro.monitoring.probes import ContextProbe
from repro.monitoring.sampler import TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def run_job(spec):
    sim = Simulator()
    cluster = MapReduceCluster(sim, RandomStreams(7), nodes=4)
    probes = [
        ContextProbe(name, context)
        for name, context in cluster.contexts().items()
    ]
    recorder = TraceRecorder(
        sim, probes, environment="bare-metal", workload=spec.name
    )
    job = MapReduceJob(spec)
    cluster.submit(job)
    sim.run_until(600.0)
    recorder.stop()
    cluster.shutdown()
    total_net = sum(
        recorder.traces.get(e, "net_kb").total()
        for e in recorder.traces.entities()
    )
    total_disk = sum(
        recorder.traces.get(e, "disk_kb").total()
        for e in recorder.traces.entities()
    )
    return job, total_net, total_disk


def test_mapreduce_job_shapes(benchmark):
    def run_both():
        return {
            "sort": run_job(sort_like_job(512, 16)),
            "grep": run_job(grep_like_job(512, 16)),
        }

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    for name, (job, net_kb, disk_kb) in out.items():
        print(
            f"{name:<5s} makespan={job.stats.makespan_s:7.1f}s "
            f"shuffle={job.stats.shuffle_bytes_moved / 1e6:7.0f}MB "
            f"net={net_kb / 1024:7.1f}MB disk={disk_kb / 1024:7.1f}MB"
        )
        benchmark.extra_info[f"{name}.makespan_s"] = round(
            job.stats.makespan_s, 1
        )
        benchmark.extra_info[f"{name}.shuffle_mb"] = round(
            job.stats.shuffle_bytes_moved / 1e6
        )
    sort_job, sort_net, _ = out["sort"]
    grep_job, grep_net, _ = out["grep"]
    # Sort is shuffle-heavy; grep barely shuffles.
    assert sort_job.stats.shuffle_bytes_moved > 20 * (
        grep_job.stats.shuffle_bytes_moved
    )
    assert sort_net > 10 * grep_net
    # Both jobs complete.
    assert sort_job.stats.finished_at is not None
    assert grep_job.stats.finished_at is not None
