"""F5 — Figure 5: CPU cycle demands on bare metal.

Panels: Web+App PM, MySQL PM; cycles per 2 s.  Shape targets: web ~2x
db (the physical split visible in the paper's axes), and both far below
the *virtualized* cycle readings — the accounting inflation the paper
measures (R3/R4 CPU; see the documented inconsistency in DESIGN.md).
"""

from benchmarks._figure_bench import run_figure_bench


def test_figure5_cpu_physical(benchmark, bare_browse, bare_bid, virt_browse):
    data = run_figure_bench(benchmark, 5, bare_browse, bare_bid)
    web = data.panels[0].series["browse"]
    db = data.panels[1].series["browse"]
    assert 1.4 < web.mean() / db.mean() < 3.0
    virt_web = virt_browse.traces.get("web", "cpu_cycles")
    benchmark.extra_info["virt_over_bare_web_cpu"] = round(
        float(virt_web.values.mean() / web.mean()), 2
    )
    assert virt_web.values.mean() > 5 * web.mean()
