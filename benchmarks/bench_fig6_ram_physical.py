"""F6 — Figure 6: RAM demands on bare metal.

Panels: Web+App PM, MySQL PM; used memory in MB.  Shape targets: both
servers sit in the several-hundred-MB band of the paper's axes (OS
included), and the bidding workload shows abrupt RAM jumps that happen
*earlier* than the virtualized browsing jumps (Q3).
"""

from benchmarks._figure_bench import run_figure_bench
from repro.analysis.changepoint import first_jump_time


def test_figure6_ram_physical(benchmark, bare_browse, bare_bid, virt_browse):
    data = run_figure_bench(benchmark, 6, bare_browse, bare_bid)
    web_bid = data.panels[0].series["bid"]
    bare_bid_jump = first_jump_time(web_bid, min_shift=50.0, window=8)
    virt_browse_jump = first_jump_time(
        virt_browse.traces.get("web", "mem_used_mb"),
        min_shift=50.0,
        window=8,
    )
    benchmark.extra_info["bare_bid_first_jump_s"] = bare_bid_jump
    benchmark.extra_info["virt_browse_first_jump_s"] = virt_browse_jump
    assert bare_bid_jump < virt_browse_jump  # Q3
    # Web and db PM levels are the same order of magnitude (paper axes).
    web = data.panels[0].series["browse"].mean()
    db = data.panels[1].series["browse"].mean()
    assert 0.5 < web / db < 2.5
