"""M1 — Formal workload models (the paper's promised future work).

Section 5: "We plan to design and apply formal methods to model the
workload dynamics at both resource level and transaction level."  This
bench fits the three implemented model families to the measured series
and scores their one-step predictive RMSE:

* AR(2) should win on the temporally-correlated CPU series,
* the regime model should win on the jumpy browse RAM series,
* the histogram model is the order-free baseline.
"""

import numpy as np
import pytest

from repro.analysis.models import ARModel, HistogramWorkloadModel, RegimeModel


def fit_all(series):
    values = series.values
    return {
        "AR(2)": ARModel(order=2).fit(values).one_step_rmse(values),
        "histogram": (
            HistogramWorkloadModel(bins=20).fit(values).one_step_rmse(values)
        ),
        "regime": RegimeModel().fit(values).one_step_rmse(values),
    }


def test_workload_model_comparison(benchmark, virt_browse):
    def analyze():
        cpu = virt_browse.traces.get("web", "cpu_cycles").without_warmup(20.0)
        ram = virt_browse.traces.get("web", "mem_used_mb")
        return {
            "cpu": fit_all(cpu),
            "ram": fit_all(ram),
        }

    scores = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print()
    for series_name, by_model in scores.items():
        ranking = sorted(by_model, key=by_model.get)
        row = ", ".join(f"{m}={by_model[m]:.4g}" for m in ranking)
        print(f"{series_name:<4s} one-step RMSE: {row}")
        for model, rmse in by_model.items():
            benchmark.extra_info[f"{series_name}.{model}"] = round(rmse, 4)
    # The regime model must beat the order-free baseline on the jumpy
    # RAM series (it captures the persistent level shifts).
    assert scores["ram"]["regime"] < scores["ram"]["histogram"]
    # AR(2) must be no worse than the baseline on every series.
    assert scores["cpu"]["AR(2)"] <= scores["cpu"]["histogram"] * 1.05
    assert scores["ram"]["AR(2)"] <= scores["ram"]["histogram"] * 1.05


def test_ar_model_generates_plausible_series(benchmark, virt_browse):
    def synthesize():
        cpu = virt_browse.traces.get("web", "cpu_cycles").without_warmup(20.0)
        model = ARModel(order=2).fit(cpu.values)
        synthetic = model.simulate(len(cpu), np.random.default_rng(0))
        return cpu.values, synthetic, model

    original, synthetic, model = benchmark.pedantic(
        synthesize, rounds=1, iterations=1
    )
    print(
        f"\noriginal mean={original.mean():.4g} "
        f"synthetic mean={synthetic.mean():.4g} "
        f"stationary={model.is_stationary()}"
    )
    assert model.is_stationary()
    assert synthetic.mean() == pytest.approx(
        original.mean(), rel=0.10
    )
