"""P2 — open-loop traffic subsystem throughput.

Records arrivals/s through three layers:

* pure generation — how fast each arrival process emits timestamps
  (the batched-sampling fast path, no simulator),
* end-to-end open-loop — a high-rate Poisson stream through the full
  virtualized deployment with monitoring attached,
* the flash-crowd scenario — the overload configuration, with the
  shed fraction recorded so the BENCH trajectory tracks both the
  intensity and the shedding behaviour.

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink horizons so the file
runs in a few seconds (the CI smoke configuration).
"""

import os
import time

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import flash_crowd_scenario, open_loop_scenario
from repro.sim.random import RandomStreams
from repro.traffic.arrivals import (
    BModelProcess,
    MMPPProcess,
    PoissonProcess,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

#: Arrivals drawn per generator microbenchmark.
GENERATOR_ARRIVALS = 100_000 if QUICK else 1_000_000
#: End-to-end horizon (simulated seconds) and offered rate.
HORIZON_S = 30.0 if QUICK else 120.0
OFFERED_RPS = 1_000.0 if QUICK else 4_000.0


def _generator(kind: str):
    rng = RandomStreams(seed=17).stream(f"bench.{kind}")
    if kind == "poisson":
        return PoissonProcess(1000.0, rng)
    if kind == "mmpp":
        return MMPPProcess((500.0, 2000.0), (4.0, 1.0), rng)
    return BModelProcess(1000.0, rng, bias=0.75)


def test_generator_throughput(benchmark):
    """Pure arrival generation: timestamps/s per process family."""

    def run():
        start = time.perf_counter()
        rates = {}
        for kind in ("poisson", "mmpp", "bmodel"):
            process = _generator(kind)
            t0 = time.perf_counter()
            for _ in range(GENERATOR_ARRIVALS):
                process.next_arrival()
            rates[kind] = GENERATOR_ARRIVALS / (time.perf_counter() - t0)
        return rates, time.perf_counter() - start

    rates, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    for kind, rate in rates.items():
        benchmark.extra_info[f"{kind}_arrivals_per_s"] = round(rate)
    print(
        "\ngenerator throughput: "
        + ", ".join(f"{k}={v:,.0f}/s" for k, v in rates.items())
    )
    # The batched fast path should clear 100k arrivals/s with margin.
    assert min(rates.values()) > 100_000


def test_open_loop_end_to_end_throughput(benchmark):
    """High-rate Poisson stream through the full deployment."""
    spec = open_loop_scenario(
        "virtualized",
        "browsing",
        rate_rps=OFFERED_RPS,
        duration_s=HORIZON_S,
        seed=7,
    )
    # Warm the calibration cache so the measurement covers the run.
    run_scenario(
        open_loop_scenario(
            "virtualized", "browsing", rate_rps=50.0, duration_s=4.0
        )
    )

    def run():
        start = time.perf_counter()
        result = run_scenario(spec)
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.traffic_report
    events = result.deployment.sim.events_fired
    benchmark.extra_info["offered_arrivals"] = report["offered"]
    benchmark.extra_info["arrivals_per_wall_s"] = round(
        report["offered"] / elapsed
    )
    benchmark.extra_info["events_per_wall_s"] = round(events / elapsed)
    benchmark.extra_info["sim_arrival_rate_rps"] = round(
        report["offered"] / HORIZON_S
    )
    print(
        f"\n{report['offered']} arrivals ({events} events) in "
        f"{elapsed:.3f}s -> {report['offered'] / elapsed:,.0f} "
        f"arrivals/s wall, {events / elapsed:,.0f} events/s"
    )
    assert report["offered"] / HORIZON_S > 0.9 * OFFERED_RPS


def test_flash_crowd_scenario_throughput(benchmark):
    """The acceptance scenario: surge intensity plus shedding report."""
    spec = flash_crowd_scenario(
        "virtualized",
        "browsing",
        duration_s=HORIZON_S,
        session_budget=2000 if not QUICK else 400,
        seed=7,
    )

    def run():
        start = time.perf_counter()
        result = run_scenario(spec)
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.traffic_report
    closed_rate = spec.mix.clients / spec.mix.think_time_s
    offered_request_rate = (
        report["offered"] * report["requests_per_session"] / HORIZON_S
    )
    benchmark.extra_info["offered_request_rate_rps"] = round(
        offered_request_rate
    )
    benchmark.extra_info["vs_closed_loop"] = round(
        offered_request_rate / closed_rate, 2
    )
    benchmark.extra_info["shed_fraction"] = round(report["shed_fraction"], 4)
    benchmark.extra_info["trace_sha256"] = result.arrival_trace.sha256()[:16]
    print(
        f"\nflash crowd: {offered_request_rate:,.0f} req/s offered "
        f"({offered_request_rate / closed_rate:.1f}x closed loop), "
        f"shed {report['shed_fraction']:.1%}, wall {elapsed:.3f}s"
    )
    assert offered_request_rate >= 5.0 * closed_rate
    assert report["shed"] > 0
