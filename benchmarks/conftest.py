"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The
underlying experiment runs are shared process-wide through the runner's
memoizing cache, mirroring how the paper extracts all figures from one
run matrix.  Benchmarks use ``benchmark.pedantic(..., rounds=1)``: the
quantity of interest is the regenerated artifact (printed and attached
to ``extra_info``), not micro-timing stability.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_scenario_cached
from repro.experiments.scenarios import default_duration_s, scenario


def core_run(environment: str, composition: str, duration_s: float = None):
    return run_scenario_cached(
        scenario(
            environment,
            composition,
            duration_s=duration_s or default_duration_s(),
        )
    )


@pytest.fixture(scope="session")
def virt_browse():
    return core_run("virtualized", "browsing")


@pytest.fixture(scope="session")
def virt_bid():
    return core_run("virtualized", "bidding")


@pytest.fixture(scope="session")
def bare_browse():
    return core_run("bare-metal", "browsing")


@pytest.fixture(scope="session")
def bare_bid():
    return core_run("bare-metal", "bidding")


def attach_ratio(benchmark, label: str, vector) -> None:
    """Record a ratio vector in the benchmark's extra_info."""
    for resource, value in vector.as_dict().items():
        benchmark.extra_info[f"{label}.{resource}"] = round(value, 4)
