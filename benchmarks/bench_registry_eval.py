"""P2 — bulk metric evaluation and telemetry container throughput.

Isolates the monitoring layer from the DES: how many of the paper's
518 metrics can be derived per second from one interval's counter
deltas (the compiled registry path), and how fast the storage
primitives are — ``TimeSeries`` appends / view reads and
``ColumnarRows`` row appends.  Rates land in ``extra_info`` for the
BENCH trajectory.

Quick mode: ``REPRO_BENCH_QUICK=1`` shrinks the iteration counts.
"""

import os
import time

import numpy as np

from repro.monitoring.columnar import ColumnarRows
from repro.monitoring.metric import MetricSource, SampleInputs
from repro.monitoring.registry import build_registry
from repro.monitoring.timeseries import TimeSeries

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

EVAL_ROUNDS = 20 if QUICK else 400
APPENDS = 5_000 if QUICK else 100_000
VIEW_READS = 2_000 if QUICK else 50_000


def _inputs(rng) -> SampleInputs:
    """One representative virtualized-VM sampling interval."""
    return SampleInputs(
        interval_s=2.0,
        cpu_cycles=2.1e9,
        mem_used_bytes=900e6,
        mem_total_bytes=2048e6,
        disk_read_bytes=1.2e6,
        disk_write_bytes=2.5e6,
        net_rx_bytes=3.1e6,
        net_tx_bytes=9.8e6,
        requests=280.0,
        capacity_cycles=2.8e9 * 2 * 2.0,
        rng=rng,
        virtualized=True,
    )


def test_registry_bulk_evaluation(benchmark):
    """Compiled evaluate_all over the VM sysstat + perf catalogues."""
    registry = build_registry()
    rng = np.random.default_rng(123)

    def run():
        inputs = _inputs(rng)
        start = time.perf_counter()
        n = 0
        for _ in range(EVAL_ROUNDS):
            n += len(registry.evaluate_all(inputs, MetricSource.SYSSTAT_VM))
            n += len(registry.evaluate_all(inputs, MetricSource.PERF))
        return n, time.perf_counter() - start

    n_metrics, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["metrics_evaluated"] = n_metrics
    benchmark.extra_info["metrics_per_s"] = round(n_metrics / elapsed)
    print(f"\nregistry eval: {n_metrics / elapsed:,.0f} metrics/s")
    assert n_metrics == EVAL_ROUNDS * (182 + 154)


def test_timeseries_append_and_views(benchmark):
    """Amortized buffer appends plus O(1) cached-view reads."""

    def run():
        start = time.perf_counter()
        series = TimeSeries("bench")
        for i in range(APPENDS):
            series.append(2.0 * i, float(i))
        append_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        total = 0.0
        for _ in range(VIEW_READS):
            total += float(series.values[-1]) + float(series.times[0])
        view_elapsed = time.perf_counter() - start
        return append_elapsed, view_elapsed, total

    append_elapsed, view_elapsed, _ = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    benchmark.extra_info["appends_per_s"] = round(APPENDS / append_elapsed)
    benchmark.extra_info["view_reads_per_s"] = round(VIEW_READS / view_elapsed)
    print(
        f"\ntimeseries: {APPENDS / append_elapsed:,.0f} appends/s, "
        f"{VIEW_READS / view_elapsed:,.0f} view reads/s (n={APPENDS})"
    )


def test_columnar_rows_append(benchmark):
    """Wide-row storage: one 1008-column sample per simulated tick."""
    columns = ["time_s"] + [f"m{i}" for i in range(1008)]
    rows = 200 if QUICK else 2_000
    payload = [float(i) for i in range(len(columns))]

    def run():
        table = ColumnarRows(columns)
        start = time.perf_counter()
        for i in range(rows):
            payload[0] = float(i)
            table.append_row(payload)
        return table, time.perf_counter() - start

    table, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["cells_per_s"] = round(
        rows * len(columns) / elapsed
    )
    print(
        f"\ncolumnar: {rows} x {len(columns)} cells in {elapsed:.3f}s "
        f"-> {rows * len(columns) / elapsed:,.0f} cells/s"
    )
    assert len(table) == rows
    assert float(table.column("m0")[0]) == 1.0
