"""P4 — elastic-controller overhead on the simulation hot path.

Measures what the control loop costs, not what it achieves:

* **decision cost per policy** — microbenchmark of ``policy.update``
  on synthetic signal windows (threshold / pid / predictive, the
  latter paying for its AR fit every window);
* **observe/record epoch cost** — the full tick (signal tap + series
  appends) isolated by running the *same* static-controller scenario
  twice, once at the 2 s epoch and once with an epoch beyond the
  horizon.  A static controller never actuates, so the two runs
  simulate identical physics and the wall-clock difference is pure
  control-loop overhead — the honest number for PERFORMANCE.md
  (differencing controlled-vs-uncontrolled runs would instead measure
  the vcpu-contention model refinement that controller-bearing
  testbeds enable).

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink horizons so the file
runs in a few seconds (the CI smoke configuration).
"""

import os
import time

from dataclasses import replace

from repro.control.policies import build_policy
from repro.control.signals import ControlSignals
from repro.control.spec import ControllerSpec
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import autoscaled_flash_crowd_scenario

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

#: Policy-update microbenchmark iterations.
POLICY_UPDATES = 2_000 if QUICK else 20_000
#: Scenario for the epoch-cost isolation (the elasticity stress run;
#: full mode is the million-event-class configuration).
DURATION_S = 60.0 if QUICK else 240.0
CLIENTS = 200 if QUICK else 1000


def _synthetic_signals(i: int) -> ControlSignals:
    """A deterministic, mildly varying signal stream (ramp + plateau)."""
    offered = 40 + (i % 50) * 4
    return ControlSignals(
        time_s=2.0 * i,
        window_s=2.0,
        completed=offered,
        p95_s=0.004 + 0.0001 * (i % 30),
        mean_s=0.002,
        offered=offered,
        shed=offered // 20 if i % 7 == 0 else 0,
        shed_fraction=0.05 if i % 7 == 0 else 0.0,
        in_flight=500,
        session_budget=1000,
        domains={},
    )


def test_policy_decision_cost(benchmark):
    """Microseconds per ``policy.update`` call, per policy family."""

    def run():
        costs = {}
        for kind in ("threshold", "pid", "predictive"):
            policy = build_policy(ControllerSpec(kind=kind))
            start = time.perf_counter()
            for i in range(POLICY_UPDATES):
                policy.update(_synthetic_signals(i))
            elapsed = time.perf_counter() - start
            costs[kind] = elapsed / POLICY_UPDATES
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    for kind, cost in costs.items():
        benchmark.extra_info[f"{kind}_us_per_update"] = round(cost * 1e6, 1)
    print(
        "\npolicy decision cost: "
        + ", ".join(f"{k}={v * 1e6:,.0f}us" for k, v in costs.items())
    )
    # Even the AR-fitting predictive policy must stay far below the
    # 2 s epoch it runs inside.
    assert max(costs.values()) < 0.05


def test_control_epoch_cost(benchmark):
    """Observe/record cost per 2 s epoch, isolated on identical physics."""

    def run():
        base_spec = autoscaled_flash_crowd_scenario(
            duration_s=DURATION_S, clients=CLIENTS, controller="static"
        )
        # Same scenario, same actions (none), epoch beyond the horizon:
        # zero ticks fire, physics identical.
        no_tick = replace(
            base_spec,
            controller=replace(
                base_spec.controller, interval_s=10.0 * DURATION_S
            ),
        )
        start = time.perf_counter()
        run_scenario(no_tick)
        wall_no_tick = time.perf_counter() - start
        start = time.perf_counter()
        run_scenario(base_spec)
        wall_ticking = time.perf_counter() - start
        ticks = int(DURATION_S / base_spec.controller.interval_s)
        return wall_no_tick, wall_ticking, ticks

    wall_no_tick, wall_ticking, ticks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    per_epoch = max(0.0, wall_ticking - wall_no_tick) / ticks
    overhead = wall_ticking / wall_no_tick - 1.0
    benchmark.extra_info["us_per_epoch"] = round(per_epoch * 1e6)
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    print(
        f"\ncontrol epoch cost: {per_epoch * 1e6:,.0f}us/epoch over "
        f"{ticks} epochs (run {wall_no_tick:.2f}s -> {wall_ticking:.2f}s, "
        f"{overhead:+.1%})"
    )
    # The observe/record tick is ~a dozen numpy calls; anything near
    # a millisecond per epoch signals a hot-path regression.  The
    # wall-clock difference of two short runs is noisy, so the bound
    # is generous.
    assert per_epoch < 0.005