"""X4 — Sections 4.1/4.2: RAM step jumps and disk variance.

Covers three textual findings at once:

* Q2 — virtualized: browsing RAM jumps, bidding RAM smooth (Figure 2),
* Q3 — bare-metal bidding jumps arrive *earlier* than the virtualized
  browsing jumps (Figure 6 discussion),
* Q4 — "disk read and write workload shows higher variance in the
  non-virtualized system than the virtualized one" (Figure 7).
"""

from repro.analysis.changepoint import count_upward_jumps, first_jump_time
from repro.analysis.stats import variance_ratio

MIN_SHIFT_MB = 50.0
WINDOW = 8


def test_ram_jump_pattern(benchmark, virt_browse, virt_bid, bare_bid):
    def analyze():
        return {
            "virt_browse_jumps": count_upward_jumps(
                virt_browse.traces.get("web", "mem_used_mb"),
                MIN_SHIFT_MB,
                WINDOW,
            ),
            "virt_bid_jumps": count_upward_jumps(
                virt_bid.traces.get("web", "mem_used_mb"),
                MIN_SHIFT_MB,
                WINDOW,
            ),
            "bare_bid_first_jump_s": first_jump_time(
                bare_bid.traces.get("web", "mem_used_mb"),
                MIN_SHIFT_MB,
                WINDOW,
            ),
            "virt_browse_first_jump_s": first_jump_time(
                virt_browse.traces.get("web", "mem_used_mb"),
                MIN_SHIFT_MB,
                WINDOW,
            ),
        }

    out = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print()
    for key, value in out.items():
        print(f"{key}: {value}")
        benchmark.extra_info[key] = value
    assert out["virt_browse_jumps"] >= 1  # Q2
    assert out["virt_bid_jumps"] == 0  # Q2
    assert (
        out["bare_bid_first_jump_s"] < out["virt_browse_first_jump_s"]
    )  # Q3


def test_disk_variance_comparison(benchmark, virt_browse, bare_browse):
    def analyze():
        bare = bare_browse.traces.get("web", "disk_kb").without_warmup(30.0)
        virt = virt_browse.traces.get("web", "disk_kb").without_warmup(30.0)
        return variance_ratio(bare, virt)

    ratio = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print(f"\nbare/virt web disk variance ratio: {ratio:.2f}")
    benchmark.extra_info["variance_ratio"] = round(ratio, 3)
    assert ratio > 1.0  # Q4
