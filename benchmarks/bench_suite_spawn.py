"""P2 — suite worker spawn and warm-up overhead.

Multi-worker sweeps pay a fixed cost per spawned worker: interpreter
start, ``repro`` import, environment calibration and the transition
matrices' stationary-distribution power iterations.  Before the warm-up
work landed, each worker re-derived all of it lazily inside its first
run (~1.5 s per worker serialized into the first wave of results);
now ``warm_worker`` runs it in the pool initializer and the
calibration / canonical-matrix caches keep it amortized across every
run a worker executes.

The bench measures the same 4-cell grid inline (``workers=1``, warm
caches) and on a 2-worker spawn pool, and records both wall clocks
plus the per-worker overhead estimate into ``extra_info`` so the BENCH
trajectory catches spawn-cost regressions.

Quick mode: ``REPRO_BENCH_QUICK=1`` shrinks the horizon (CI smoke).
"""

import os
import time

from repro.experiments.suite import paper_matrix_suite, run_suite, warm_worker

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

HORIZON_S = 20.0 if QUICK else 60.0


def test_suite_spawn_overhead(benchmark):
    runs = paper_matrix_suite(duration_s=HORIZON_S, seed=5)

    def sweep():
        # Inline first: warms this process's caches so the inline wall
        # clock is pure run time, the yardstick the pooled wall clock
        # is compared against.
        t0 = time.perf_counter()
        inline = run_suite(runs, workers=1)
        inline_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        pooled = run_suite(runs, workers=2)
        pooled_s = time.perf_counter() - t0
        return inline, inline_s, pooled, pooled_s

    inline, inline_s, pooled, pooled_s = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert set(inline.summaries) == set(pooled.summaries)
    # Traces are worker-count independent; summaries must agree exactly
    # once their (legitimately different) wall-clock fields are dropped.
    def simulated(summary):
        return {
            k: v
            for k, v in summary.to_dict().items()
            if "wall" not in k and not k.endswith("_s_wall")
        }

    for run_id, summary in inline.summaries.items():
        assert simulated(summary) == simulated(pooled.summaries[run_id])
    # Perfect 2-worker scaling would halve the wall clock; everything
    # above inline/2 is spawn + warm-up + IPC overhead.
    overhead_s = pooled_s - inline_s / 2
    benchmark.extra_info["runs"] = len(runs)
    benchmark.extra_info["inline_wall_s"] = round(inline_s, 3)
    benchmark.extra_info["pooled_wall_s"] = round(pooled_s, 3)
    benchmark.extra_info["spawn_overhead_s"] = round(overhead_s, 3)
    benchmark.extra_info["per_worker_overhead_s"] = round(overhead_s / 2, 3)
    print(
        f"\n{len(runs)} runs: inline {inline_s:.2f}s, 2-worker pool "
        f"{pooled_s:.2f}s -> spawn/warm-up overhead {overhead_s:.2f}s "
        f"({overhead_s / 2:.2f}s per worker)"
    )


def test_warm_worker_is_idempotent_and_seeds_caches(benchmark):
    """``warm_worker`` draws no randomness and is safe to call twice."""

    def warm():
        t0 = time.perf_counter()
        warm_worker()
        first_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_worker()
        second_s = time.perf_counter() - t0
        return first_s, second_s

    first_s, second_s = benchmark.pedantic(warm, rounds=1, iterations=1)
    benchmark.extra_info["first_call_s"] = round(first_s, 4)
    benchmark.extra_info["second_call_s"] = round(second_s, 4)
    # Second call must hit the caches (no re-calibration).
    assert second_s <= first_s
    print(
        f"\nwarm_worker: {first_s * 1000:.1f}ms cold, "
        f"{second_s * 1000:.1f}ms warm"
    )
