"""F2 — Figure 2: RAM demands in the virtualized environment.

Panels: Web+App VM, MySQL VM, dom0; used memory in MB.  Shape targets:
browsing shows step jumps while bidding stays smooth (Q2), dom0 holds
more memory than both VMs combined (R2 RAM = 0.58).
"""

from benchmarks._figure_bench import run_figure_bench
from repro.analysis.changepoint import count_upward_jumps


def test_figure2_ram_virtualized(benchmark, virt_browse, virt_bid):
    data = run_figure_bench(benchmark, 2, virt_browse, virt_bid)
    web = data.panels[0].series
    dom0 = data.panels[2].series
    browse_jumps = count_upward_jumps(web["browse"], min_shift=50.0, window=8)
    bid_jumps = count_upward_jumps(web["bid"], min_shift=50.0, window=8)
    benchmark.extra_info["web.browse.jumps"] = browse_jumps
    benchmark.extra_info["web.bid.jumps"] = bid_jumps
    assert browse_jumps >= 1  # Q2: browsing jumps
    assert bid_jumps == 0  # Q2: bidding smooth
    vm_total = web["browse"].mean() + data.panels[1].series["browse"].mean()
    assert dom0["browse"].mean() > vm_total  # R2 RAM < 1
