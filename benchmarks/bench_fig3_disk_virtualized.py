"""F3 — Figure 3: disk read+write in the virtualized environment.

Panels: Web+App VM, MySQL VM, dom0; KB per 2 s.  Shape targets: web
tier ~5.7x the db tier (R1), dom0 roughly double the VM aggregate
(R2 disk = 0.47 — journaling/metadata amplification in the backend),
disk spikes co-located with the browse RAM jumps.
"""

from benchmarks._figure_bench import run_figure_bench


def test_figure3_disk_virtualized(benchmark, virt_browse, virt_bid):
    data = run_figure_bench(benchmark, 3, virt_browse, virt_bid)
    web = data.panels[0].series["browse"]
    db = data.panels[1].series["browse"]
    dom0 = data.panels[2].series["browse"]
    assert web.mean() > 3 * db.mean()
    vm_aggregate = web.mean() + db.mean()
    assert 1.5 * vm_aggregate < dom0.mean() < 3.0 * vm_aggregate
    # Spikes exist: max well above the mean (the paper's Figure 3 shape).
    assert web.max() > 1.5 * web.mean()
