"""P5 — event throughput vs. fleet size (placement-layer scaling).

A multi-server testbed multiplies the per-server background machinery:
every extra `PhysicalServer` brings its own credit-scheduler epoch
process, dom0 housekeeping, I/O backends and dom0 probe.  This bench
answers two questions:

* **events/s vs. server count** — the same consolidated workload
  (web pair + one batch tenant per extra server) run on fleets of
  1/2/4/8 servers: throughput must degrade sub-linearly (the
  per-server fixed cost is bounded, so a bigger fleet hosting
  proportionally more tenants should not collapse).  Each fleet also
  reports its placement *load imbalance* — max/mean committed VCPUs
  across servers — so a policy regression that piles tenants onto one
  server shows up in the bench output;
* **migration cost in wall-clock** — the `migration_rebalance`
  scenario vs. its watch-only baseline on the same seed: the ~3.5 GiB
  chunked pre-copy adds thousands of NIC events; its wall-clock
  surcharge must stay a small multiple of the baseline.

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink horizons so the file
runs in a few seconds (the CI smoke configuration).
"""

import os
import time

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    fleet_consolidation_scenario,
    migration_rebalance_scenario,
)
from repro.workloads.base import TenantSpec

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

DURATION_S = 40.0 if QUICK else 120.0
CLIENTS = 150 if QUICK else 400
SERVER_COUNTS = (1, 2, 4, 8)
#: The rebalance scenario needs enough load to cross the fleet
#: controller's hot-signal thresholds *and* enough horizon for the
#: ~60 s pre-copy to finish, so the migration bench keeps the PR-3
#: interference-study scale even in quick mode.
MIGRATION_DURATION_S = 90.0 if QUICK else 120.0
MIGRATION_CLIENTS = 400


def _fleet_spec(servers: int):
    """The scaling workload: one batch tenant per server beyond the web's."""
    from dataclasses import replace

    tenants = tuple(
        TenantSpec(name=f"batch{i}" if i else "batch")
        for i in range(max(1, servers - 1))
    )
    base = fleet_consolidation_scenario(
        duration_s=DURATION_S,
        clients=CLIENTS,
        servers=servers,
        placement="priority" if servers > 1 else "firstfit",
    )
    return replace(base, name=f"fleet_scale_s{servers}", tenants=tenants)


def _load_imbalance(spec) -> float:
    """Max/mean committed VCPUs across servers of the built placement
    (1.0 = perfectly even; only placed servers count toward the mean)."""
    from repro.experiments.runner import prepare_run

    prepared = prepare_run(spec)
    engine = prepared.testbed.engine
    if engine is None:
        return 1.0
    committed = [load.committed_vcpus for load in engine.server_loads()]
    mean = sum(committed) / len(committed)
    return max(committed) / mean if mean else 1.0


def test_events_per_second_vs_server_count(benchmark):
    """Simulated-request throughput of the harness across fleet sizes."""

    def run():
        rates = {}
        imbalance = {}
        for servers in SERVER_COUNTS:
            spec = _fleet_spec(servers)
            imbalance[servers] = _load_imbalance(spec)
            start = time.perf_counter()
            result = run_scenario(spec)
            wall = time.perf_counter() - start
            rates[servers] = result.requests_completed / wall
        return rates, imbalance

    rates, imbalance = benchmark.pedantic(run, rounds=1, iterations=1)
    for servers, rate in rates.items():
        benchmark.extra_info[f"req_per_s_s{servers}"] = round(rate)
        benchmark.extra_info[f"imbalance_s{servers}"] = round(
            imbalance[servers], 3
        )
    print(
        "\nplacement scale: "
        + ", ".join(
            f"{servers} server(s)={rate:,.0f} req/s "
            f"(imbalance {imbalance[servers]:.2f}x)"
            for servers, rate in rates.items()
        )
    )
    # Per-server fixed costs must stay bounded: an 8-server fleet
    # hosting the same web workload plus 7 tenants may be slower than
    # one server, but not by an order of magnitude.
    assert rates[SERVER_COUNTS[-1]] > rates[1] / 10.0
    # The priority policy spreads batch tenants: no server may carry
    # more than 3x the mean committed VCPUs on any fleet size.
    for servers, ratio in imbalance.items():
        assert ratio <= 3.0, (
            f"{servers}-server placement is lopsided ({ratio:.2f}x)"
        )


def test_migration_wall_clock_surcharge(benchmark):
    """Wall-clock cost of one chunked live migration vs. watch-only."""

    def run():
        start = time.perf_counter()
        watch = run_scenario(
            migration_rebalance_scenario(
                duration_s=MIGRATION_DURATION_S,
                clients=MIGRATION_CLIENTS,
                fleet=False,
            )
        )
        wall_watch = time.perf_counter() - start
        start = time.perf_counter()
        moved = run_scenario(
            migration_rebalance_scenario(
                duration_s=MIGRATION_DURATION_S,
                clients=MIGRATION_CLIENTS,
                fleet=True,
            )
        )
        wall_moved = time.perf_counter() - start
        migrations = moved.control_reports["fleet"]["migrations"]
        return wall_watch, wall_moved, migrations

    wall_watch, wall_moved, migrations = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    surcharge = wall_moved / wall_watch - 1.0
    benchmark.extra_info["migrations"] = len(migrations)
    benchmark.extra_info["surcharge_fraction"] = round(surcharge, 3)
    print(
        f"\nmigration surcharge: {wall_watch:.2f}s -> {wall_moved:.2f}s "
        f"({surcharge:+.1%}) for {len(migrations)} migration(s)"
    )
    assert migrations, "the bench scenario must actually migrate"
    # A few thousand chunk events on a multi-hundred-thousand-event
    # run: the surcharge must stay well below one extra baseline run.
    assert wall_moved < 3.0 * wall_watch
