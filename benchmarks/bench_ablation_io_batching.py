"""A2 — Ablation: dom0 write batching (the split-driver I/O mechanism).

DESIGN.md calls out dom0's backend batching as a load-bearing design
choice behind the environments' different disk behaviour: the backend
coalesces hundreds of small guest writes into one large physical
request per flush interval, which is why the virtualized physical disk
stream is made of few, large, smooth operations while bare metal sees
the raw per-request pattern (the paper's Q4 contrast).

This ablation disables batching (``OverheadModel.batch_writes=False``)
and measures the physical request stream: the request count must
explode and the mean request size collapse, while total bytes are
conserved.
"""

import dataclasses

from repro.experiments.calibration import calibrate_virtualized
from repro.rubis.client import ClientPopulation
from repro.rubis.deployment import VirtualizedDeployment
from repro.rubis.transitions import bidding_matrix, browsing_matrix
from repro.rubis.workload import SessionType, WorkloadMix
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

DURATION_S = 120.0


def run_with_batching(batch_writes: bool):
    calibrated = calibrate_virtualized()
    overhead = dataclasses.replace(
        calibrated.overhead, batch_writes=batch_writes
    )
    sim = Simulator()
    streams = RandomStreams(seed=23)
    deployment = VirtualizedDeployment(
        sim,
        streams,
        config=calibrated.deployment_config,
        overhead=overhead,
    )
    mix = WorkloadMix("browsing", browse_fraction=1.0, clients=1000)
    population = ClientPopulation(
        sim,
        mix,
        deployment.send,
        streams.stream("clients"),
        {
            SessionType.BROWSE: browsing_matrix(),
            SessionType.BID: bidding_matrix(),
        },
    )
    deployment.population = population
    population.start()
    sim.run_until(DURATION_S)
    deployment.shutdown()
    disk = deployment.server.disk
    total_bytes = disk.bytes_read("dom0") + disk.bytes_written("dom0")
    return {
        "requests": disk.requests_served,
        "total_bytes": total_bytes,
        "bytes_per_request": total_bytes / max(disk.requests_served, 1),
    }


def test_io_batching_ablation(benchmark):
    def ablate():
        return {
            "batched": run_with_batching(True),
            "unbatched": run_with_batching(False),
        }

    out = benchmark.pedantic(ablate, rounds=1, iterations=1)
    print()
    for label, row in out.items():
        print(
            f"{label:<10s} physical requests={row['requests']:>7d} "
            f"bytes/request={row['bytes_per_request']:>10.0f} "
            f"total MB={row['total_bytes'] / 1e6:>7.1f}"
        )
        benchmark.extra_info[f"{label}.requests"] = row["requests"]
        benchmark.extra_info[f"{label}.bytes_per_request"] = round(
            row["bytes_per_request"]
        )
    batched, unbatched = out["batched"], out["unbatched"]
    # Mechanism: batching coalesces many guest writes per flush.
    assert unbatched["requests"] > 10 * batched["requests"]
    assert batched["bytes_per_request"] > 10 * unbatched["bytes_per_request"]
    # ...while conserving the bytes moved.
    assert unbatched["total_bytes"] < 1.10 * batched["total_bytes"]
    assert unbatched["total_bytes"] > 0.90 * batched["total_bytes"]
