"""P6 — fault-scheduler overhead on the simulation hot path.

Measures what fault *machinery* costs, not what faults do:

* **schedule resolution cost** — microbenchmark of
  ``FaultSchedule.resolve`` (pure SHA-256 arithmetic, no RNG);
* **idle scheduler cost** — the full fault-controller lifecycle
  (per-tick sampling, event bookkeeping) isolated by running the same
  scenario twice: fault-free, and with a crash scheduled *beyond the
  horizon*.  The injection never fires, so the two runs simulate
  identical physics and the wall-clock difference is pure scheduler
  overhead — the number behind PERFORMANCE.md's "<= 2% when no faults
  fire" invariant.  (A run with no ``faults`` field at all constructs
  no controller and is bit-identical to the pre-fault baseline; the
  trace-fingerprint tests pin that stronger invariant.)

Quick mode: set ``REPRO_BENCH_QUICK=1`` to shrink horizons so the file
runs in a few seconds (the CI smoke configuration).
"""

import os
import time

from dataclasses import replace

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import consolidated_scenario
from repro.faults.spec import FaultSchedule, FaultSpec

QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip() in ("1", "true", "yes")

#: Schedule-resolution microbenchmark iterations.
RESOLVES = 2_000 if QUICK else 20_000
#: Scenario for the idle-scheduler isolation.
DURATION_S = 60.0 if QUICK else 240.0
CLIENTS = 200 if QUICK else 400


def test_schedule_resolution_cost(benchmark):
    """Microseconds per ``FaultSchedule.resolve`` (SHA-256 jitter)."""
    schedule = FaultSchedule(
        tuple(
            FaultSpec(
                kind=kind, at_s=30.0 + 10 * i, duration_s=20.0, jitter_s=5.0
            )
            for i, kind in enumerate(
                ("crash", "cap_theft", "dom0_saturate", "bot_flood")
            )
        )
    )

    def run():
        start = time.perf_counter()
        for seed in range(RESOLVES):
            schedule.resolve(seed)
        return (time.perf_counter() - start) / RESOLVES

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["us_per_resolve"] = round(cost * 1e6, 1)
    print(f"\nschedule resolution: {cost * 1e6:,.1f}us per 4-fault resolve")
    # Resolution happens once per run; it just has to be negligible.
    assert cost < 0.005


def test_idle_fault_scheduler_cost(benchmark):
    """Wall-clock cost of an armed-but-idle fault scheduler."""

    def run():
        base = consolidated_scenario(
            "browsing", duration_s=DURATION_S, clients=CLIENTS
        )
        # The crash is scheduled 10 horizons out: the controller ticks,
        # the injection never fires, physics stay identical.
        armed = replace(
            base,
            faults=FaultSchedule(
                (FaultSpec(kind="crash", at_s=10.0 * DURATION_S),)
            ),
        )
        start = time.perf_counter()
        run_scenario(base)
        wall_clean = time.perf_counter() - start
        start = time.perf_counter()
        run_scenario(armed)
        wall_armed = time.perf_counter() - start
        return wall_clean, wall_armed

    wall_clean, wall_armed = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = wall_armed / wall_clean - 1.0
    benchmark.extra_info["overhead_fraction"] = round(overhead, 4)
    benchmark.extra_info["clean_s"] = round(wall_clean, 3)
    benchmark.extra_info["armed_s"] = round(wall_armed, 3)
    print(
        f"\nidle fault scheduler: {wall_clean:.2f}s clean -> "
        f"{wall_armed:.2f}s armed ({overhead:+.1%})"
    )
    # The documented invariant is <= 2%; the wall-clock difference of
    # two short runs is noisy (CI machines especially), so the hard
    # bound is generous — it exists to catch a scheduler accidentally
    # landing on the per-request hot path, not to referee 1% noise.
    assert overhead < 0.15
