"""Consolidation interference — co-resident web + batch on one hypervisor.

Section 5 of the paper names MapReduce as the next workload to
characterize on virtualized servers; the consolidation literature asks
what happens when it shares the box with an interactive tenant.  This
example runs the same browsing workload twice — alone, then next to a
sort-style MapReduce tenant on the *same* hypervisor — and reports the
two interference channels the multi-tenant testbed models:

* CPU: batch map/reduce tasks raise the batch domain's demand, and the
  credit scheduler's overcommit shows up as web-VM ready (steal) time;
* I/O: batch reads/writes and shuffle traffic flow through the shared
  dom0 split drivers, queueing behind (and ahead of) the web tiers.

Run:  PYTHONPATH=src python examples/consolidated_interference.py
Set REPRO_EXAMPLE_QUICK=1 for a CI-friendly horizon.
"""

import os

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import consolidated_scenario, scenario
from repro.workloads import TenantSpec

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") == "1"
DURATION_S = 90.0 if QUICK else 240.0
CLIENTS = 400 if QUICK else 1000
SEED = 13

TENANT = TenantSpec(arrival_rate_per_s=0.15, input_mb=384.0)


def main() -> None:
    base_spec = scenario(
        "virtualized", "browsing",
        duration_s=DURATION_S, seed=SEED, clients=CLIENTS,
    )
    print(f"running web-only baseline ({base_spec.name}) ...")
    baseline = run_scenario(base_spec)

    cons_spec = consolidated_scenario(
        "browsing",
        duration_s=DURATION_S, seed=SEED, clients=CLIENTS,
        tenants=(TENANT,),
    )
    print(f"running consolidated testbed ({cons_spec.name}) ...")
    consolidated = run_scenario(cons_spec)

    batch = consolidated.tenant_reports["batch"]
    ready = consolidated.interference["cpu_ready_s"]
    print()
    print(f"{'':<26s} {'web-only':>12s} {'consolidated':>12s}")
    print(
        f"{'web p95 latency (ms)':<26s} "
        f"{baseline.p95_response_time_s * 1e3:>12.1f} "
        f"{consolidated.p95_response_time_s * 1e3:>12.1f}"
    )
    print(
        f"{'web-vm CPU ready (s)':<26s} "
        f"{baseline.cpu_ready_seconds('web-vm'):>12.2f} "
        f"{consolidated.cpu_ready_seconds('web-vm'):>12.2f}"
    )
    print(
        f"{'dom0 disk traffic (KB)':<26s} "
        f"{baseline.traces.get('dom0', 'disk_kb').total():>12.0f} "
        f"{consolidated.traces.get('dom0', 'disk_kb').total():>12.0f}"
    )
    print()
    print(
        f"batch tenant: {batch['jobs_completed']}/"
        f"{batch['jobs_submitted']} jobs finished, "
        f"{batch['tasks_completed']} tasks, mean makespan "
        f"{batch['mean_makespan_s']:.1f}s"
    )
    print(
        "per-domain CPU ready (s): "
        + ", ".join(
            f"{name} {seconds:.2f}" for name, seconds in sorted(ready.items())
        )
    )
    degraded = (
        consolidated.p95_response_time_s > baseline.p95_response_time_s
        and consolidated.cpu_ready_seconds("web-vm")
        > baseline.cpu_ready_seconds("web-vm")
    )
    print(
        "\ninterference "
        + ("OBSERVED: co-location degrades the web tenant"
           if degraded else "NOT OBSERVED (unexpected)")
    )


if __name__ == "__main__":
    main()
