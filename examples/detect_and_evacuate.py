"""Server crash, ready-signal detection, forced evacuation, recovery.

The `detect_and_evacuate` scenario packs the RUBiS web pair and a
batch MapReduce tenant onto server 1 of a two-server fleet and crashes
that server at t=60s: the fault scheduler collapses its credit
scheduler to 1% of its cores, so every domain starves at once and
per-server CPU-ready time floods — the "server went dark" signature.
The fleet controller's failure detector declares the server failed
after two saturated windows and force-evacuates every guest (the
pinned web pair first, the batch tenant last) to the survivor over the
migration wire.  Forced evacuations are accounted outside the
voluntary `max_migrations` budget: the drill's budget is 1, and all
three guests leave anyway.

This script runs the same seed twice:

* watch  — a passive fleet controller (`fleet=False`): same crash,
  nobody acts, the service never returns below its SLO, and
* fleet  — the active controller, which detects and evacuates.

It scores both runs with `repro.faults.scoring` (detection time,
recovery time, SLO-violation window against a 100 ms web p95 SLO) and
prices the pair: reservation billing barely moves, so the decisive
number is $-per-kilorequest — the watch-only run pays the same bill
for far fewer completed requests.

Run:  python examples/detect_and_evacuate.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/detect_and_evacuate.py
"""

import os

import numpy as np

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import detect_and_evacuate_scenario
from repro.faults.scoring import billing_delta, score_run

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)

SLO_MS = 100.0
SUSTAIN_WINDOWS = 10


def run(with_fleet, duration_s, clients):
    spec = detect_and_evacuate_scenario(
        duration_s=duration_s, clients=clients, fleet=with_fleet
    )
    print(f"running {spec.name} ...", flush=True)
    return run_scenario(spec)


def timeline(result, entity, resource, width=60):
    series = result.traces.get(entity, resource)
    values = series.values
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1, dtype=int)
        values = np.array(
            [values[a:b].max() for a, b in zip(edges[:-1], edges[1:])]
        )
    top = values.max()
    marks = " .:-=+*#%@"
    scaled = np.zeros(len(values), dtype=int)
    if top > 0:
        scaled = np.minimum(
            (values / top * (len(marks) - 1)).astype(int), len(marks) - 1
        )
    return "".join(marks[i] for i in scaled)


def main() -> None:
    duration_s = 180.0 if QUICK else 240.0
    clients = 400
    watch = run(False, duration_s, clients)
    fleet = run(True, duration_s, clients)

    # -- what the fault scheduler did -------------------------------------
    schedule = fleet.control_reports["faults"]["schedule"]
    crash = schedule[0]
    print(
        f"\nfault: {crash['fault']} at t={crash['inject_at_s']:.0f}s "
        f"(residual core fraction {crash['magnitude']:g}), "
        "held to the horizon"
    )
    assert crash["fault"] == "crash" and crash["inject_at_s"] == 60.0

    # -- detection and forced evacuation ----------------------------------
    report = fleet.control_reports["fleet"]
    assert report["failed_servers"] == ["cloud-1"], (
        "the crashed server was not declared failed"
    )
    evacuations = report["evacuations"]
    assert {e["domain"] for e in evacuations} == {
        "web-vm", "db-vm", "batch-vm",
    }, "every guest must be evacuated off the failed server"
    assert all(e["forced"] and e["dest"] == "cloud-2" for e in evacuations)
    # The voluntary budget (max_migrations=1) was never touched: three
    # forced moves completed, zero voluntary migrations recorded.
    assert len(evacuations) == 3 and report["migrations"] == []
    print("evacuations (forced, outside the voluntary budget):")
    for move in evacuations:
        print(
            f"  {move['domain']:<9s} {move['source']} -> {move['dest']} "
            f"t={move['started_s']:.1f}-{move['ended_s']:.1f}s, "
            f"{move['bytes_total'] / 2**30:.2f} GiB, "
            f"downtime {move['downtime_s'] * 1000:.0f} ms"
        )
    watch_report = watch.control_reports["fleet"]
    assert watch_report["evacuations"] == [], (
        "the watch-only baseline must not evacuate"
    )

    # -- recovery scoring ---------------------------------------------------
    recovered_score, = score_run(
        fleet, slo_ms=SLO_MS, sustain_windows=SUSTAIN_WINDOWS
    )
    watch_score, = score_run(
        watch, slo_ms=SLO_MS, sustain_windows=SUSTAIN_WINDOWS
    )
    # The detector watches per-server CPU-ready floods, which move the
    # instant the scheduler starves — the p95 signal lags them because
    # empty windows carry the last healthy percentile forward.
    declared_s = evacuations[0]["started_s"] - crash["inject_at_s"]
    rows = [
        ("server declared failed (ready detector, s after crash)",
         None, declared_s),
        ("detection (first breached p95 window, s after crash)",
         watch_score.detection_s, recovered_score.detection_s),
        ("recovery (sustained return below SLO, s after crash)",
         watch_score.recovery_s, recovered_score.recovery_s),
        ("SLO-violation window (s)",
         watch_score.slo_violation_s, recovered_score.slo_violation_s),
    ]
    print(f"\n{'metric (SLO: web p95 <= 100 ms)':<52s} "
          f"{'watch':>8s} {'fleet':>8s}")
    for label, a, b in rows:
        cell = lambda v: f"{v:>8.1f}" if v is not None else f"{'never':>8s}"
        print(f"{label:<52s} {cell(a)} {cell(b)}")

    assert recovered_score.recovered, (
        "the evacuated service must return below the SLO"
    )
    assert not watch_score.recovered, (
        "the watch-only baseline must stay in violation to the horizon"
    )
    assert (
        recovered_score.slo_violation_s < watch_score.slo_violation_s
    ), "evacuation must shrink the SLO-violation window"

    # -- the capacity bill --------------------------------------------------
    bill = billing_delta(fleet, watch)
    print(
        f"\nrequests completed: {bill['recovered_requests']} (fleet) vs "
        f"{bill['baseline_requests']} (watch); bill "
        f"${bill['recovered_usd']:.4f} vs ${bill['baseline_usd']:.4f}; "
        f"$/kilorequest {bill['recovered_usd_per_kilorequest']:.6f} vs "
        f"{bill['baseline_usd_per_kilorequest']:.6f}"
    )
    assert bill["recovered_requests"] > bill["baseline_requests"], (
        "recovery must complete more requests on the same seed"
    )
    assert (
        bill["recovered_usd_per_kilorequest"]
        <= bill["baseline_usd_per_kilorequest"]
    ), "recovery must not cost more per completed kilorequest"

    print(f"\nweb p95 (fleet run)  |{timeline(fleet, 'fleet', 'p95_ms')}|")
    print(f"cloud-1 ready        |{timeline(fleet, 'fleet', 'cloud-1.ready_s')}|")
    print(f"evacuations done     |{timeline(fleet, 'fleet', 'evacuations_done')}|")
    print(f"web p95 (watch run)  |{timeline(watch, 'fleet', 'p95_ms')}|")

    print(
        "\nrecovery verified: the ready-signal failure detector caught "
        f"the crash {declared_s:.0f}s after onset, "
        "force-evacuated all three guests outside the voluntary "
        "migration budget, and brought web p95 back below the 100 ms "
        f"SLO {recovered_score.recovery_s:.0f}s after the crash — while "
        "the watch-only baseline never recovered and paid more per "
        "completed request on the same reservation bill"
    )


if __name__ == "__main__":
    main()
