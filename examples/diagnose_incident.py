"""Root-cause a crash-at-60s drill from its annotation stream.

The `detect_and_evacuate` scenario crashes server cloud-1 at t=60s and
lets the fleet controller detect and force-evacuate the guests.  This
script runs that drill *observed* (`observe=True`): the observation
recorder taps every subsystem hook — fault transitions, fleet failure
declarations, migration phases, control actuations — into one
time-ordered annotation stream, and samples a web p95 SLO probe.

The diagnosis pipeline then runs exactly as `repro diagnose` would:

* `detect_incidents` scans the SLO probe for sustained breaches and
  frames each as an `Incident` window,
* `diagnose` ranks annotated candidate causes for each incident by
  changepoint proximity and cross-channel corroboration, and
* `grade_attribution` grades the top-1 cause against the resolved
  fault schedule — the same precision@1 number the chaos sweep
  (`repro sweep --faults ... --diagnose`) aggregates per policy.

The script asserts the blamed annotation is the crash injection on
cloud-1 at t=60s, then prints the run manifest (config fingerprint,
trace sha256, per-phase wall-clock, per-subsystem event counts).

Run:  python examples/diagnose_incident.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/diagnose_incident.py
"""

import os

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import detect_and_evacuate_scenario
from repro.obs import build_manifest, diagnose, grade_attribution, render_manifest

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)

SLO_MS = 100.0


def main() -> None:
    # Seed 11 keeps the batch tenant quiet around the crash, so the
    # only sustained p95 breach is the one the fault causes.
    spec = detect_and_evacuate_scenario(
        duration_s=180.0, seed=11, clients=120
    )
    print(f"running {spec.name} (observed) ...", flush=True)
    result = run_scenario(spec, observe=True)

    stream = result.annotations
    counts = stream.counts_by_source()
    print(
        f"\nannotation stream: {len(stream)} events "
        f"({', '.join(f'{s}={n}' for s, n in counts.items())})"
    )
    assert counts["fault"] >= 1 and counts["fleet"] >= 1
    assert counts["migration"] >= 1, "the evacuation must be annotated"

    # -- incident detection + attribution ----------------------------------
    diagnoses = diagnose(result, slo_ms=SLO_MS)
    assert diagnoses, "the crash must raise a sustained SLO incident"
    for diagnosis in diagnoses:
        incident = diagnosis.incident
        print(
            f"\nincident: p95 > {SLO_MS:g} ms for {incident.width_s:.0f}s "
            f"({incident.start_s:.0f}-{incident.end_s:.0f}s, "
            f"peak {incident.peak_ms:,.0f} ms)"
        )
        for rank, cause in enumerate(diagnosis.causes[:3], start=1):
            a = cause.annotation
            where = a.server or a.domain or a.channel
            why = (
                "; ".join(cause.evidence)
                if cause.evidence
                else "closest annotated cause to incident onset"
            )
            print(
                f"  {rank}. [{cause.score:.3f}] {a.kind} "
                f"{where} t={a.time_s:.0f}s — {why}"
            )

    top = diagnoses[0].top.annotation
    assert top.kind == "fault.inject", "top cause must be the injection"
    assert top.payload["fault"] == "crash"
    assert top.server == "cloud-1"
    assert top.time_s == 60.0
    assert top.channel == "server"

    # -- grade against the resolved schedule -------------------------------
    grade = grade_attribution(result, diagnoses)
    print(
        f"\nattribution vs schedule: {grade['correct']}/{grade['faults']} "
        f"correct (precision@1 {grade['precision_at_1']:.2f})"
    )
    assert grade["precision_at_1"] == 1.0

    # -- the run manifest ---------------------------------------------------
    print("\n" + render_manifest(build_manifest(result)))

    print(
        "\ndiagnosis verified: the attribution engine blamed the crash "
        "injection on cloud-1 at t=60s — over the fleet's own failure "
        "declaration and the evacuation traffic that followed it — and "
        "scored precision@1 = 1.0 against the resolved fault schedule"
    )


if __name__ == "__main__":
    main()
