"""Controller-driven live migration vs. staying consolidated.

The `migration_rebalance` scenario packs the RUBiS web pair *and* a
noisy batch MapReduce VM onto server 1 of a two-server fleet (the
first-fit outcome a consolidating cloud produces), leaving server 2
idle.  The batch bursts inflate the web tier's p95 latency and CPU
ready (steal) time; the fleet controller watches exactly those
signals and live-migrates the batch VM to server 2 — pre-copy rounds
whose traffic is visible on both dom0 NICs, a sub-second
stop-and-copy downtime, and an interference-free web tier afterwards.

This script runs the same seed twice:

* static — a watch-only fleet controller (`FleetSpec(active=False)`)
  that records the same windowed signal series but never migrates, and
* fleet  — the active controller, which rebalances mid-run.

It prints the comparison the acceptance criteria name — web p95 and
CPU-ready after the rebalance completes, in both runs — plus the
migration's traffic/downtime as seen in the exported trace, and
asserts the interference relief.

Run:  python examples/fleet_rebalance.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/fleet_rebalance.py
"""

import os

import numpy as np

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import migration_rebalance_scenario

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)


def run(with_fleet, duration_s, clients):
    spec = migration_rebalance_scenario(
        duration_s=duration_s, clients=clients, fleet=with_fleet
    )
    print(f"running {spec.name} ...", flush=True)
    return run_scenario(spec)


def post_window(result, resource, start_s):
    """A fleet series restricted to samples after ``start_s``."""
    series = result.traces.get("fleet", resource)
    return series.values[series.times > start_s]


def timeline(result, entity, resource, width=60):
    series = result.traces.get(entity, resource)
    values = series.values
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1, dtype=int)
        values = np.array(
            [values[a:b].max() for a, b in zip(edges[:-1], edges[1:])]
        )
    top = values.max()
    marks = " .:-=+*#%@"
    scaled = np.zeros(len(values), dtype=int)
    if top > 0:
        scaled = np.minimum(
            (values / top * (len(marks) - 1)).astype(int), len(marks) - 1
        )
    return "".join(marks[i] for i in scaled)


def main() -> None:
    duration_s = 120.0 if QUICK else 240.0
    clients = 400
    static = run(False, duration_s, clients)
    fleet = run(True, duration_s, clients)

    migrations = fleet.control_reports["fleet"]["migrations"]
    assert migrations, "the fleet controller never migrated"
    assert not static.control_reports["fleet"]["migrations"], (
        "the watch-only baseline must not migrate"
    )
    move = migrations[0]
    settle_s = move["ended_s"] + 2.0

    # -- the rebalance, as the exported trace saw it ----------------------
    dest_net = fleet.traces.get("dom0.cloud-2", "net_kb")
    in_flight = (dest_net.times >= move["started_s"]) & (
        dest_net.times <= move["ended_s"]
    )
    migrated_kb = float(dest_net.values[in_flight].sum())
    print(
        f"\nmigration: {move['domain']} {move['source']} -> "
        f"{move['dest']} at t={move['started_s']:.0f}s, "
        f"{move['rounds']} pre-copy rounds, "
        f"{move['bytes_total'] / 2**30:.2f} GiB shipped in "
        f"{move['duration_s']:.1f}s, "
        f"downtime {move['downtime_s'] * 1000:.0f} ms"
    )
    print(
        f"destination dom0 received {migrated_kb / 1024:.0f} MB during "
        "the migration window (visible as the dom0.cloud-2 net trace)"
    )

    # -- interference relief after the rebalance --------------------------
    rows = [
        ("web p95 after rebalance, worst 2s window (ms)",
         float(post_window(static, "p95_ms", settle_s).max()),
         float(post_window(fleet, "p95_ms", settle_s).max())),
        ("web p95 after rebalance, mean of windows (ms)",
         float(post_window(static, "p95_ms", settle_s).mean()),
         float(post_window(fleet, "p95_ms", settle_s).mean())),
        ("web server CPU ready after rebalance (core-s)",
         float(post_window(static, "cloud-1.ready_s", settle_s).sum()),
         float(post_window(fleet, "cloud-1.ready_s", settle_s).sum())),
        ("web-vm CPU ready, whole run (core-s)",
         static.cpu_ready_seconds("web-vm"),
         fleet.cpu_ready_seconds("web-vm")),
    ]
    print(f"\n{'metric':<48s} {'static':>10s} {'fleet':>10s}")
    for label, before, after in rows:
        print(f"{label:<48s} {before:>10.2f} {after:>10.2f}")

    print(f"\nweb p95 timeline     |{timeline(fleet, 'fleet', 'p95_ms')}|")
    print(f"cloud-1 ready        |{timeline(fleet, 'fleet', 'cloud-1.ready_s')}|")
    print(f"migration traffic    |{timeline(fleet, 'dom0.cloud-2', 'net_kb')}|")

    # The acceptance assertions: p95 and CPU-ready drop after the
    # rebalance vs. the no-migration baseline, and the migration's
    # traffic and downtime are real, bounded quantities in the trace.
    assert rows[0][2] < rows[0][1], "worst-window p95 did not improve"
    assert rows[1][2] < rows[1][1], "mean-window p95 did not improve"
    assert rows[2][2] < rows[2][1], "web-server ready time did not improve"
    assert rows[3][2] < rows[3][1], "web-vm ready time did not improve"
    assert migrated_kb * 1024 >= 0.9 * move["bytes_total"], (
        "migration traffic must be visible on the destination dom0 NIC"
    )
    assert 0.0 < move["downtime_s"] < 2.0, "downtime outside sane bounds"
    print(
        "\nrebalance verified: the controller-triggered live migration "
        "relieved co-location interference (lower post-migration web "
        "p95 and CPU-ready than the no-migration baseline on the same "
        "seed)"
    )


if __name__ == "__main__":
    main()
