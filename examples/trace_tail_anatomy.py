"""Tail anatomy via request tracing — naming the p99's channel.

The paper's thesis is that virtualization changes *where* web requests
spend their time; aggregate percentiles can't show it, but sampled
span trees can.  This example consolidates the browsing workload with
a CPU-hungry grep-style MapReduce tenant on one hypervisor (contention
armed through the credit scheduler), samples request traces, and
decomposes the p99 − p50 latency gap channel by channel.

At this operating point the web tiers are far from saturation — the
median request barely queues — yet the p99 balloons whenever a batch
job bursts onto the shared cores.  The span trees prove the mechanism:
the gap is dominated by **CPU ready time** (the credit scheduler
holding runnable web VCPUs off-core), not by queueing or service
growth.  The script asserts exactly that, then prints the anatomy
table, the attribution verdict and the slowest sampled request.

Run:  PYTHONPATH=src python examples/trace_tail_anatomy.py
Set REPRO_EXAMPLE_QUICK=1 for a CI-friendly horizon.
"""

import os
from dataclasses import replace

from repro.config import ExperimentConfig
from repro.experiments.runner import run_scenario
from repro.obs.tracing import (
    latency_anatomy,
    render_anatomy,
    render_tail_attribution,
    render_trace,
    slowest_traces,
    tail_attribution,
)
from repro.workloads import TenantSpec

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "") == "1"
DURATION_S = 120.0 if QUICK else 240.0
SEED = 7
CLIENTS = 40
TRACE_SAMPLE = 0.3

#: CPU-bound co-tenant: grep-style jobs with a small input volume keep
#: the shared dom0 device backends quiet, so the only interference
#: channel left is the credit scheduler's core contention.
TENANT = TenantSpec(
    job="grep", input_mb=24.0, tasks=32, arrival_rate_per_s=0.3
)


def main() -> None:
    config = ExperimentConfig(
        environment="virtualized",
        composition="browsing",
        duration_s=DURATION_S,
        seed=SEED,
        clients=CLIENTS,
        # A controller-bearing testbed arms the hypervisor's VCPU
        # contention refinement; "static" never resizes, so the
        # contention is left to show in the spans.
        controller="static",
        tenants=(TENANT,),
    )
    spec = replace(config.to_scenario(), trace_sample=TRACE_SAMPLE)
    print(f"running {spec.name} with trace_sample={TRACE_SAMPLE} ...")
    result = run_scenario(spec)
    traces = result.request_traces
    print(
        f"sampled {len(traces)} of {result.requests_completed} requests"
    )
    print()

    anatomy = latency_anatomy(traces, percentiles=(50.0, 95.0, 99.0))
    print(render_anatomy(anatomy))
    print()

    attribution = tail_attribution(traces, tail_percentile=99.0)
    print(render_tail_attribution(attribution))
    print()

    print("slowest sampled request:")
    print(render_trace(slowest_traces(traces, count=1)[0]))
    print()

    # The claim this example exists to prove: on a contended
    # consolidated server the p99 - p50 gap is CPU ready time — the
    # web VCPUs are runnable but held off-core by the batch tenant.
    name, component = attribution.channel
    assert (name, component) == ("cpu.web", "ready"), (
        f"expected the p99 gap to be dominated by cpu.web ready time, "
        f"got {name}:{component}"
    )
    ready_share = attribution.contributions[0][2] / attribution.gap_s
    assert ready_share > 0.5, (
        f"cpu.web:ready owns only {ready_share:.0%} of the gap"
    )
    print(
        f"OK: cpu.web ready time owns {ready_share:.0%} of the "
        f"p99 - p50 gap ({attribution.gap_s * 1e3:.1f} ms)"
    )


if __name__ == "__main__":
    main()
