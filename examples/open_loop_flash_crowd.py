"""Open-loop flash crowd: offered load beyond any closed loop.

The paper's client emulator is a closed loop — 1000 clients, 7 s think
time — which self-throttles at ``clients / think_time`` req/s no matter
how hard the servers are pushed.  This example drives the same
virtualized RUBiS deployment with the open-loop traffic subsystem
instead: visits arrive from a Poisson stream modulated by a
flash-crowd envelope that surges to 20x the baseline, far past what
the closed loop could offer.  The front end's session budget sheds the
overflow, and the run reports:

* the offered request rate vs. the closed-loop steady state,
* the overload shedding fraction,
* the arrival-trace fingerprint (identical across runs: the stream is
  seed-deterministic),
* the re-fitted workload models of the offered-load trace — the
  characterize -> model -> regenerate loop in one script.

Run:  python examples/open_loop_flash_crowd.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/open_loop_flash_crowd.py
"""

import os

from repro.analysis.models import RegimeModel
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import flash_crowd_scenario
from repro.sim.random import RandomStreams
from repro.traffic import fit_rate_models, synthesize_rate_trace

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)


def main() -> None:
    duration_s = 60.0 if QUICK else 240.0
    clients = 200 if QUICK else 1000
    spec = flash_crowd_scenario(
        "virtualized",
        "browsing",
        duration_s=duration_s,
        clients=clients,
        session_budget=300 if QUICK else 2000,
    )
    closed_rate = spec.mix.clients / spec.mix.think_time_s
    print(
        f"running {spec.name}: {spec.duration_s:.0f}s simulated, "
        f"session budget {spec.traffic.session_budget}, flash surge "
        f"{spec.traffic.shape.magnitude:.0f}x ..."
    )
    result = run_scenario(spec)

    report = result.traffic_report
    offered_request_rate = (
        report["offered"] * report["requests_per_session"] / spec.duration_s
    )
    print(f"\nclosed-loop steady state: {closed_rate:7.1f} req/s")
    print(
        f"open-loop offered:        {offered_request_rate:7.1f} req/s "
        f"({offered_request_rate / closed_rate:.1f}x)"
    )
    print(
        f"peak arrival rate:        "
        f"{result.arrival_trace.rates_rps.max() * report['requests_per_session']:7.1f} req/s"
    )
    print(
        f"overload shedding:        {report['shed']} of "
        f"{report['offered']} visits ({report['shed_fraction']:.1%})"
    )
    print(
        f"served requests:          {result.requests_completed} "
        f"(mean response {result.mean_response_time_s * 1000:.1f} ms)"
    )
    print(f"arrival trace sha256:     {result.arrival_trace.sha256()[:16]}")

    models = fit_rate_models(result.arrival_trace)
    regime = models["regime"]
    if isinstance(regime, RegimeModel):
        low, high = sorted(regime.means)
        print(
            f"\nfitted regime model of the offered load: "
            f"calm {low:.1f} visits/s, surge {high:.1f} visits/s"
        )
        rng = RandomStreams(seed=7).stream("synthesis")
        synthetic = synthesize_rate_trace(
            regime, len(result.arrival_trace),
            result.arrival_trace.interval_s, rng,
        )
        print(
            f"synthesized trace from it: mean "
            f"{synthetic.mean_rate_rps():.1f} visits/s over "
            f"{synthetic.duration_s:.0f}s — replay it with\n"
            f"  synthetic.to_csv('flash.csv')  # then:\n"
            f"  python -m repro run --traffic trace:flash.csv"
        )


if __name__ == "__main__":
    main()
