"""Quickstart: run one virtualized RUBiS experiment and characterize it.

This is the paper's Section 4.1 in miniature: 1000 emulated clients
send browsing requests to the two-VM deployment for two simulated
minutes, the monitoring substrate samples CPU/RAM/disk/network at the
2-second period, and the characterization core produces the summary the
paper reports (per-series statistics, fitted marginals, RAM jumps,
inter-tier lag, demand ratios).

Run:  python examples/quickstart.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/quickstart.py
"""

import os

from repro import characterize_trace_set, render_characterization_report
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)


def main() -> None:
    duration_s = 60.0 if QUICK else 120.0
    spec = scenario("virtualized", "browsing", duration_s=duration_s)
    print(f"running {spec.name}: {spec.mix.clients} clients, "
          f"{spec.mix.think_time_s:.0f}s think time, "
          f"{spec.duration_s:.0f}s simulated ...")
    result = run_scenario(spec)

    print(
        f"done: {result.requests_completed} requests, "
        f"X={result.throughput_rps:.1f} req/s, "
        f"mean response={result.mean_response_time_s * 1000:.1f} ms\n"
    )

    characterization = characterize_trace_set(result.traces)
    print(render_characterization_report(characterization))


if __name__ == "__main__":
    main()
