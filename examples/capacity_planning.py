"""Capacity planning and SLA prediction from measured workload.

The paper motivates its characterization with exactly this workflow:
"predict SLA compliance or violation based on the projected application
workload and guide the decision making to support applications with the
right hardware."  This example

1. measures the web tier's demand vector under 1000 browsing clients,
2. projects utilization and response time to larger populations with
   the utilization law and an M/M/1-style queueing correction,
3. reports the largest population one paper-spec server sustains under
   an 80 % headroom budget and a 500 ms p95-style SLA.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.ratios import demand_vector
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.hardware.server import ServerSpec
from repro.planning.capacity import ResourceCapacity
from repro.planning.predictor import project_workload
from repro.planning.sla import SlaTarget, evaluate_sla

MEASURED_CLIENTS = 1000
PROJECTIONS = (1000, 5000, 20_000, 60_000, 150_000)


def main() -> None:
    spec = scenario("virtualized", "browsing", duration_s=120.0)
    print(f"measuring demand with {MEASURED_CLIENTS} clients ...")
    result = run_scenario(spec)
    demand = demand_vector(result.traces, "web", warmup_s=30.0)
    base_response = result.mean_response_time_s
    print(
        f"measured: web demand/2s = "
        f"{demand.cpu_cycles:.3g} cycles, {demand.net_kb:.0f} net KB; "
        f"mean response = {base_response * 1000:.1f} ms\n"
    )

    sla = SlaTarget(threshold_s=0.5, quantile=0.95)
    capacity = ResourceCapacity.from_server_spec(ServerSpec.paper_testbed())

    print(f"{'clients':>9s} {'bottleneck':>12s} {'util':>7s} "
          f"{'resp (ms)':>10s} {'SLA':>5s}")
    for clients in PROJECTIONS:
        projection = project_workload(
            demand,
            MEASURED_CLIENTS,
            base_response,
            clients,
            capacity,
            sla_target=sla,
        )
        plan = projection.plan
        print(
            f"{clients:>9d} {plan.bottleneck:>12s} "
            f"{plan.bottleneck_utilization:>6.1%} "
            f"{projection.predicted_response_time_s * 1000:>10.1f} "
            f"{'ok' if projection.sla_predicted_compliant else 'VIOL':>5s}"
        )

    plan = project_workload(
        demand, MEASURED_CLIENTS, base_response, MEASURED_CLIENTS, capacity
    ).plan
    print(
        f"\none paper-spec server sustains ~{plan.max_clients} clients "
        f"at 80% headroom (bottleneck: {plan.bottleneck})"
    )

    # Sanity: check the measured run against the SLA directly, using
    # the per-request response times the client emulator recorded.
    evaluation = evaluate_sla(result.client_stats.response_times_s, sla)
    print(
        f"measured run SLA check: "
        f"p95={evaluation.observed_quantile_s * 1000:.1f} ms, "
        f"{'compliant' if evaluation.compliant else 'VIOLATED'}"
    )


if __name__ == "__main__":
    main()
