"""Characterizing a MapReduce workload — the paper's future work.

Section 5: "We also plan to characterize the workload of other cloud
applications, such as big data applications using the MapReduce
paradigm."  This example runs a sort-like job (shuffle-heavy) and a
grep-like job (scan-heavy) on a 4-node simulated cluster, profiles the
nodes with the *same* 2-second monitoring pipeline used for RUBiS, and
prints the per-phase resource shape: disk/CPU-heavy map, network-heavy
shuffle, write-heavy reduce.

Run:  python examples/mapreduce_characterization.py
"""

from repro.analysis.stats import summarize
from repro.mapreduce.engine import MapReduceCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.workload import grep_like_job, sort_like_job
from repro.monitoring.probes import ContextProbe
from repro.monitoring.sampler import TraceRecorder
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams


def run_job(spec):
    sim = Simulator()
    cluster = MapReduceCluster(sim, RandomStreams(7), nodes=4)
    probes = [
        ContextProbe(name, context)
        for name, context in cluster.contexts().items()
    ]
    recorder = TraceRecorder(
        sim, probes, environment="bare-metal", workload=spec.name
    )
    job = MapReduceJob(spec)
    cluster.submit(job)
    sim.run_until(600.0)
    recorder.stop()
    cluster.shutdown()
    return job, recorder.traces


def describe(job, traces):
    stats = job.stats
    print(f"\n=== {job.spec.name} job ===")
    print(
        f"makespan {stats.makespan_s:.1f}s "
        f"(map {stats.map_phase_s:.1f}s, shuffle+reduce "
        f"{stats.finished_at - stats.map_finished_at:.1f}s); "
        f"shuffle moved {stats.shuffle_bytes_moved / 1e6:.0f} MB"
    )
    for resource, label in (
        ("cpu_cycles", "cpu cycles/2s"),
        ("disk_kb", "disk KB/2s"),
        ("net_kb", "net  KB/2s"),
    ):
        aggregate = traces.aggregate(traces.entities(), resource)
        active = aggregate.sliced(0.0, max(stats.finished_at + 2.0, 6.0))
        print(f"  {label:<14s} {summarize(active.values).describe()}")


def main() -> None:
    for spec in (sort_like_job(4096, 32), grep_like_job(4096, 32)):
        job, traces = run_job(spec)
        describe(job, traces)
    print(
        "\nshape check: the sort job moves ~50x the grep job's shuffle "
        "bytes — the map-selectivity contrast the MapReduce literature "
        "characterizes."
    )


if __name__ == "__main__":
    main()
