"""Formal workload modeling — the paper's promised future work.

"We plan to design and apply formal methods to model the workload
dynamics at both resource level and transaction level" (Section 5).
This example fits the three implemented model families to a measured
trace, scores their one-step predictions, and generates a synthetic
workload from the best model — the building block for trace-driven
capacity studies without re-running the testbed.

Run:  python examples/workload_modeling.py
"""

import numpy as np

from repro.analysis.distribution_fit import fit_candidates
from repro.analysis.models import ARModel, HistogramWorkloadModel, RegimeModel
from repro.analysis.stats import summarize
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario


def main() -> None:
    spec = scenario("virtualized", "browsing", duration_s=240.0)
    print(f"running {spec.name} for {spec.duration_s:.0f}s ...")
    result = run_scenario(spec)
    cpu = result.traces.get("web", "cpu_cycles").without_warmup(30.0)
    ram = result.traces.get("web", "mem_used_mb")

    print("\n--- marginal distribution of web CPU demand ---")
    for fit in fit_candidates(cpu)[:3]:
        print(
            f"  {fit.family:<12s} AIC={fit.aic:10.1f} "
            f"KS={fit.ks_statistic:.3f} (p={fit.ks_pvalue:.3f})"
        )

    print("\n--- one-step predictive RMSE per model family ---")
    for label, series in (("web cpu", cpu), ("web ram", ram)):
        values = series.values
        scores = {
            "AR(2)": ARModel(order=2).fit(values).one_step_rmse(values),
            "histogram": HistogramWorkloadModel(bins=20)
            .fit(values)
            .one_step_rmse(values),
            "regime": RegimeModel().fit(values).one_step_rmse(values),
        }
        winner = min(scores, key=scores.get)
        row = "  ".join(f"{m}={v:.4g}" for m, v in scores.items())
        print(f"  {label:<8s} {row}   -> best: {winner}")

    print("\n--- synthetic workload from the fitted AR(2) model ---")
    model = ARModel(order=2).fit(cpu.values)
    synthetic = model.simulate(len(cpu), np.random.default_rng(1))
    print(f"  original : {summarize(cpu.values).describe()}")
    print(f"  synthetic: {summarize(synthetic).describe()}")
    print(f"  stationary: {model.is_stationary()}, "
          f"coefficients: {np.round(model.coefficients, 3).tolist()}")


if __name__ == "__main__":
    main()
