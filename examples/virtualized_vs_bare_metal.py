"""The paper's core comparison: virtualized vs bare-metal RUBiS.

Runs the four headline scenarios (virtualized/bare-metal x
browsing/bidding), prints the four ratio tables (R1, R2, R3, R4)
against the paper's published values, and evaluates the qualitative
findings Q1-Q5.

Run:  python examples/virtualized_vs_bare_metal.py
"""

from repro.analysis.report import render_ratio_table
from repro.experiments.compare import compare_with_paper, qualitative_checks
from repro.experiments.runner import run_scenario_cached
from repro.experiments.scenarios import scenario

DURATION_S = 240.0


def main() -> None:
    runs = {}
    for environment in ("virtualized", "bare-metal"):
        for composition in ("browsing", "bidding"):
            spec = scenario(environment, composition, duration_s=DURATION_S)
            print(f"running {spec.name} ...")
            runs[(environment, composition)] = run_scenario_cached(spec)

    print("\n=== Demand-ratio tables (Sections 4.1-4.2) ===\n")
    reports = compare_with_paper(
        runs[("virtualized", "browsing")], runs[("bare-metal", "browsing")]
    )
    for report in reports:
        print(render_ratio_table(report))
        print()

    print("=== Qualitative findings (Q1-Q5) ===\n")
    checks = qualitative_checks(
        runs[("virtualized", "browsing")],
        runs[("virtualized", "bidding")],
        runs[("bare-metal", "browsing")],
        runs[("bare-metal", "bidding")],
    )
    for finding, passed in checks.as_dict().items():
        print(f"  [{'PASS' if passed else 'FAIL'}] {finding}")
    print(
        "\nall findings reproduce" if checks.all_pass()
        else "\nsome findings did NOT reproduce — see EXPERIMENTS.md"
    )


if __name__ == "__main__":
    main()
