"""Bill-reading fleet optimization vs. watching the meter spin.

The sharded fleet layer's economic lever: every lockstep window the
fleet optimizer merges the pods' capacity bills and completed-request
counters into one $-per-kilorequest reading
(:mod:`repro.planning.budget`), and after two consecutive over-budget
windows it throttles the costliest idle batch reservation down to the
budget's cap floor.  This script runs the ``optimizer-demo`` fleet —
two pods whose idle 8-VCPU ballast VMs dwarf the web pair's bill —
twice at the same seed:

* watch     — no optimizer; the ballast reservations bill all run, and
* optimized — the budget lever caps them window by window.

It prints the per-window readings, the decisions taken, and the final
$-per-kilorequest comparison scored by
:func:`repro.planning.cost.score_cost_sla` — and asserts the headline:
the optimized fleet is *strictly cheaper per thousand requests* than
the watch-only baseline without violating the SLO.

It also demonstrates the second acceptance story: the ``two-pod``
fleet, where a crash strands a 26 GB ballast VM that no local survivor
can host, and the optimizer ships it to the peer pod.

Run:  python examples/fleet_optimizer.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/fleet_optimizer.py
"""

import os

from repro.planning.cost import score_cost_sla
from repro.shard import (
    fleet_optimizer_demo,
    fleet_optimizer_demo_watch,
    run_fleet,
    two_pod_fleet,
)

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)
SLO_MS = 50.0
#: The demo fleets are already CI-sized; quick mode just skips the
#: second (evacuation) story to halve the runtime.
SHOW_EVACUATION = not QUICK


def score(result):
    p95 = max(pod["p95_ms"] for pod in result.pods.values())
    return score_cost_sla(
        result.billing(),
        p95,
        slo_ms=SLO_MS,
        requests_completed=result.requests_completed,
    )


def main():
    print("== bill-reading scale-down (optimizer-demo fleet) ==")
    watch = run_fleet(fleet_optimizer_demo_watch())
    optimized = run_fleet(fleet_optimizer_demo())

    budget = optimized.optimizer["budget"]
    print(
        f"budget: ${budget['budget_usd_per_kilorequest']:.4f}/kRq, "
        f"{budget['over_budget_windows']}/{budget['windows']} windows "
        "over"
    )
    for reading in budget["readings"]:
        flag = "OVER " if reading["over_budget"] else "ok   "
        print(
            f"  t={reading['time_s']:>5.0f}s {flag}"
            f"${reading['usd_per_kilorequest']:.4f}/kRq "
            f"({reading['window_requests']} requests, "
            f"${reading['window_cost_usd']:.4f})"
        )
    for decision in optimized.optimizer["decisions"]:
        print(
            f"  t={decision['time_s']:>5.0f}s {decision['kind']} "
            f"pod={decision['pod']} vm={decision.get('vm', '-')} "
            f"cap={decision.get('cap_cores', '-')}"
        )

    base, cheap = score(watch), score(optimized)
    print(
        f"watch:     ${base.cost_usd:.4f} total, "
        f"${base.usd_per_kilorequest:.4f}/kRq, "
        f"p95 {base.p95_ms:.1f} ms"
    )
    print(
        f"optimized: ${cheap.cost_usd:.4f} total, "
        f"${cheap.usd_per_kilorequest:.4f}/kRq, "
        f"p95 {cheap.p95_ms:.1f} ms"
    )
    saving = 1.0 - cheap.usd_per_kilorequest / base.usd_per_kilorequest

    # The acceptance assertions: strictly cheaper per kilorequest than
    # the watch-only baseline, scored by repro.planning.cost, with the
    # SLO intact.
    assert cheap.usd_per_kilorequest < base.usd_per_kilorequest, (
        "the optimizer must beat the watch-only baseline"
    )
    assert cheap.sla_met, "savings must not come from breaking the SLO"
    print(f"[PASS] optimizer saves {saving:.1%} per kilorequest "
          f"with p95 within the {SLO_MS:g} ms SLO")

    if SHOW_EVACUATION:
        print()
        print("== cross-pod evacuation (two-pod fleet) ==")
        result = run_fleet(two_pod_fleet(), shards=2)
        print(result.render())
        east, west = result.pods["east"], result.pods["west"]
        assert east["exported"] == [{"vm": "heavy-vm", "peer": "west"}]
        assert west["imported"] == [
            {"vm": "heavy-vm@east", "peer": "east"}
        ]
        print("[PASS] the stranded 26 GB guest crossed pods")


if __name__ == "__main__":
    main()
