"""The full 518-metric profiling pipeline with trace export.

Reproduces the paper's measurement methodology end to end: sysstat-
style collectors in the hypervisor and the VMs plus perf counters — 518
metrics sampled every 2 seconds — then exports the core resource traces
to CSV/JSON for downstream tooling.

Run:  python examples/full_profiling_pipeline.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import scenario
from repro.experiments.tables import render_table1
from repro.monitoring.export import write_trace_csv, write_trace_json
from repro.monitoring.registry import build_registry


def main() -> None:
    output_dir = Path(
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-")
    )
    output_dir.mkdir(parents=True, exist_ok=True)

    registry = build_registry()
    print(render_table1(registry))

    spec = scenario("virtualized", "bidding", duration_s=60.0)
    print(f"\nprofiling {spec.name} with the full registry enabled ...")
    result = run_scenario(spec, collect_full_registry=True, registry=registry)

    print(
        f"collected {len(result.full_rows)} wide samples; the first row "
        f"has {len(result.full_rows[0]) - 1} metric columns"
    )
    some = [
        "web|sysstat-vm/%user",
        "web|sysstat-vm/kbmemused",
        "web|perf/cycles",
        "dom0|sysstat-hypervisor/rxkB/s",
    ]
    last = result.full_rows[-1]
    for key in some:
        print(f"  {key:<36s} = {last[key]:.4g}")

    csv_path = output_dir / "traces.csv"
    json_path = output_dir / "traces.json"
    write_trace_csv(result.traces, str(csv_path))
    write_trace_json(result.traces, str(json_path))
    print(f"\ncore traces exported to:\n  {csv_path}\n  {json_path}")


if __name__ == "__main__":
    main()
