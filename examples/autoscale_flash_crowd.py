"""Elastic autoscaling vs. static provisioning under a flash crowd.

The `autoscaled_flash_crowd` scenario drives the virtualized RUBiS
testbed with a 20x open-loop visit surge.  The VMs start *rightsized
for the calm load*: a fractional-core credit-scheduler cap (~1.2x the
calm request rate), one VCPU, and 1 GB of ballooned memory whose
front-end session capacity is the budget.  This script runs the same
seed and the same offered arrival stream twice:

* static   — the initial sizing, never resized (the baseline), and
* threshold (or any policy via POLICY=pid/predictive) — the elastic
  controller grows CPU cap + VCPUs and balloons memory (raising the
  session budget with it) while the surge lasts, then shrinks back.

It prints the comparison the acceptance criteria name: web p95 during
the flash-crowd window, shed/abandonment fractions, served requests —
plus the controller's capacity timeline.

Run:  python examples/autoscale_flash_crowd.py
Quick mode (CI):  REPRO_EXAMPLE_QUICK=1 python examples/autoscale_flash_crowd.py
"""

import os

import numpy as np

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import (
    autoscaled_flash_crowd_scenario,
    flash_crowd_window,
)

QUICK = os.environ.get("REPRO_EXAMPLE_QUICK", "").strip() in (
    "1", "true", "yes",
)
POLICY = os.environ.get("POLICY", "threshold").strip() or "threshold"


def run(kind, duration_s, clients):
    spec = autoscaled_flash_crowd_scenario(
        duration_s=duration_s, clients=clients, controller=kind
    )
    print(f"running {spec.name} [{kind}] ...", flush=True)
    return run_scenario(spec)


def window_p95_ms(result):
    low, high = flash_crowd_window(result.scenario)
    series = result.traces.get("control", "p95_ms")
    mask = (series.times >= low) & (series.times <= high)
    return float(series.values[mask].max())


def capacity_timeline(result, resource, width=60):
    series = result.traces.get("control", resource)
    values = series.values
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1, dtype=int)
        values = np.array(
            [values[a:b].max() for a, b in zip(edges[:-1], edges[1:])]
        )
    top = values.max()
    marks = " .:-=+*#%@"
    scaled = np.zeros(len(values), dtype=int)
    if top > 0:
        scaled = np.minimum(
            (values / top * (len(marks) - 1)).astype(int),
            len(marks) - 1,
        )
    return "".join(marks[i] for i in scaled)


def main() -> None:
    duration_s = 60.0 if QUICK else 240.0
    clients = 200 if QUICK else 1000
    static = run("static", duration_s, clients)
    scaled = run(POLICY, duration_s, clients)
    assert (
        static.arrival_trace.sha256() == scaled.arrival_trace.sha256()
    ), "offered arrival streams must match for a fair comparison"

    rows = [
        ("web p95 in flash window (ms)",
         window_p95_ms(static), window_p95_ms(scaled)),
        ("shed fraction (%)",
         100 * static.traffic_report["shed_fraction"],
         100 * scaled.traffic_report["shed_fraction"]),
        ("abandonment fraction (%)",
         100 * static.traffic_report["abandonment_fraction"],
         100 * scaled.traffic_report["abandonment_fraction"]),
        ("requests served",
         static.requests_completed, scaled.requests_completed),
    ]
    print(f"\n{'metric':<32s} {'static':>12s} {POLICY:>12s}")
    for label, before, after in rows:
        print(f"{label:<32s} {before:>12.1f} {after:>12.1f}")

    report = scaled.control_reports["control"]
    by_kind = ", ".join(
        f"{kind} x{count}"
        for kind, count in sorted(report["actions_by_kind"].items())
    )
    print(
        f"\ncontroller [{POLICY}]: {report['num_actions']} control "
        f"actions ({by_kind})"
    )
    print(f"web-vm cap timeline   |{capacity_timeline(scaled, 'web-vm.cap_cores')}|")
    print(f"web-vm memory timeline|{capacity_timeline(scaled, 'web-vm.memory_mb')}|")
    print(f"offered rps timeline  |{capacity_timeline(scaled, 'offered_rps')}|")

    assert window_p95_ms(scaled) < window_p95_ms(static)
    assert (
        scaled.traffic_report["shed_fraction"]
        < static.traffic_report["shed_fraction"]
    )
    print(
        "\nelasticity verified: lower flash-window p95 and lower shed "
        "fraction than the static baseline on the same seed/trace"
    )


if __name__ == "__main__":
    main()
